//! Identification baselines for the ablation experiments.
//!
//! The paper's core claim is that fuzzy hashing recognizes application
//! *variants* that the two traditional identifiers miss:
//!
//! * **name-based** — match executables by file name (XALT-era practice;
//!   trivially defeated by `a.out` and trivially fooled by collisions);
//! * **exact-hash** — match by cryptographic digest (XALT's `sha1`);
//!   recognizes only byte-identical files.
//!
//! [`RecognitionAblation`] measures, over a labeled record population,
//! how many *variant pairs* (distinct binaries of the same software) each
//! method links. [`byte_similarity`] is the raw byte-level comparison the
//! paper contrasts with fuzzy-hash comparison for *scalability* (§2.1) —
//! it is used by the `fuzzy_vs_bytes` bench.

use crate::labels::{Labeler, UNKNOWN_LABEL};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use siren_fuzzy::compare;
use std::collections::HashMap;

/// Byte-level similarity 0–100: fraction of positions with equal bytes,
/// over the longer length (a deliberately simple stand-in for
/// byte-by-byte comparison; O(n) in file size, which is exactly why the
/// paper prefers comparing ≤100-character fuzzy hashes).
pub fn byte_similarity(a: &[u8], b: &[u8]) -> u32 {
    if a.is_empty() && b.is_empty() {
        return 100;
    }
    let common = a.iter().zip(b.iter()).filter(|(x, y)| x == y).count();
    (100 * common / a.len().max(b.len())) as u32
}

/// Result of the recognition ablation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecognitionAblation {
    /// Distinct-binary pairs belonging to the same software (ground truth
    /// from path labels), i.e. the variant pairs a method should link.
    pub variant_pairs: u64,
    /// Pairs linked by file-name equality.
    pub name_hits: u64,
    /// Pairs linked by exact content-hash equality (always 0 for
    /// *distinct* binaries — included to make the point).
    pub exact_hits: u64,
    /// Pairs linked by fuzzy similarity ≥ the threshold.
    pub fuzzy_hits: u64,
    /// The fuzzy threshold used.
    pub fuzzy_threshold: u32,
    /// Cross-software pairs incorrectly linked by file-name equality
    /// (e.g. two different `a.out`s).
    pub name_false_links: u64,
    /// Cross-software pairs incorrectly linked by fuzzy similarity.
    pub fuzzy_false_links: u64,
}

impl RecognitionAblation {
    /// Recall of a method: hits / variant_pairs.
    pub fn recall(hits: u64, pairs: u64) -> f64 {
        if pairs == 0 {
            0.0
        } else {
            hits as f64 / pairs as f64
        }
    }

    /// Render a small report table.
    pub fn render(&self) -> String {
        let r = |h| format!("{:.1}%", 100.0 * Self::recall(h, self.variant_pairs));
        crate::render::render_table(
            &format!(
                "Ablation: variant recognition over {} distinct-binary same-software pairs (fuzzy threshold {})",
                self.variant_pairs, self.fuzzy_threshold
            ),
            &["Method", "Pairs linked", "Recall", "False links"],
            &[
                vec!["name-based".into(), self.name_hits.to_string(), r(self.name_hits), self.name_false_links.to_string()],
                vec!["exact-hash".into(), self.exact_hits.to_string(), r(self.exact_hits), "0".into()],
                vec!["fuzzy-hash".into(), self.fuzzy_hits.to_string(), r(self.fuzzy_hits), self.fuzzy_false_links.to_string()],
            ],
        )
    }
}

/// One representative per distinct binary (`FILE_H`), with its ground
/// truth label, for pairing.
struct Binary {
    label: String,
    name: String,
    file_hash: String,
}

/// Run the recognition ablation over user-directory records. Ground truth
/// labels come from the path labeler (UNKNOWN records are excluded — they
/// have no ground truth); the methods themselves never see paths except
/// the name-based one, which is the method under test.
pub fn recognition_ablation(
    records: &[ProcessRecord],
    labeler: &Labeler,
    fuzzy_threshold: u32,
) -> RecognitionAblation {
    // One representative per distinct binary.
    let mut by_hash: HashMap<String, Binary> = HashMap::new();
    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let (Some(path), Some(fh)) = (rec.exe_path(), rec.file_hash.clone()) else {
            continue;
        };
        let label = labeler.label(path);
        if label == UNKNOWN_LABEL {
            continue;
        }
        by_hash.entry(fh.clone()).or_insert_with(|| Binary {
            label: label.to_string(),
            name: path.rsplit('/').next().unwrap_or(path).to_string(),
            file_hash: fh,
        });
    }
    let binaries: Vec<Binary> = by_hash.into_values().collect();

    let mut out = RecognitionAblation {
        fuzzy_threshold,
        ..Default::default()
    };
    for i in 0..binaries.len() {
        for j in (i + 1)..binaries.len() {
            let (a, b) = (&binaries[i], &binaries[j]);
            let same_software = a.label == b.label;
            let name_link = a.name == b.name;
            let exact_link = a.file_hash == b.file_hash; // never true here: keys were distinct
            let fuzzy_link = compare(&a.file_hash, &b.file_hash)
                .map(|s| s >= fuzzy_threshold)
                .unwrap_or(false);

            if same_software {
                out.variant_pairs += 1;
                out.name_hits += u64::from(name_link);
                out.exact_hits += u64::from(exact_link);
                out.fuzzy_hits += u64::from(fuzzy_link);
            } else {
                out.name_false_links += u64::from(name_link);
                out.fuzzy_false_links += u64::from(fuzzy_link);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;
    use siren_fuzzy::fuzzy_hash;

    #[test]
    fn byte_similarity_basics() {
        assert_eq!(byte_similarity(b"", b""), 100);
        assert_eq!(byte_similarity(b"abcd", b"abcd"), 100);
        assert_eq!(byte_similarity(b"abcd", b"abxx"), 50);
        assert_eq!(byte_similarity(b"abcd", b""), 0);
        assert_eq!(byte_similarity(b"ab", b"abcd"), 50);
    }

    fn variant_bytes(seed: u64, flips: usize) -> Vec<u8> {
        let mut x = seed | 1;
        let mut v: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect();
        let len = v.len();
        for i in 0..flips {
            v[i * 37 % len] ^= 0xFF;
        }
        v
    }

    #[test]
    fn fuzzy_links_variants_exact_and_name_do_not() {
        let labeler = Labeler::default();
        // Two near-identical icon binaries under different names, plus an
        // unrelated lammps binary.
        let icon_a = fuzzy_hash(&variant_bytes(1, 0)).to_string_repr();
        let icon_b = fuzzy_hash(&variant_bytes(1, 30)).to_string_repr();
        let lmp = fuzzy_hash(&variant_bytes(999_999, 0)).to_string_repr();

        let records = vec![
            record(
                1,
                1,
                "u4",
                "/users/u4/icon-model/build_0/bin/icon",
                Some(&icon_a),
                None,
                None,
                1,
            ),
            record(
                2,
                2,
                "u4",
                "/users/u4/icon-model/build_1/bin/icon_atm",
                Some(&icon_b),
                None,
                None,
                2,
            ),
            record(
                3,
                3,
                "u2",
                "/users/u2/lammps/build/lmp",
                Some(&lmp),
                None,
                None,
                3,
            ),
        ];
        let abl = recognition_ablation(&records, &labeler, 60);
        assert_eq!(abl.variant_pairs, 1); // the two icon binaries
        assert_eq!(abl.exact_hits, 0, "distinct binaries never match exactly");
        assert_eq!(abl.name_hits, 0, "different file names");
        assert_eq!(abl.fuzzy_hits, 1, "fuzzy must link the variants");
        assert_eq!(abl.fuzzy_false_links, 0);
    }

    #[test]
    fn name_collisions_counted_as_false_links() {
        let labeler = Labeler::default();
        let a = fuzzy_hash(&variant_bytes(1, 0)).to_string_repr();
        let b = fuzzy_hash(&variant_bytes(2_000_000, 0)).to_string_repr();
        // Same file name "lmp" vs a gromacs binary also named... use equal
        // names across different softwares:
        let records = vec![
            record(
                1,
                1,
                "u",
                "/users/u/lammps/run/app",
                Some(&a),
                None,
                None,
                1,
            ),
            record(
                2,
                2,
                "u",
                "/users/u/gromacs/run/app",
                Some(&b),
                None,
                None,
                2,
            ),
        ];
        let abl = recognition_ablation(&records, &labeler, 60);
        assert_eq!(abl.variant_pairs, 0);
        assert_eq!(abl.name_false_links, 1);
    }

    #[test]
    fn unknown_records_excluded_from_ground_truth() {
        let labeler = Labeler::default();
        let a = fuzzy_hash(&variant_bytes(1, 0)).to_string_repr();
        let records = vec![record(
            1,
            1,
            "u",
            "/scratch/x/a.out",
            Some(&a),
            None,
            None,
            1,
        )];
        let abl = recognition_ablation(&records, &labeler, 60);
        assert_eq!(abl.variant_pairs, 0);
    }

    #[test]
    fn render_mentions_all_methods() {
        let out = RecognitionAblation {
            variant_pairs: 10,
            fuzzy_hits: 9,
            fuzzy_threshold: 60,
            ..Default::default()
        }
        .render();
        for m in ["name-based", "exact-hash", "fuzzy-hash"] {
            assert!(out.contains(m));
        }
    }
}
