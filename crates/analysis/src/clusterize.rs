//! Unsupervised software-family clustering via fuzzy-hash similarity.
//!
//! The paper derives software labels from path names (Table 5) and uses
//! similarity search to place one unknown at a time (Table 7). The
//! natural generalization — and the direction the paper's HPC-application
//! classification companion work [22] points to — is *clustering*: build
//! the similarity graph over all distinct binaries (edges where
//! `FILE_H` similarity ≥ threshold) and take connected components as
//! software families, with no path information at all.
//!
//! Implemented as union-find over the pairwise comparisons (block-size
//! pruning makes this cheap: incompatible block sizes never compare).
//! [`clustering_quality`] scores components against ground-truth labels
//! (purity and recall of same-family pairs), quantifying how much family
//! structure fuzzy hashing alone recovers.

use crate::labels::{Labeler, UNKNOWN_LABEL};
use crate::render::render_table;
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use siren_fuzzy::{compare_parsed, FuzzyHash};
use std::collections::HashMap;

/// Disjoint-set forest with path compression and union by size.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// One distinct binary in the clustering input.
#[derive(Debug, Clone)]
pub struct BinaryNode {
    /// `FILE_H` of the binary.
    pub file_hash: String,
    /// Parsed form (for comparison).
    pub parsed: FuzzyHash,
    /// Ground-truth label (path-derived; `UNKNOWN` for nondescript paths).
    pub truth: String,
}

/// A clustering of distinct binaries.
#[derive(Debug)]
pub struct Clustering {
    /// The nodes (one per distinct `FILE_H`).
    pub nodes: Vec<BinaryNode>,
    /// Cluster id per node (dense, 0-based).
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
    /// Similarity threshold used.
    pub threshold: u32,
}

/// Collect distinct binaries from user-directory records and cluster them
/// by fuzzy similarity ≥ `threshold`.
pub fn cluster_binaries(
    records: &[ProcessRecord],
    labeler: &Labeler,
    threshold: u32,
) -> Clustering {
    let mut nodes: Vec<BinaryNode> = Vec::new();
    let mut seen: HashMap<String, ()> = HashMap::new();
    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let (Some(path), Some(fh)) = (rec.exe_path(), rec.file_hash.as_ref()) else {
            continue;
        };
        if seen.insert(fh.clone(), ()).is_some() {
            continue;
        }
        let Ok(parsed) = FuzzyHash::parse(fh) else {
            continue;
        };
        nodes.push(BinaryNode {
            file_hash: fh.clone(),
            parsed,
            truth: labeler.label(path).to_string(),
        });
    }

    let mut uf = UnionFind::new(nodes.len());
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            // Block-size pruning: incomparable hashes can never reach any
            // positive threshold.
            let (a, b) = (nodes[i].parsed.block_size, nodes[j].parsed.block_size);
            if a != b && a != b.wrapping_mul(2) && b != a.wrapping_mul(2) {
                continue;
            }
            if compare_parsed(&nodes[i].parsed, &nodes[j].parsed) >= threshold {
                uf.union(i, j);
            }
        }
    }

    // Dense cluster ids.
    let mut dense: HashMap<usize, usize> = HashMap::new();
    let mut assignment = Vec::with_capacity(nodes.len());
    for i in 0..nodes.len() {
        let root = uf.find(i);
        let next = dense.len();
        let id = *dense.entry(root).or_insert(next);
        assignment.push(id);
    }

    Clustering {
        nodes,
        assignment,
        n_clusters: dense.len(),
        threshold,
    }
}

/// Quality of a clustering against ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQuality {
    /// Distinct binaries clustered.
    pub binaries: usize,
    /// Clusters produced.
    pub clusters: usize,
    /// Weighted purity: fraction of binaries whose cluster's majority
    /// label equals their own label.
    pub purity: f64,
    /// Same-label binary pairs placed in the same cluster.
    pub pair_recall: f64,
    /// Different-label binary pairs incorrectly co-clustered.
    pub pair_false_merges: u64,
}

/// Score `clustering` against its nodes' ground-truth labels. UNKNOWN
/// nodes participate in clustering but are excluded from truth pairs
/// (they have no ground truth by definition).
pub fn clustering_quality(clustering: &Clustering) -> ClusterQuality {
    let n = clustering.nodes.len();

    // Majority label per cluster.
    let mut label_counts: HashMap<usize, HashMap<&str, usize>> = HashMap::new();
    for (i, node) in clustering.nodes.iter().enumerate() {
        *label_counts
            .entry(clustering.assignment[i])
            .or_default()
            .entry(node.truth.as_str())
            .or_insert(0) += 1;
    }
    let majority: HashMap<usize, &str> = label_counts
        .iter()
        .map(|(c, counts)| {
            let label = counts
                .iter()
                .max_by_key(|(_, n)| **n)
                .map(|(l, _)| *l)
                .unwrap_or("");
            (*c, label)
        })
        .collect();

    let pure = clustering
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, node)| majority[&clustering.assignment[*i]] == node.truth)
        .count();

    let mut same_pairs = 0u64;
    let mut same_recovered = 0u64;
    let mut false_merges = 0u64;
    for i in 0..n {
        if clustering.nodes[i].truth == UNKNOWN_LABEL {
            continue;
        }
        for j in (i + 1)..n {
            if clustering.nodes[j].truth == UNKNOWN_LABEL {
                continue;
            }
            let same_truth = clustering.nodes[i].truth == clustering.nodes[j].truth;
            let same_cluster = clustering.assignment[i] == clustering.assignment[j];
            if same_truth {
                same_pairs += 1;
                same_recovered += u64::from(same_cluster);
            } else if same_cluster {
                false_merges += 1;
            }
        }
    }

    ClusterQuality {
        binaries: n,
        clusters: clustering.n_clusters,
        purity: if n == 0 { 0.0 } else { pure as f64 / n as f64 },
        pair_recall: if same_pairs == 0 {
            0.0
        } else {
            same_recovered as f64 / same_pairs as f64
        },
        pair_false_merges: false_merges,
    }
}

/// Render a clustering-quality report.
pub fn render_clusters(q: &ClusterQuality, threshold: u32) -> String {
    render_table(
        &format!("Unsupervised binary clustering (fuzzy threshold {threshold})"),
        &["Metric", "Value"],
        &[
            vec!["distinct binaries".into(), q.binaries.to_string()],
            vec!["clusters".into(), q.clusters.to_string()],
            vec!["purity".into(), format!("{:.1}%", 100.0 * q.purity)],
            vec![
                "same-family pair recall".into(),
                format!("{:.1}%", 100.0 * q.pair_recall),
            ],
            vec!["false merges".into(), q.pair_false_merges.to_string()],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;
    use siren_fuzzy::fuzzy_hash;

    fn family(seed: u64, n: usize) -> Vec<String> {
        // n variants of one base content: contiguous region rewritten.
        let mut x = seed | 1;
        let base: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect();
        (0..n)
            .map(|i| {
                let mut v = base.clone();
                for b in v.iter_mut().skip(i * 512).take(600) {
                    *b ^= 0x77;
                }
                fuzzy_hash(&v).to_string_repr()
            })
            .collect()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_ne!(uf.find(0), uf.find(1));
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(0, 0); // self-union is a no-op
        assert_eq!(uf.find(0), uf.find(1));
    }

    #[test]
    fn families_cluster_apart() {
        let labeler = Labeler::default();
        let mut records = Vec::new();
        for (i, fh) in family(1, 3).iter().enumerate() {
            records.push(record(
                i as u64,
                i as u32,
                "u",
                "/users/u/icon-model/bin/icon",
                Some(fh),
                None,
                None,
                i as u64,
            ));
        }
        for (i, fh) in family(0xDEAD_BEEF, 3).iter().enumerate() {
            records.push(record(
                10 + i as u64,
                10 + i as u32,
                "u",
                "/users/u/lammps/bin/lmp",
                Some(fh),
                None,
                None,
                10 + i as u64,
            ));
        }
        let clustering = cluster_binaries(&records, &labeler, 40);
        assert_eq!(clustering.nodes.len(), 6);
        let q = clustering_quality(&clustering);
        assert_eq!(q.pair_false_merges, 0, "families must not merge");
        assert!(q.purity > 0.99);
        assert!(q.pair_recall > 0.5, "recall {}", q.pair_recall);
        assert!(clustering.n_clusters >= 2);
    }

    #[test]
    fn duplicate_hashes_deduplicated() {
        let labeler = Labeler::default();
        let fh = family(5, 1).remove(0);
        let records = vec![
            record(1, 1, "u", "/users/u/app1", Some(&fh), None, None, 1),
            record(2, 2, "u", "/users/u/app2", Some(&fh), None, None, 2),
        ];
        let clustering = cluster_binaries(&records, &labeler, 60);
        assert_eq!(clustering.nodes.len(), 1);
    }

    #[test]
    fn empty_input() {
        let labeler = Labeler::default();
        let clustering = cluster_binaries(&[], &labeler, 60);
        assert_eq!(clustering.n_clusters, 0);
        let q = clustering_quality(&clustering);
        assert_eq!(q.binaries, 0);
        assert!(render_clusters(&q, 60).contains("clusters"));
    }
}
