//! Table 6 — compiler information of applications in user directories.
//!
//! Raw `.comment` strings are normalized to the paper's
//! `Name [Provenance]` display form (`GCC: (SUSE Linux) 13.2.1` →
//! `GCC [SUSE]`), then grouped by the *combination* present in each
//! executable: "if the application executable is built from dependencies
//! with different parts compiled by different compiler versions, this may
//! result in a list of compilers".

use crate::render::{group_digits, render_table};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Normalize one `.comment` string into `Name [Provenance]` form.
/// Unrecognized strings pass through verbatim (novel toolchains must
/// surface, not vanish — that is the §4.3 point about Rust and conda).
pub fn normalize_compiler(comment: &str) -> String {
    let c = comment;
    if c.contains("rustc") {
        return "rustc".to_string();
    }
    if c.contains("LLD") {
        return "LLD [AMD]".to_string();
    }
    if c.contains("AMD clang") {
        return "clang [AMD]".to_string();
    }
    if c.contains("clang") && c.contains("Cray") {
        return "clang [Cray]".to_string();
    }
    if c.starts_with("GCC") {
        if c.contains("SUSE") {
            return "GCC [SUSE]".to_string();
        }
        if c.contains("Red Hat") {
            return "GCC [Red Hat]".to_string();
        }
        if c.contains("conda") {
            return "GCC [conda]".to_string();
        }
        if c.contains("HPE") {
            return "GCC [HPE]".to_string();
        }
        return "GCC [unknown]".to_string();
    }
    c.to_string()
}

/// The normalized, deduplicated, order-preserving compiler combination of
/// one record.
pub fn compiler_combo(rec: &ProcessRecord) -> Option<Vec<String>> {
    let list = rec.compilers.as_ref()?;
    let mut seen = BTreeSet::new();
    let mut combo = Vec::new();
    for raw in list {
        let norm = normalize_compiler(raw);
        if seen.insert(norm.clone()) {
            combo.push(norm);
        }
    }
    Some(combo)
}

/// One Table-6 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilerRow {
    /// The compiler combination (display order as collected).
    pub combo: Vec<String>,
    /// Distinct users.
    pub unique_users: u64,
    /// Jobs.
    pub job_count: u64,
    /// Processes.
    pub process_count: u64,
    /// Distinct binaries.
    pub unique_file_h: u64,
}

/// Compute Table 6 over user-directory records.
pub fn compiler_table(records: &[ProcessRecord]) -> Vec<CompilerRow> {
    struct Acc {
        users: HashSet<String>,
        jobs: HashSet<u64>,
        procs: u64,
        hashes: HashSet<String>,
    }
    let mut by_combo: HashMap<Vec<String>, Acc> = HashMap::new();

    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let Some(combo) = compiler_combo(rec) else {
            continue;
        };
        if combo.is_empty() {
            continue;
        }
        let acc = by_combo.entry(combo).or_insert_with(|| Acc {
            users: HashSet::new(),
            jobs: HashSet::new(),
            procs: 0,
            hashes: HashSet::new(),
        });
        if let Some(u) = rec.user() {
            acc.users.insert(u.to_string());
        }
        acc.jobs.insert(rec.key.job_id);
        acc.procs += 1;
        if let Some(h) = &rec.file_hash {
            acc.hashes.insert(h.clone());
        }
    }

    let mut rows: Vec<CompilerRow> = by_combo
        .into_iter()
        .map(|(combo, acc)| CompilerRow {
            combo,
            unique_users: acc.users.len() as u64,
            job_count: acc.jobs.len() as u64,
            process_count: acc.procs,
            unique_file_h: acc.hashes.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| {
        (
            b.unique_users,
            b.job_count,
            b.process_count,
            b.unique_file_h,
        )
            .cmp(&(
                a.unique_users,
                a.job_count,
                a.process_count,
                a.unique_file_h,
            ))
    });
    rows
}

/// Render Table 6.
pub fn render_compilers(rows: &[CompilerRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.combo.join(", "),
                r.unique_users.to_string(),
                group_digits(r.job_count),
                group_digits(r.process_count),
                r.unique_file_h.to_string(),
            ]
        })
        .collect();
    render_table(
        "Table 6: Compiler information of applications in user directories",
        &[
            "Compiler Name [Provenance]",
            "Users",
            "Jobs",
            "Processes",
            "Unique FILE_H",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    #[test]
    fn normalization_covers_paper_provenances() {
        assert_eq!(
            normalize_compiler("GCC: (SUSE Linux) 13.2.1 20240206"),
            "GCC [SUSE]"
        );
        assert_eq!(
            normalize_compiler("GCC: (GNU) 8.5.0 (Red Hat 8.5.0-18)"),
            "GCC [Red Hat]"
        );
        assert_eq!(
            normalize_compiler("GCC: (conda-forge gcc 12.3.0-3) 12.3.0"),
            "GCC [conda]"
        );
        assert_eq!(
            normalize_compiler("GCC: (HPE) 12.2.0 20230601"),
            "GCC [HPE]"
        );
        assert_eq!(
            normalize_compiler("LLD 17.0.0 [AMD ROCm 5.6.1]"),
            "LLD [AMD]"
        );
        assert_eq!(
            normalize_compiler("clang version 16.0.1 (Cray Inc.)"),
            "clang [Cray]"
        );
        assert_eq!(
            normalize_compiler("AMD clang version 16.0.0 (roc-5.6.1)"),
            "clang [AMD]"
        );
        assert_eq!(normalize_compiler("rustc version 1.74.0"), "rustc");
        assert_eq!(normalize_compiler("GCC: (Gentoo) 14"), "GCC [unknown]");
        assert_eq!(normalize_compiler("tcc 0.9.27"), "tcc 0.9.27"); // pass-through
    }

    #[test]
    fn combos_group_and_dedup() {
        let rec1 = record(
            1,
            1,
            "u",
            "/users/u/a",
            Some("3:a:b"),
            None,
            Some(vec![
                "GCC: (SUSE Linux) 13.2.1",
                "clang version 16.0.1 (Cray Inc.)",
            ]),
            1,
        );
        let combo = compiler_combo(&rec1).unwrap();
        assert_eq!(combo, vec!["GCC [SUSE]", "clang [Cray]"]);

        // Duplicate comments collapse.
        let rec2 = record(
            1,
            2,
            "u",
            "/users/u/b",
            None,
            None,
            Some(vec!["GCC: (SUSE Linux) 13.2.1", "GCC: (SUSE Linux) 13.2.0"]),
            1,
        );
        assert_eq!(compiler_combo(&rec2).unwrap(), vec!["GCC [SUSE]"]);
    }

    #[test]
    fn table6_aggregates() {
        let mk = |job, pid, user: &str, fh: &str, comps: Vec<&'static str>| {
            record(
                job,
                pid,
                user,
                "/users/u/app",
                Some(fh),
                None,
                Some(comps),
                job,
            )
        };
        let records = vec![
            mk(1, 1, "a", "3:x:1", vec!["GCC: (SUSE Linux) 13"]),
            mk(2, 2, "b", "3:x:2", vec!["GCC: (SUSE Linux) 13"]),
            mk(3, 3, "a", "3:x:3", vec!["LLD 17.0.0 [AMD ROCm]"]),
        ];
        let rows = compiler_table(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].combo, vec!["GCC [SUSE]"]);
        assert_eq!(rows[0].unique_users, 2);
        assert_eq!(rows[0].unique_file_h, 2);
    }

    #[test]
    fn system_records_excluded() {
        let rec = record(
            1,
            1,
            "u",
            "/usr/bin/rm",
            None,
            None,
            Some(vec!["GCC: (SUSE) 1"]),
            1,
        );
        assert!(compiler_table(&[rec]).is_empty());
    }
}
