//! Figure 2 — derived and filtered shared objects of user applications.

use crate::render::{group_digits, render_table};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use siren_text::SubstringDeriver;
use std::collections::{HashMap, HashSet};

/// One Figure-2 bar: a derived library label with its four series values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedLibRow {
    /// Derived combination label (e.g. `hdf5-fortran-parallel-cray`).
    pub library: String,
    /// Distinct users whose applications loaded it.
    pub unique_users: u64,
    /// Jobs.
    pub job_count: u64,
    /// Processes.
    pub process_count: u64,
    /// Distinct executables (by `FILE_H`, falling back to the path hash
    /// when the file hash is unavailable).
    pub unique_executables: u64,
}

/// Compute Figure 2 over user-directory records.
pub fn derived_library_stats(
    records: &[ProcessRecord],
    deriver: &SubstringDeriver,
) -> Vec<DerivedLibRow> {
    struct Acc {
        users: HashSet<String>,
        jobs: HashSet<u64>,
        procs: u64,
        exes: HashSet<String>,
    }
    let mut by_lib: HashMap<String, Acc> = HashMap::new();
    let mut first_seen: Vec<String> = Vec::new();

    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let Some(objects) = &rec.objects else {
            continue;
        };
        let labels = deriver.derive_all(objects);
        let exe_id = rec
            .file_hash
            .clone()
            .unwrap_or_else(|| rec.key.exe_hash.clone());
        for label in labels {
            if !by_lib.contains_key(&label) {
                first_seen.push(label.clone());
            }
            let acc = by_lib.entry(label).or_insert_with(|| Acc {
                users: HashSet::new(),
                jobs: HashSet::new(),
                procs: 0,
                exes: HashSet::new(),
            });
            if let Some(u) = rec.user() {
                acc.users.insert(u.to_string());
            }
            acc.jobs.insert(rec.key.job_id);
            acc.procs += 1;
            acc.exes.insert(exe_id.clone());
        }
    }

    // Order: descending unique users, then process count (the figure's
    // visual ordering is roughly by prevalence).
    let mut rows: Vec<DerivedLibRow> = by_lib
        .into_iter()
        .map(|(library, acc)| DerivedLibRow {
            library,
            unique_users: acc.users.len() as u64,
            job_count: acc.jobs.len() as u64,
            process_count: acc.procs,
            unique_executables: acc.exes.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| {
        (b.unique_users, b.process_count, &a.library).cmp(&(
            a.unique_users,
            a.process_count,
            &b.library,
        ))
    });
    rows
}

/// Render Figure 2 as a data table.
pub fn render_derived_libs(rows: &[DerivedLibRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.library.clone(),
                r.unique_users.to_string(),
                group_digits(r.job_count),
                group_digits(r.process_count),
                r.unique_executables.to_string(),
            ]
        })
        .collect();
    render_table(
        "Figure 2: Derived and filtered shared objects (data series)",
        &[
            "Library",
            "Users",
            "Jobs",
            "Processes",
            "Unique Executables",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    fn user_rec(job: u64, pid: u32, user: &str, fh: &str, objs: Vec<&str>) -> ProcessRecord {
        record(
            job,
            pid,
            user,
            "/users/x/app/bin/tool",
            Some(fh),
            Some(objs),
            None,
            job,
        )
    }

    #[test]
    fn derives_and_aggregates() {
        let d = SubstringDeriver::paper();
        let records = vec![
            user_rec(
                1,
                1,
                "a",
                "3:f1:x",
                vec![
                    "/opt/siren/lib/siren.so",
                    "/lib64/libpthread.so.0",
                    "/lib64/libc.so.6",
                ],
            ),
            user_rec(
                2,
                2,
                "b",
                "3:f2:x",
                vec![
                    "/opt/siren/lib/siren.so",
                    "/opt/cray/pe/hdf5/1.12/lib/libhdf5.so.200",
                ],
            ),
        ];
        let rows = derived_library_stats(&records, &d);
        let siren = rows.iter().find(|r| r.library == "siren").unwrap();
        assert_eq!(siren.unique_users, 2);
        assert_eq!(siren.process_count, 2);
        assert_eq!(siren.unique_executables, 2);
        let pthread = rows.iter().find(|r| r.library == "pthread").unwrap();
        assert_eq!(pthread.unique_users, 1);
        let hdf5 = rows.iter().find(|r| r.library == "hdf5-cray").unwrap();
        assert_eq!(hdf5.unique_users, 1);
        // libc derives to nothing and must not appear.
        assert!(rows.iter().all(|r| !r.library.contains("libc")));
    }

    #[test]
    fn siren_loaded_by_everything_ranks_first() {
        let d = SubstringDeriver::paper();
        let records: Vec<ProcessRecord> = (0..5)
            .map(|i| {
                user_rec(
                    i,
                    i as u32,
                    &format!("u{i}"),
                    "3:f:x",
                    vec!["/opt/siren/lib/siren.so", "/lib64/libpthread.so.0"],
                )
            })
            .collect();
        let rows = derived_library_stats(&records, &d);
        // siren and pthread tie on every count here; both must lead.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.unique_users == 5));
        assert!(rows.iter().any(|r| r.library == "siren"));
    }

    #[test]
    fn system_records_excluded() {
        let d = SubstringDeriver::paper();
        let rec = record(
            1,
            1,
            "a",
            "/usr/bin/bash",
            None,
            Some(vec!["/opt/siren/lib/siren.so"]),
            None,
            1,
        );
        assert!(derived_library_stats(&[rec], &d).is_empty());
    }
}
