//! Table 5 — derived software labels for user applications.
//!
//! "System operators can often deduce to which software an executable
//! belongs based on file or path names by using regular expressions to
//! match with known software names" (§4.3). Executables matching no rule
//! are labeled `UNKNOWN` — the starting point of the Table 7 similarity
//! search.

use crate::render::{group_digits, render_table};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use siren_text::RuleSet;
use std::collections::{HashMap, HashSet};

/// Label applied when no rule matches.
pub const UNKNOWN_LABEL: &str = "UNKNOWN";

/// The default rule list for the simulated deployment's software
/// population (ordered; first match wins; case-insensitive).
pub fn default_label_rules() -> RuleSet {
    RuleSet::new(&[
        ("LAMMPS", r"lmp|lammps"),
        ("GROMACS", r"gmx|gromacs"),
        ("miniconda", r"conda"),
        ("janko", r"janko"),
        ("icon", r"icon"),
        ("amber", r"amber|pmemd|sander"),
        ("gzip", r"gzip"),
        ("alexandria", r"alexandria"),
        ("RadRad", r"radrad"),
    ])
    .expect("default rules compile")
}

/// A path → label classifier.
pub struct Labeler {
    rules: RuleSet,
}

impl Default for Labeler {
    fn default() -> Self {
        Self {
            rules: default_label_rules(),
        }
    }
}

impl Labeler {
    /// Labeler with custom rules.
    pub fn new(rules: RuleSet) -> Self {
        Self { rules }
    }

    /// Label one executable path.
    pub fn label(&self, exe_path: &str) -> &str {
        self.rules.first_match(exe_path).unwrap_or(UNKNOWN_LABEL)
    }
}

/// One Table-5 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelRow {
    /// Derived software label.
    pub label: String,
    /// Distinct users.
    pub unique_users: u64,
    /// Jobs containing at least one process of this software.
    pub job_count: u64,
    /// Processes.
    pub process_count: u64,
    /// Distinct `FILE_H` values (distinct binaries).
    pub unique_file_h: u64,
}

/// Compute Table 5 over user-directory records. Sorted like the paper:
/// descending users, jobs, processes, FILE_H.
pub fn label_table(records: &[ProcessRecord], labeler: &Labeler) -> Vec<LabelRow> {
    struct Acc {
        users: HashSet<String>,
        jobs: HashSet<u64>,
        procs: u64,
        hashes: HashSet<String>,
    }
    let mut by_label: HashMap<String, Acc> = HashMap::new();

    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let Some(path) = rec.exe_path() else { continue };
        let label = labeler.label(path).to_string();
        let acc = by_label.entry(label).or_insert_with(|| Acc {
            users: HashSet::new(),
            jobs: HashSet::new(),
            procs: 0,
            hashes: HashSet::new(),
        });
        if let Some(u) = rec.user() {
            acc.users.insert(u.to_string());
        }
        acc.jobs.insert(rec.key.job_id);
        acc.procs += 1;
        if let Some(h) = &rec.file_hash {
            acc.hashes.insert(h.clone());
        }
    }

    let mut rows: Vec<LabelRow> = by_label
        .into_iter()
        .map(|(label, acc)| LabelRow {
            label,
            unique_users: acc.users.len() as u64,
            job_count: acc.jobs.len() as u64,
            process_count: acc.procs,
            unique_file_h: acc.hashes.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| {
        (
            b.unique_users,
            b.job_count,
            b.process_count,
            b.unique_file_h,
        )
            .cmp(&(
                a.unique_users,
                a.job_count,
                a.process_count,
                a.unique_file_h,
            ))
    });
    rows
}

/// Render Table 5.
pub fn render_labels(rows: &[LabelRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.unique_users.to_string(),
                group_digits(r.job_count),
                group_digits(r.process_count),
                r.unique_file_h.to_string(),
            ]
        })
        .collect();
    render_table(
        "Table 5: Derived labels for user applications",
        &["Software", "Users", "Jobs", "Processes", "Unique FILE_H"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    #[test]
    fn labeler_matches_paths() {
        let l = Labeler::default();
        assert_eq!(l.label("/users/u2/lammps/build/lmp"), "LAMMPS");
        assert_eq!(l.label("/users/u8/gromacs-2024/bin/gmx_mpi"), "GROMACS");
        assert_eq!(l.label("/users/u2/miniconda3/bin/python3.11"), "miniconda");
        assert_eq!(l.label("/users/u4/icon-model/build_3/bin/icon"), "icon");
        assert_eq!(l.label("/users/u10/amber22/bin/pmemd.hip"), "amber");
        assert_eq!(l.label("/users/u2/tools/gzip-1.13/bin/gzip"), "gzip");
        assert_eq!(
            l.label("/scratch/project_462000123/run_0/a.out"),
            UNKNOWN_LABEL
        );
    }

    #[test]
    fn table5_aggregates_per_label() {
        let l = Labeler::default();
        let records = vec![
            record(
                1,
                1,
                "user_2",
                "/users/user_2/lammps/build/lmp",
                Some("3:a:b"),
                None,
                None,
                1,
            ),
            record(
                2,
                2,
                "user_2",
                "/users/user_2/lammps/build/lmp",
                Some("3:a:b"),
                None,
                None,
                2,
            ),
            record(
                3,
                3,
                "user_3",
                "/users/user_3/lammps/build/lmp",
                Some("3:c:d"),
                None,
                None,
                3,
            ),
            record(
                4,
                4,
                "user_4",
                "/scratch/p/a.out",
                Some("3:e:f"),
                None,
                None,
                4,
            ),
            // System record must be ignored.
            record(5, 5, "user_1", "/usr/bin/rm", None, None, None, 5),
        ];
        let rows = label_table(&records, &l);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "LAMMPS");
        assert_eq!(rows[0].unique_users, 2);
        assert_eq!(rows[0].job_count, 3);
        assert_eq!(rows[0].process_count, 3);
        assert_eq!(rows[0].unique_file_h, 2);
        assert_eq!(rows[1].label, UNKNOWN_LABEL);
        assert_eq!(rows[1].process_count, 1);
    }

    #[test]
    fn rule_order_wins() {
        // A path matching both "conda" and "icon" takes the earlier rule.
        let l = Labeler::default();
        assert_eq!(l.label("/users/x/miniconda3/icon-tool"), "miniconda");
    }

    #[test]
    fn render_contains_labels() {
        let l = Labeler::default();
        let records = vec![record(
            1,
            1,
            "u",
            "/users/u/janko/bin/janko",
            Some("3:a:b"),
            None,
            None,
            1,
        )];
        let out = render_labels(&label_table(&records, &l));
        assert!(out.contains("janko"));
    }
}
