//! # siren-analysis — the paper's §4 analysis layer
//!
//! Every table and figure of the evaluation, as a typed computation over
//! consolidated [`ProcessRecord`]s:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`usage`] | Table 2 — users, jobs, processes by category |
//! | [`system_usage`] | Table 3 — top system executables; Table 4 — library-set variants |
//! | [`labels`] | Table 5 — derived software labels for user executables |
//! | [`compilers`] | Table 6 — compiler combinations |
//! | [`similarity`] | Table 7 — similarity search identifying UNKNOWN |
//! | [`python_stats`] | Table 8 — Python interpreters; Figure 3 — imported packages |
//! | [`derived_libs`] | Figure 2 — derived/filtered shared objects |
//! | [`matrix`] | Figures 4 & 5 — compiler × label and library × label matrices |
//! | [`baseline`] | §5 ablations — name-based / exact-hash / byte-level baselines |
//!
//! Each computation returns a plain struct of rows; `render()` methods
//! produce the paper-style text tables the experiment harness prints.

pub mod baseline;
pub mod clusterize;
pub mod compilers;
pub mod derived_libs;
pub mod labels;
pub mod matrix;
pub mod python_stats;
pub mod recurrence;
pub mod render;
pub mod security;
pub mod similarity;
pub mod system_usage;
pub mod usage;

pub use baseline::{byte_similarity, RecognitionAblation};
pub use clusterize::{cluster_binaries, clustering_quality, ClusterQuality, Clustering, UnionFind};
pub use compilers::{compiler_table, normalize_compiler, CompilerRow};
pub use derived_libs::{derived_library_stats, DerivedLibRow};
pub use labels::{default_label_rules, label_table, LabelRow, Labeler};
pub use matrix::{compiler_matrix, library_matrix, BinaryMatrix};
pub use python_stats::{interpreter_table, package_stats, InterpreterRow, PackageRow};
pub use recurrence::{recurrence_summary, recurrence_table, RecurrenceRow, RecurrenceSummary};
pub use security::{audit_python_imports, Advisory, SecurityReport, ADVISORY_DB};
pub use similarity::{similarity_search_table, SimilarityRow};
pub use system_usage::{
    library_usage, library_variant_table, system_table, LibraryUsageRow, LibraryVariantRow,
    SystemRow,
};
pub use usage::{usage_table, UsageRow};

use siren_consolidate::ProcessRecord;

/// Process category, re-derived from the consolidated record (the
/// analysis layer cannot see collector internals — only the data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordCategory {
    /// Executable in a system directory.
    System,
    /// Executable elsewhere.
    User,
    /// Python interpreter in a system directory.
    Python,
    /// Metadata lost; category unknown.
    Unknown,
}

/// Categorize one record.
pub fn category_of(rec: &ProcessRecord) -> RecordCategory {
    let Some(path) = rec.exe_path() else {
        return RecordCategory::Unknown;
    };
    const SYSTEM_DIRS: &[&str] = &[
        "/etc/", "/dev/", "/usr/", "/bin/", "/boot/", "/lib/", "/opt/", "/sbin/", "/sys/",
        "/proc/", "/var/",
    ];
    let in_system = SYSTEM_DIRS.iter().any(|d| path.starts_with(d));
    if !in_system {
        RecordCategory::User
    } else if rec.is_python_interpreter() {
        RecordCategory::Python
    } else {
        RecordCategory::System
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use siren_consolidate::{parse_kv, ProcessRecord};
    use siren_db::Record;
    use siren_wire::{Layer, MessageType};

    /// Build a minimal consolidated record for analysis tests.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        job: u64,
        pid: u32,
        user: &str,
        path: &str,
        file_hash: Option<&str>,
        objects: Option<Vec<&str>>,
        compilers: Option<Vec<&str>>,
        time: u64,
    ) -> ProcessRecord {
        let row = Record {
            job_id: job,
            step_id: 0,
            pid,
            exe_hash: format!("{path}-{pid}"),
            host: "nid1".into(),
            time,
            layer: Layer::SelfExe,
            mtype: MessageType::Meta,
            content: String::new(),
        };
        let mut rec = ProcessRecord::new(&row);
        rec.meta = parse_kv(&format!("path={path};uid=1000;user={user}"));
        rec.file_hash = file_hash.map(|s| s.to_string());
        rec.objects = objects.map(|v| v.into_iter().map(|s| s.to_string()).collect());
        rec.compilers = compilers.map(|v| v.into_iter().map(|s| s.to_string()).collect());
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::record;

    #[test]
    fn category_derivation() {
        let sys = record(1, 1, "u", "/usr/bin/bash", None, None, None, 0);
        let user = record(1, 2, "u", "/users/u/app", None, None, None, 0);
        let py = record(1, 3, "u", "/usr/bin/python3.10", None, None, None, 0);
        assert_eq!(category_of(&sys), RecordCategory::System);
        assert_eq!(category_of(&user), RecordCategory::User);
        assert_eq!(category_of(&py), RecordCategory::Python);

        let mut lost = record(1, 4, "u", "/x", None, None, None, 0);
        lost.meta.clear();
        assert_eq!(category_of(&lost), RecordCategory::Unknown);
    }
}
