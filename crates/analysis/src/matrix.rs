//! Figures 4 & 5 — boolean usage matrices: software label × compiler, and
//! software label × derived library.

use crate::compilers::compiler_combo;
use crate::labels::{Labeler, UNKNOWN_LABEL};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use siren_text::SubstringDeriver;
use std::collections::{BTreeMap, BTreeSet};

/// A boolean matrix with labeled axes (rows = software labels, columns =
/// compilers or libraries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryMatrix {
    /// Row labels, sorted.
    pub rows: Vec<String>,
    /// Column labels, in presentation order.
    pub cols: Vec<String>,
    /// `cells[r][c] == true` ⇔ software `rows[r]` uses `cols[c]`.
    pub cells: Vec<Vec<bool>>,
}

impl BinaryMatrix {
    fn from_pairs(pairs: BTreeMap<String, BTreeSet<String>>, col_order: &[String]) -> Self {
        let rows: Vec<String> = pairs.keys().cloned().collect();
        let cols: Vec<String> = col_order.to_vec();
        let cells = rows
            .iter()
            .map(|r| cols.iter().map(|c| pairs[r].contains(c)).collect())
            .collect();
        Self { rows, cols, cells }
    }

    /// Value at (row label, column label), if both exist.
    pub fn get(&self, row: &str, col: &str) -> Option<bool> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.cols.iter().position(|x| x == col)?;
        Some(self.cells[r][c])
    }

    /// Render in the paper's 1/0 grid style.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(title);
        out.push('\n');
        let row_w = self.rows.iter().map(|r| r.len()).max().unwrap_or(8).max(8);
        // Column header block (one line per column, indented) keeps wide
        // matrices readable in a terminal.
        for (i, c) in self.cols.iter().enumerate() {
            out.push_str(&format!("{:>row_w$}  col {i:>2}: {c}\n", ""));
        }
        for (r, row_label) in self.rows.iter().enumerate() {
            out.push_str(&format!("{row_label:>row_w$}  "));
            for c in 0..self.cols.len() {
                out.push(if self.cells[r][c] { '1' } else { '0' });
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }
}

/// Figure 4: software label × normalized compiler identification.
pub fn compiler_matrix(records: &[ProcessRecord], labeler: &Labeler) -> BinaryMatrix {
    let mut pairs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut col_order: Vec<String> = Vec::new();

    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let Some(path) = rec.exe_path() else { continue };
        let label = labeler.label(path);
        if label == UNKNOWN_LABEL {
            continue; // the paper's Fig. 4 rows are the nine known labels
        }
        let Some(combo) = compiler_combo(rec) else {
            continue;
        };
        for compiler in combo {
            if !col_order.contains(&compiler) {
                col_order.push(compiler.clone());
            }
            pairs.entry(label.to_string()).or_default().insert(compiler);
        }
    }

    BinaryMatrix::from_pairs(pairs, &col_order)
}

/// Figure 5: software label × derived library label.
pub fn library_matrix(
    records: &[ProcessRecord],
    labeler: &Labeler,
    deriver: &SubstringDeriver,
) -> BinaryMatrix {
    let mut pairs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut col_order: Vec<String> = Vec::new();

    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let Some(path) = rec.exe_path() else { continue };
        let label = labeler.label(path);
        if label == UNKNOWN_LABEL {
            continue;
        }
        let Some(objects) = &rec.objects else {
            continue;
        };
        for lib in deriver.derive_all(objects) {
            if !col_order.contains(&lib) {
                col_order.push(lib.clone());
            }
            pairs.entry(label.to_string()).or_default().insert(lib);
        }
    }

    BinaryMatrix::from_pairs(pairs, &col_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    #[test]
    fn compiler_matrix_cells() {
        let labeler = Labeler::default();
        let records = vec![
            record(
                1,
                1,
                "a",
                "/users/a/lammps/lmp",
                None,
                None,
                Some(vec!["GCC: (SUSE Linux) 13", "LLD 17 [AMD ROCm]"]),
                1,
            ),
            record(
                2,
                2,
                "b",
                "/users/b/gromacs/gmx",
                None,
                None,
                Some(vec!["LLD 17 [AMD ROCm]"]),
                2,
            ),
        ];
        let m = compiler_matrix(&records, &labeler);
        assert_eq!(m.get("LAMMPS", "GCC [SUSE]"), Some(true));
        assert_eq!(m.get("LAMMPS", "LLD [AMD]"), Some(true));
        assert_eq!(m.get("GROMACS", "GCC [SUSE]"), Some(false));
        assert_eq!(m.get("GROMACS", "LLD [AMD]"), Some(true));
    }

    #[test]
    fn library_matrix_cells() {
        let labeler = Labeler::default();
        let deriver = SubstringDeriver::paper();
        let records = vec![record(
            1,
            1,
            "a",
            "/users/a/amber22/bin/pmemd.hip",
            None,
            Some(vec![
                "/opt/siren/lib/siren.so",
                "/opt/cray/pe/hdf5/1/libhdf5.so",
            ]),
            None,
            1,
        )];
        let m = library_matrix(&records, &labeler, &deriver);
        assert_eq!(m.get("amber", "siren"), Some(true));
        assert_eq!(m.get("amber", "hdf5-cray"), Some(true));
        assert_eq!(m.get("amber", "nonexistent"), None);
    }

    #[test]
    fn unknown_label_excluded() {
        let labeler = Labeler::default();
        let records = vec![record(
            1,
            1,
            "a",
            "/scratch/x/a.out",
            None,
            None,
            Some(vec!["GCC: (SUSE Linux) 13"]),
            1,
        )];
        let m = compiler_matrix(&records, &labeler);
        assert!(m.rows.is_empty());
    }

    #[test]
    fn render_grid() {
        let labeler = Labeler::default();
        let records = vec![record(
            1,
            1,
            "a",
            "/users/a/janko/bin/janko",
            None,
            None,
            Some(vec!["GCC: (HPE) 12.2.0"]),
            1,
        )];
        let out = compiler_matrix(&records, &labeler).render("Figure 4");
        assert!(out.contains("janko"));
        assert!(out.contains("GCC [HPE]"));
        assert!(out.contains('1'));
    }
}
