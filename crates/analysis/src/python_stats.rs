//! Table 8 & Figure 3 — Python interpreters and imported packages.

use crate::render::{group_digits, render_table};
use crate::{category_of, RecordCategory};
use siren_consolidate::{extract_python_imports, ProcessRecord};
use std::collections::{HashMap, HashSet};

/// One Table-8 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpreterRow {
    /// Interpreter executable name (`python3.10`).
    pub interpreter: String,
    /// Distinct users.
    pub unique_users: u64,
    /// Jobs.
    pub job_count: u64,
    /// Processes.
    pub process_count: u64,
    /// Distinct `SCRIPT_H` values (distinct input scripts).
    pub unique_script_h: u64,
}

/// Compute Table 8 over Python-interpreter records.
pub fn interpreter_table(records: &[ProcessRecord]) -> Vec<InterpreterRow> {
    struct Acc {
        users: HashSet<String>,
        jobs: HashSet<u64>,
        procs: u64,
        scripts: HashSet<String>,
    }
    let mut by_interp: HashMap<String, Acc> = HashMap::new();

    for rec in records {
        if category_of(rec) != RecordCategory::Python {
            continue;
        }
        let Some(name) = rec.exe_name() else { continue };
        let acc = by_interp.entry(name.to_string()).or_insert_with(|| Acc {
            users: HashSet::new(),
            jobs: HashSet::new(),
            procs: 0,
            scripts: HashSet::new(),
        });
        if let Some(u) = rec.user() {
            acc.users.insert(u.to_string());
        }
        acc.jobs.insert(rec.key.job_id);
        acc.procs += 1;
        if let Some(script) = &rec.script {
            if let Some(h) = &script.script_hash {
                acc.scripts.insert(h.clone());
            }
        }
    }

    let mut rows: Vec<InterpreterRow> = by_interp
        .into_iter()
        .map(|(interpreter, acc)| InterpreterRow {
            interpreter,
            unique_users: acc.users.len() as u64,
            job_count: acc.jobs.len() as u64,
            process_count: acc.procs,
            unique_script_h: acc.scripts.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| {
        (
            b.unique_users,
            b.job_count,
            b.process_count,
            b.unique_script_h,
        )
            .cmp(&(
                a.unique_users,
                a.job_count,
                a.process_count,
                a.unique_script_h,
            ))
    });
    rows
}

/// One Figure-3 bar: a package with its four series values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageRow {
    /// Package name.
    pub package: String,
    /// Distinct users importing it.
    pub unique_users: u64,
    /// Jobs.
    pub job_count: u64,
    /// Processes.
    pub process_count: u64,
    /// Distinct scripts importing it.
    pub unique_scripts: u64,
}

/// Compute Figure 3 over Python-interpreter records, given the known
/// package catalog (package extraction happens here, on the memory maps,
/// as the paper's post-processing does).
pub fn package_stats(records: &[ProcessRecord], catalog: &[&str]) -> Vec<PackageRow> {
    struct Acc {
        users: HashSet<String>,
        jobs: HashSet<u64>,
        procs: u64,
        scripts: HashSet<String>,
    }
    let mut by_pkg: HashMap<&str, Acc> = HashMap::new();

    for rec in records {
        if category_of(rec) != RecordCategory::Python {
            continue;
        }
        let Some(maps) = &rec.maps else { continue };
        let imports = extract_python_imports(maps, catalog);
        for pkg in imports {
            let acc = by_pkg.entry(pkg).or_insert_with(|| Acc {
                users: HashSet::new(),
                jobs: HashSet::new(),
                procs: 0,
                scripts: HashSet::new(),
            });
            if let Some(u) = rec.user() {
                acc.users.insert(u.to_string());
            }
            acc.jobs.insert(rec.key.job_id);
            acc.procs += 1;
            if let Some(script) = &rec.script {
                if let Some(h) = &script.script_hash {
                    acc.scripts.insert(h.clone());
                }
            }
        }
    }

    // Keep catalog (x-axis) order for figure-parity; absent packages are
    // omitted (they would be zero-height bars).
    catalog
        .iter()
        .filter_map(|pkg| {
            by_pkg.get(pkg).map(|acc| PackageRow {
                package: pkg.to_string(),
                unique_users: acc.users.len() as u64,
                job_count: acc.jobs.len() as u64,
                process_count: acc.procs,
                unique_scripts: acc.scripts.len() as u64,
            })
        })
        .collect()
}

/// Render Table 8.
pub fn render_interpreters(rows: &[InterpreterRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.interpreter.clone(),
                r.unique_users.to_string(),
                group_digits(r.job_count),
                group_digits(r.process_count),
                r.unique_script_h.to_string(),
            ]
        })
        .collect();
    render_table(
        "Table 8: Python interpreters",
        &[
            "Interpreter",
            "Users",
            "Jobs",
            "Processes",
            "Unique SCRIPT_H",
        ],
        &body,
    )
}

/// Render Figure 3 as a data table (one row per package, four series).
pub fn render_packages(rows: &[PackageRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.package.clone(),
                r.unique_users.to_string(),
                group_digits(r.job_count),
                group_digits(r.process_count),
                r.unique_scripts.to_string(),
            ]
        })
        .collect();
    render_table(
        "Figure 3: Imported Python packages (data series)",
        &["Package", "Users", "Jobs", "Processes", "Unique Scripts"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;
    use siren_consolidate::ScriptRecord;

    fn py_rec(
        job: u64,
        pid: u32,
        user: &str,
        interp: &str,
        script_h: &str,
        maps: Vec<&str>,
    ) -> ProcessRecord {
        let mut r = record(job, pid, user, interp, None, None, None, job);
        r.maps = Some(maps.into_iter().map(|s| s.to_string()).collect());
        r.script = Some(ScriptRecord {
            path: Some("/u/s.py".into()),
            meta: Default::default(),
            script_hash: Some(script_h.into()),
        });
        r
    }

    #[test]
    fn interpreter_rows_aggregate() {
        let records = vec![
            py_rec(1, 1, "a", "/usr/bin/python3.6", "3:s1:x", vec![]),
            py_rec(1, 2, "a", "/usr/bin/python3.6", "3:s1:x", vec![]),
            py_rec(2, 3, "a", "/usr/bin/python3.6", "3:s2:x", vec![]),
            py_rec(
                3,
                4,
                "b",
                "/opt/python/3.11.4/bin/python3.11",
                "3:s3:x",
                vec![],
            ),
        ];
        let rows = interpreter_table(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].interpreter, "python3.6");
        assert_eq!(rows[0].process_count, 3);
        assert_eq!(rows[0].unique_script_h, 2);
        assert_eq!(rows[0].job_count, 2);
        assert_eq!(rows[1].interpreter, "python3.11");
    }

    #[test]
    fn non_python_records_excluded() {
        let records = vec![record(1, 1, "a", "/usr/bin/bash", None, None, None, 1)];
        assert!(interpreter_table(&records).is_empty());
    }

    #[test]
    fn package_stats_from_maps() {
        let catalog = ["heapq", "numpy", "pandas"];
        let records = vec![
            py_rec(
                1,
                1,
                "a",
                "/usr/bin/python3.6",
                "3:s1:x",
                vec![
                    "/usr/lib64/python3.6/lib-dynload/_heapq.cpython-36m.so",
                    "/usr/lib64/python3.6/site-packages/numpy/core/_impl.so",
                ],
            ),
            py_rec(
                2,
                2,
                "b",
                "/usr/bin/python3.6",
                "3:s2:x",
                vec!["/usr/lib64/python3.6/lib-dynload/_heapq.cpython-36m.so"],
            ),
        ];
        let rows = package_stats(&records, &catalog);
        assert_eq!(rows.len(), 2); // heapq + numpy; pandas absent
        let heapq = rows.iter().find(|r| r.package == "heapq").unwrap();
        assert_eq!(heapq.unique_users, 2);
        assert_eq!(heapq.process_count, 2);
        assert_eq!(heapq.unique_scripts, 2);
        let numpy = rows.iter().find(|r| r.package == "numpy").unwrap();
        assert_eq!(numpy.unique_users, 1);
    }

    #[test]
    fn catalog_order_preserved() {
        let catalog = ["zoneinfo", "heapq"];
        let records = vec![py_rec(
            1,
            1,
            "a",
            "/usr/bin/python3.6",
            "3:s:x",
            vec![
                "/usr/lib64/python3.6/lib-dynload/_heapq.so",
                "/usr/lib64/python3.6/lib-dynload/_zoneinfo.so",
            ],
        )];
        let rows = package_stats(&records, &catalog);
        assert_eq!(rows[0].package, "zoneinfo");
        assert_eq!(rows[1].package, "heapq");
    }

    #[test]
    fn renders() {
        let records = vec![py_rec(1, 1, "a", "/usr/bin/python3.6", "3:s:x", vec![])];
        assert!(render_interpreters(&interpreter_table(&records)).contains("python3.6"));
        assert!(render_packages(&[]).contains("Figure 3"));
    }
}
