//! Recognition of repeated executions — the abstract's second promise:
//!
//! > …identification of unknown software and **recognition of repeated
//! > executions**, which facilitate system optimization and security
//! > improvements.
//!
//! Repeated executions of the *same binary* are recognized by `FILE_H`
//! equality (exact fuzzy-hash match ⇒ effectively identical file, §4.3);
//! repeated executions of the *same application in a different build* are
//! recognized by high-but-imperfect similarity. This module produces the
//! per-binary execution history that downstream use cases (performance-
//! variability studies over "repetitive job behavior" [14], energy
//! prediction [36]) consume.

use crate::render::{group_digits, render_table};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use std::collections::{HashMap, HashSet};

/// Execution history of one distinct binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceRow {
    /// `FILE_H` of the binary.
    pub file_hash: String,
    /// Representative executable path (first observed).
    pub example_path: String,
    /// Total executions (process observations).
    pub executions: u64,
    /// Distinct jobs it ran in.
    pub jobs: u64,
    /// Distinct users who ran it.
    pub users: u64,
    /// Distinct paths it was observed under (copies of one binary in
    /// several locations — the paper notes this explicitly).
    pub paths: u64,
    /// First observation timestamp.
    pub first_seen: u64,
    /// Last observation timestamp.
    pub last_seen: u64,
}

impl RecurrenceRow {
    /// Is this binary *recurrent* (executed in more than one job)?
    pub fn is_recurrent(&self) -> bool {
        self.jobs > 1
    }
}

/// Build the execution history for every distinct user-directory binary.
/// Sorted by executions descending (ties by first-seen, hash).
pub fn recurrence_table(records: &[ProcessRecord]) -> Vec<RecurrenceRow> {
    struct Acc {
        example_path: String,
        executions: u64,
        jobs: HashSet<u64>,
        users: HashSet<String>,
        paths: HashSet<String>,
        first_seen: u64,
        last_seen: u64,
    }
    let mut by_hash: HashMap<String, Acc> = HashMap::new();

    for rec in records {
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        let (Some(path), Some(fh)) = (rec.exe_path(), rec.file_hash.clone()) else {
            continue;
        };
        let acc = by_hash.entry(fh).or_insert_with(|| Acc {
            example_path: path.to_string(),
            executions: 0,
            jobs: HashSet::new(),
            users: HashSet::new(),
            paths: HashSet::new(),
            first_seen: u64::MAX,
            last_seen: 0,
        });
        acc.executions += 1;
        acc.jobs.insert(rec.key.job_id);
        if let Some(u) = rec.user() {
            acc.users.insert(u.to_string());
        }
        acc.paths.insert(path.to_string());
        acc.first_seen = acc.first_seen.min(rec.key.time);
        acc.last_seen = acc.last_seen.max(rec.key.time);
    }

    let mut rows: Vec<RecurrenceRow> = by_hash
        .into_iter()
        .map(|(file_hash, acc)| RecurrenceRow {
            file_hash,
            example_path: acc.example_path,
            executions: acc.executions,
            jobs: acc.jobs.len() as u64,
            users: acc.users.len() as u64,
            paths: acc.paths.len() as u64,
            first_seen: acc.first_seen,
            last_seen: acc.last_seen,
        })
        .collect();
    rows.sort_by(|a, b| {
        (b.executions, a.first_seen, &a.file_hash).cmp(&(a.executions, b.first_seen, &b.file_hash))
    });
    rows
}

/// Summary statistics over a recurrence table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecurrenceSummary {
    /// Distinct binaries observed.
    pub distinct_binaries: u64,
    /// Binaries executed in more than one job.
    pub recurrent_binaries: u64,
    /// Binaries observed under more than one path (copies).
    pub multi_path_binaries: u64,
    /// Total executions covered by recurrent binaries.
    pub recurrent_executions: u64,
}

/// Summarize a recurrence table.
pub fn recurrence_summary(rows: &[RecurrenceRow]) -> RecurrenceSummary {
    RecurrenceSummary {
        distinct_binaries: rows.len() as u64,
        recurrent_binaries: rows.iter().filter(|r| r.is_recurrent()).count() as u64,
        multi_path_binaries: rows.iter().filter(|r| r.paths > 1).count() as u64,
        recurrent_executions: rows
            .iter()
            .filter(|r| r.is_recurrent())
            .map(|r| r.executions)
            .sum(),
    }
}

/// Render the top-`n` recurrence rows plus the summary.
pub fn render_recurrence(rows: &[RecurrenceRow], n: usize) -> String {
    let summary = recurrence_summary(rows);
    let body: Vec<Vec<String>> = rows
        .iter()
        .take(n)
        .map(|r| {
            vec![
                r.example_path.clone(),
                group_digits(r.executions),
                group_digits(r.jobs),
                r.users.to_string(),
                r.paths.to_string(),
                format!("{}", r.last_seen.saturating_sub(r.first_seen) / 86_400),
            ]
        })
        .collect();
    format!(
        "{}\nsummary: {} distinct binaries, {} recurrent (≥2 jobs), {} under multiple paths, {} recurrent executions\n",
        render_table(
            &format!("Repeated-execution recognition (top {n} binaries)"),
            &["Example path", "Execs", "Jobs", "Users", "Paths", "Span (days)"],
            &body,
        ),
        summary.distinct_binaries,
        summary.recurrent_binaries,
        summary.multi_path_binaries,
        summary.recurrent_executions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    #[test]
    fn repeated_executions_recognized_by_file_hash() {
        let records = vec![
            record(
                1,
                1,
                "a",
                "/users/a/app/bin/x",
                Some("3:f:1"),
                None,
                None,
                100,
            ),
            record(
                2,
                2,
                "a",
                "/users/a/app/bin/x",
                Some("3:f:1"),
                None,
                None,
                200,
            ),
            record(3, 3, "b", "/users/b/copy/x", Some("3:f:1"), None, None, 300),
            record(
                4,
                4,
                "a",
                "/users/a/app/bin/y",
                Some("3:f:2"),
                None,
                None,
                150,
            ),
        ];
        let rows = recurrence_table(&records);
        assert_eq!(rows.len(), 2);
        let top = &rows[0];
        assert_eq!(top.file_hash, "3:f:1");
        assert_eq!(top.executions, 3);
        assert_eq!(top.jobs, 3);
        assert_eq!(top.users, 2);
        assert_eq!(top.paths, 2, "same binary under two paths");
        assert_eq!((top.first_seen, top.last_seen), (100, 300));
        assert!(top.is_recurrent());
        assert!(!rows[1].is_recurrent());
    }

    #[test]
    fn summary_counts() {
        let records = vec![
            record(1, 1, "a", "/users/a/x", Some("3:f:1"), None, None, 1),
            record(2, 2, "a", "/users/a/x", Some("3:f:1"), None, None, 2),
            record(3, 3, "a", "/users/a/y", Some("3:f:2"), None, None, 3),
        ];
        let s = recurrence_summary(&recurrence_table(&records));
        assert_eq!(s.distinct_binaries, 2);
        assert_eq!(s.recurrent_binaries, 1);
        assert_eq!(s.recurrent_executions, 2);
        assert_eq!(s.multi_path_binaries, 0);
    }

    #[test]
    fn system_records_excluded() {
        let records = vec![record(
            1,
            1,
            "a",
            "/usr/bin/rm",
            Some("3:f:1"),
            None,
            None,
            1,
        )];
        assert!(recurrence_table(&records).is_empty());
    }

    #[test]
    fn missing_file_hash_excluded() {
        let records = vec![record(1, 1, "a", "/users/a/x", None, None, None, 1)];
        assert!(recurrence_table(&records).is_empty());
    }

    #[test]
    fn render_contains_summary() {
        let records = vec![
            record(1, 1, "a", "/users/a/x", Some("3:f:1"), None, None, 1),
            record(2, 2, "a", "/users/a/x", Some("3:f:1"), None, None, 90_000),
        ];
        let out = render_recurrence(&recurrence_table(&records), 5);
        assert!(out.contains("recurrent"));
        assert!(out.contains("/users/a/x"));
        assert!(out.contains("1 recurrent"));
    }
}
