//! Plain-text table rendering for experiment output.

/// Render a table: header row + data rows, columns left-aligned except
/// numeric-looking cells which are right-aligned.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let numeric = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_digit() || c == '.' || c == ',' || c == '%' || c == '-')
    };

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for w in &widths {
        out.push_str(&"-".repeat(*w));
        out.push_str("  ");
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            if numeric(cell) {
                out.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
            } else {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
        }
        out.push('\n');
    }
    out
}

/// Thousands separator for readability (the paper prints `13,448`).
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Render `-` for zero counts, digits otherwise (Table 2 style).
pub fn dash_zero(n: u64) -> String {
    if n == 0 {
        "-".to_string()
    } else {
        group_digits(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_grouped() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(2_317_859), "2,317,859");
    }

    #[test]
    fn dash_for_zero() {
        assert_eq!(dash_zero(0), "-");
        assert_eq!(dash_zero(5), "5");
    }

    #[test]
    fn table_renders_aligned() {
        let out = render_table(
            "T",
            &["name", "count"],
            &[
                vec!["alpha".into(), "12".into()],
                vec!["b".into(), "3,456".into()],
            ],
        );
        assert!(out.contains("alpha"));
        assert!(out.lines().count() >= 5);
        // numeric right-aligned under its header width
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[3].contains("   12") || lines[3].contains("12"));
    }
}
