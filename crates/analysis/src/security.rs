//! Python package security audit — the paper's stated future work (§6):
//!
//! > We also plan to cross-reference Python imports against known
//! > non-secure packages to detect known and potential vulnerabilities.
//!
//! Two checks over the imported-package extraction (§4.4):
//!
//! * **known-insecure lookup** — imports matched against an advisory
//!   database (the shape of PyUp's safety-db: package → affected-version
//!   advisories);
//! * **slopsquatting watch** — imports that are *not* in the site's known
//!   package catalog at all. The paper highlights LLM-hallucinated
//!   dependency names registered by attackers ("slopsquatting"); a
//!   package nobody vetted appearing in interpreter memory maps is the
//!   on-system symptom.

use crate::render::render_table;
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use std::collections::{BTreeMap, HashSet};

/// One advisory in the (simulated) insecure-package database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Advisory {
    /// Package name.
    pub package: &'static str,
    /// Advisory identifier.
    pub id: &'static str,
    /// Human-readable summary.
    pub summary: &'static str,
}

/// A small advisory database in the shape of safety-db. The entries are
/// synthetic (the real database is not redistributable), but the lookup
/// path is the real one.
pub const ADVISORY_DB: &[Advisory] = &[
    Advisory {
        package: "numpy",
        id: "SIM-2024-0001",
        summary: "buffer over-read in legacy pickle loading (fixed in 1.26.5)",
    },
    Advisory {
        package: "lzma",
        id: "SIM-2024-0002",
        summary: "decompression bomb resource exhaustion in streamed archives",
    },
    Advisory {
        package: "pickle",
        id: "SIM-2024-0003",
        summary: "arbitrary code execution on untrusted input (by design; flag usage)",
    },
];

/// Audit findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecurityReport {
    /// Packages with advisories: package → (advisory id, users, processes).
    pub insecure: BTreeMap<String, (String, u64, u64)>,
    /// Mapped extension modules whose package is not in the site catalog:
    /// potential slopsquats. package-ish token → (users, processes).
    pub unknown_packages: BTreeMap<String, (u64, u64)>,
    /// Python interpreter processes examined.
    pub processes_examined: u64,
}

impl SecurityReport {
    /// Render as a report table pair.
    pub fn render(&self) -> String {
        let mut insecure_rows: Vec<Vec<String>> = self
            .insecure
            .iter()
            .map(|(pkg, (id, users, procs))| {
                vec![
                    pkg.clone(),
                    id.clone(),
                    users.to_string(),
                    procs.to_string(),
                ]
            })
            .collect();
        if insecure_rows.is_empty() {
            insecure_rows.push(vec![
                "(none)".into(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        let mut unknown_rows: Vec<Vec<String>> = self
            .unknown_packages
            .iter()
            .map(|(pkg, (users, procs))| vec![pkg.clone(), users.to_string(), procs.to_string()])
            .collect();
        if unknown_rows.is_empty() {
            unknown_rows.push(vec!["(none)".into(), String::new(), String::new()]);
        }
        format!(
            "{}\n{}",
            render_table(
                &format!(
                    "Security audit: advisory matches over {} interpreter processes",
                    self.processes_examined
                ),
                &["Package", "Advisory", "Users", "Processes"],
                &insecure_rows,
            ),
            render_table(
                "Security audit: packages outside the site catalog (slopsquatting watch)",
                &["Package token", "Users", "Processes"],
                &unknown_rows,
            ),
        )
    }
}

/// Extract package-ish tokens from interpreter memory maps, *including*
/// ones not in the catalog (the slopsquatting check needs exactly the
/// unknown ones).
fn map_package_tokens(maps: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for m in maps {
        // site-packages/<pkg>/...
        if let Some(idx) = m.find("site-packages/") {
            let rest = &m[idx + "site-packages/".len()..];
            if let Some(end) = rest.find('/') {
                out.push(rest[..end].to_string());
                continue;
            }
        }
        // lib-dynload/_<pkg>.cpython...
        if let Some(idx) = m.find("lib-dynload/_") {
            let rest = &m[idx + "lib-dynload/_".len()..];
            if let Some(end) = rest.find('.') {
                out.push(rest[..end].to_string());
            }
        }
    }
    out
}

/// Run the audit over Python-interpreter records.
pub fn audit_python_imports(records: &[ProcessRecord], site_catalog: &[&str]) -> SecurityReport {
    let catalog: HashSet<&str> = site_catalog.iter().copied().collect();
    let mut report = SecurityReport::default();
    let mut insecure_users: BTreeMap<String, HashSet<String>> = BTreeMap::new();
    let mut unknown_users: BTreeMap<String, HashSet<String>> = BTreeMap::new();

    for rec in records {
        if category_of(rec) != RecordCategory::Python {
            continue;
        }
        let Some(maps) = &rec.maps else { continue };
        report.processes_examined += 1;
        let user = rec.user().unwrap_or("?").to_string();

        for token in map_package_tokens(maps) {
            if let Some(adv) = ADVISORY_DB.iter().find(|a| a.package == token) {
                let entry = report
                    .insecure
                    .entry(token.clone())
                    .or_insert_with(|| (adv.id.to_string(), 0, 0));
                entry.2 += 1;
                insecure_users
                    .entry(token.clone())
                    .or_default()
                    .insert(user.clone());
            } else if !catalog.contains(token.as_str()) {
                let entry = report
                    .unknown_packages
                    .entry(token.clone())
                    .or_insert((0, 0));
                entry.1 += 1;
                unknown_users
                    .entry(token.clone())
                    .or_default()
                    .insert(user.clone());
            }
        }
    }

    for (pkg, users) in insecure_users {
        if let Some(e) = report.insecure.get_mut(&pkg) {
            e.1 = users.len() as u64;
        }
    }
    for (pkg, users) in unknown_users {
        if let Some(e) = report.unknown_packages.get_mut(&pkg) {
            e.0 = users.len() as u64;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    fn py_rec(job: u64, pid: u32, user: &str, maps: Vec<&str>) -> ProcessRecord {
        let mut r = record(job, pid, user, "/usr/bin/python3.10", None, None, None, job);
        r.maps = Some(maps.into_iter().map(|s| s.to_string()).collect());
        r
    }

    const CATALOG: &[&str] = &["heapq", "numpy", "pandas"];

    #[test]
    fn advisory_match_found() {
        let records = vec![py_rec(
            1,
            1,
            "a",
            vec!["/usr/lib64/python3.10/site-packages/numpy/core/_impl.so"],
        )];
        let report = audit_python_imports(&records, CATALOG);
        assert!(report.insecure.contains_key("numpy"));
        let (id, users, procs) = &report.insecure["numpy"];
        assert_eq!(id, "SIM-2024-0001");
        assert_eq!((*users, *procs), (1, 1));
        assert!(report.unknown_packages.is_empty());
    }

    #[test]
    fn unknown_package_flagged_as_slopsquat_candidate() {
        let records = vec![
            py_rec(
                1,
                1,
                "a",
                vec!["/usr/lib64/python3.10/site-packages/pandsa/x.so"],
            ),
            py_rec(
                2,
                2,
                "b",
                vec!["/usr/lib64/python3.10/site-packages/pandsa/x.so"],
            ),
        ];
        let report = audit_python_imports(&records, CATALOG);
        assert_eq!(report.unknown_packages["pandsa"], (2, 2));
        assert!(report.insecure.is_empty());
    }

    #[test]
    fn catalog_packages_without_advisories_are_clean() {
        let records = vec![py_rec(
            1,
            1,
            "a",
            vec!["/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310.so"],
        )];
        let report = audit_python_imports(&records, CATALOG);
        assert!(report.insecure.is_empty());
        assert!(report.unknown_packages.is_empty());
        assert_eq!(report.processes_examined, 1);
    }

    #[test]
    fn non_python_records_ignored() {
        let mut r = record(1, 1, "a", "/usr/bin/bash", None, None, None, 1);
        r.maps = Some(vec!["/usr/lib64/python3.10/site-packages/numpy/x.so".into()]);
        let report = audit_python_imports(&[r], CATALOG);
        assert_eq!(report.processes_examined, 0);
        assert!(report.insecure.is_empty());
    }

    #[test]
    fn render_includes_both_sections() {
        let out = SecurityReport::default().render();
        assert!(out.contains("advisory matches"));
        assert!(out.contains("slopsquatting watch"));
        assert!(out.contains("(none)"));
    }
}
