//! Table 7 — similarity search: identifying an UNKNOWN executable.
//!
//! Given a baseline record (the UNKNOWN instance), every other record is
//! scored on six fuzzy-hash dimensions — `MO_H` (modules), `CO_H`
//! (compilers), `OB_H` (objects), `FI_H` (raw file), `ST_H` (strings),
//! `SY_H` (symbols) — and ranked by the average. A missing hash on either
//! side scores 0 for that column, exactly like the zero cells in the
//! paper's table (lost or absent data weakens but does not preclude a
//! match; that is the stated reason the list-valued categories are hashed
//! at all).

use crate::labels::Labeler;
use crate::render::render_table;
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use siren_fuzzy::compare;

/// One Table-7 row.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityRow {
    /// Index of the compared record in the input slice.
    pub record_index: usize,
    /// Derived label of the compared record (`icon`, `UNKNOWN`, …).
    pub label: String,
    /// Average over the six columns.
    pub avg: f64,
    /// Modules-hash similarity.
    pub mo: u32,
    /// Compilers-hash similarity.
    pub co: u32,
    /// Objects-hash similarity.
    pub ob: u32,
    /// Raw-file-hash similarity.
    pub fi: u32,
    /// Strings-hash similarity.
    pub st: u32,
    /// Symbols-hash similarity.
    pub sy: u32,
}

fn score(a: &Option<String>, b: &Option<String>) -> u32 {
    match (a, b) {
        (Some(x), Some(y)) => compare(x, y).unwrap_or(0),
        _ => 0,
    }
}

/// Rank all *user-directory* records against `baseline` by six-way fuzzy
/// similarity. The baseline itself is excluded, as are other records
/// sharing the baseline's (unknown) label — §4.3 searches for "the most
/// similar **known** case". Only records with at least one scoring
/// column > 0 appear. Sorted by average descending (ties by record index
/// for determinism); at most `limit` rows.
pub fn similarity_search_table(
    records: &[ProcessRecord],
    baseline: &ProcessRecord,
    labeler: &Labeler,
    limit: usize,
) -> Vec<SimilarityRow> {
    let baseline_label = baseline
        .exe_path()
        .map(|p| labeler.label(p).to_string())
        .unwrap_or_else(|| crate::labels::UNKNOWN_LABEL.to_string());
    let mut rows: Vec<SimilarityRow> = Vec::new();

    for (idx, rec) in records.iter().enumerate() {
        if std::ptr::eq(rec, baseline) {
            continue;
        }
        if category_of(rec) != RecordCategory::User {
            continue;
        }
        // Skip other observations of the *same executable instance* (same
        // path hash): Table 7 compares against other binaries, and
        // repeated executions of the baseline itself are uninformative.
        if rec.key.exe_hash == baseline.key.exe_hash {
            continue;
        }

        let mo = score(&rec.modules_hash, &baseline.modules_hash);
        let co = score(&rec.compilers_hash, &baseline.compilers_hash);
        let ob = score(&rec.objects_hash, &baseline.objects_hash);
        let fi = score(&rec.file_hash, &baseline.file_hash);
        let st = score(&rec.strings_hash, &baseline.strings_hash);
        let sy = score(&rec.symbols_hash, &baseline.symbols_hash);
        let sum = mo + co + ob + fi + st + sy;
        if sum == 0 {
            continue;
        }

        let label = rec
            .exe_path()
            .map(|p| labeler.label(p).to_string())
            .unwrap_or_default();
        if label == baseline_label {
            continue; // only *known* candidates identify the unknown
        }
        rows.push(SimilarityRow {
            record_index: idx,
            label,
            avg: f64::from(sum) / 6.0,
            mo,
            co,
            ob,
            fi,
            st,
            sy,
        });
    }

    rows.sort_by(|a, b| {
        b.avg
            .partial_cmp(&a.avg)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.record_index.cmp(&b.record_index))
    });
    // Deduplicate identical executables (same scores arise from repeated
    // runs of one binary); keep one row per distinct score vector + label
    // would hide real duplicates the paper shows, so instead dedup by the
    // compared record's executable identity.
    let mut seen_exes = std::collections::HashSet::new();
    rows.retain(|r| {
        let exe = records[r.record_index].key.exe_hash.clone();
        seen_exes.insert(exe)
    });
    rows.truncate(limit);
    rows
}

/// Render Table 7.
pub fn render_similarity(rows: &[SimilarityRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.avg),
                r.mo.to_string(),
                r.co.to_string(),
                r.ob.to_string(),
                r.fi.to_string(),
                r.st.to_string(),
                r.sy.to_string(),
            ]
        })
        .collect();
    render_table(
        "Table 7: Similarity search result for <unknown> case",
        &[
            "Label",
            "Avg. Sim.",
            "MO_H",
            "CO_H",
            "OB_H",
            "FI_H",
            "ST_H",
            "SY_H",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;
    use siren_fuzzy::fuzzy_hash;

    fn hashed(data_seed: u64, len: usize) -> String {
        let mut x = data_seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect();
        fuzzy_hash(&bytes).to_string_repr()
    }

    fn rec_with_hashes(job: u64, pid: u32, path: &str, fi: &str, sy: &str) -> ProcessRecord {
        let mut r = record(job, pid, "user_4", path, Some(fi), None, None, job);
        r.symbols_hash = Some(sy.to_string());
        r
    }

    #[test]
    fn identical_hashes_rank_first_with_100s() {
        let labeler = Labeler::default();
        let fi = hashed(7, 20_000);
        let sy = hashed(9, 2_000);
        let baseline = rec_with_hashes(1, 1, "/scratch/p/a.out", &fi, &sy);
        let records = vec![
            rec_with_hashes(2, 2, "/users/u4/icon-model/build_0/bin/icon", &fi, &sy),
            rec_with_hashes(
                3,
                3,
                "/users/u4/icon-model/build_9/bin/icon",
                &hashed(1234, 20_000),
                &sy,
            ),
            rec_with_hashes(
                4,
                4,
                "/users/u2/lammps/build/lmp",
                &hashed(999, 20_000),
                &hashed(5, 2_000),
            ),
        ];
        let rows = similarity_search_table(&records, &baseline, &labeler, 10);
        assert!(!rows.is_empty());
        assert_eq!(rows[0].label, "icon");
        assert_eq!(rows[0].fi, 100);
        assert_eq!(rows[0].sy, 100);
        // The partial match ranks below the perfect one.
        if rows.len() > 1 {
            assert!(rows[0].avg >= rows[1].avg);
        }
    }

    #[test]
    fn missing_hashes_score_zero_not_error() {
        let labeler = Labeler::default();
        let baseline = rec_with_hashes(
            1,
            1,
            "/scratch/p/a.out",
            &hashed(7, 20_000),
            &hashed(9, 2_000),
        );
        let mut partial = rec_with_hashes(
            2,
            2,
            "/users/u4/icon-model/build_0/bin/icon",
            &hashed(7, 20_000),
            &hashed(9, 2_000),
        );
        partial.symbols_hash = None; // SY column lost
        let rows = similarity_search_table(&[partial], &baseline, &labeler, 10);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].sy, 0);
        assert_eq!(rows[0].fi, 100);
    }

    #[test]
    fn same_executable_instances_deduplicated() {
        let labeler = Labeler::default();
        let fi = hashed(7, 20_000);
        let sy = hashed(9, 2_000);
        let baseline = rec_with_hashes(1, 1, "/scratch/p/a.out", &fi, &sy);
        // Two runs of the same icon binary (same exe path => same exe_hash
        // in testutil), plus one distinct one.
        let r1 = rec_with_hashes(2, 2, "/users/u4/icon-model/build_0/bin/icon", &fi, &sy);
        let mut r2 = rec_with_hashes(3, 3, "/users/u4/icon-model/build_0/bin/icon", &fi, &sy);
        r2.key.exe_hash = r1.key.exe_hash.clone();
        let rows = similarity_search_table(&[r1, r2], &baseline, &labeler, 10);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn unrelated_records_absent() {
        let labeler = Labeler::default();
        let baseline = rec_with_hashes(
            1,
            1,
            "/scratch/p/a.out",
            &hashed(7, 20_000),
            &hashed(9, 2_000),
        );
        let stranger = rec_with_hashes(
            2,
            2,
            "/users/u9/alexandria/bin/alexandria",
            &hashed(100_001, 20_000),
            &hashed(100_002, 2_000),
        );
        let rows = similarity_search_table(&[stranger], &baseline, &labeler, 10);
        assert!(rows.is_empty(), "all-zero rows must be filtered: {rows:?}");
    }

    #[test]
    fn render_has_all_columns() {
        let rows = vec![SimilarityRow {
            record_index: 0,
            label: "icon".into(),
            avg: 100.0,
            mo: 100,
            co: 100,
            ob: 100,
            fi: 100,
            st: 100,
            sy: 100,
        }];
        let out = render_similarity(&rows);
        for col in ["MO_H", "CO_H", "OB_H", "FI_H", "ST_H", "SY_H"] {
            assert!(out.contains(col));
        }
    }
}
