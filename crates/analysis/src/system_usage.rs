//! Tables 3 & 4 — system-directory executables and their library-set
//! variants.

use crate::render::{group_digits, render_table};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use std::collections::{HashMap, HashSet};

/// One Table-3 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemRow {
    /// Executable path.
    pub path: String,
    /// Distinct users who ran it.
    pub unique_users: u64,
    /// Jobs containing at least one process of it.
    pub job_count: u64,
    /// Process count.
    pub process_count: u64,
    /// Distinct `OBJECTS_H` values (library-set variants).
    pub unique_objects_h: u64,
}

/// Compute Table 3 over all system-directory records. Sorted as in the
/// paper: descending by unique users, then jobs, processes, OBJECTS_H.
pub fn system_table(records: &[ProcessRecord]) -> Vec<SystemRow> {
    struct Acc {
        users: HashSet<String>,
        jobs: HashSet<u64>,
        procs: u64,
        objects_h: HashSet<String>,
    }
    let mut by_exe: HashMap<String, Acc> = HashMap::new();

    for rec in records {
        if category_of(rec) != RecordCategory::System {
            continue;
        }
        let Some(path) = rec.exe_path() else { continue };
        let acc = by_exe.entry(path.to_string()).or_insert_with(|| Acc {
            users: HashSet::new(),
            jobs: HashSet::new(),
            procs: 0,
            objects_h: HashSet::new(),
        });
        if let Some(u) = rec.user() {
            acc.users.insert(u.to_string());
        }
        acc.jobs.insert(rec.key.job_id);
        acc.procs += 1;
        if let Some(h) = &rec.objects_hash {
            acc.objects_h.insert(h.clone());
        }
    }

    let mut rows: Vec<SystemRow> = by_exe
        .into_iter()
        .map(|(path, acc)| SystemRow {
            path,
            unique_users: acc.users.len() as u64,
            job_count: acc.jobs.len() as u64,
            process_count: acc.procs,
            unique_objects_h: acc.objects_h.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| {
        (
            b.unique_users,
            b.job_count,
            b.process_count,
            b.unique_objects_h,
            &a.path,
        )
            .cmp(&(
                a.unique_users,
                a.job_count,
                a.process_count,
                a.unique_objects_h,
                &b.path,
            ))
    });
    rows
}

/// One Table-4 row: a distinct loaded-object set of one executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryVariantRow {
    /// Executable path.
    pub path: String,
    /// Processes that loaded exactly this set.
    pub processes: u64,
    /// The deviating libraries (those not common to all variants of this
    /// executable).
    pub deviating: Vec<String>,
}

/// Compute Table 4 for one executable: its distinct loaded-object sets
/// with process counts, highlighting the libraries that deviate between
/// variants. Sorted by process count descending.
pub fn library_variant_table(records: &[ProcessRecord], exe_path: &str) -> Vec<LibraryVariantRow> {
    let mut by_set: HashMap<Vec<String>, u64> = HashMap::new();
    for rec in records {
        if rec.exe_path() != Some(exe_path) {
            continue;
        }
        let Some(objs) = &rec.objects else { continue };
        *by_set.entry(objs.clone()).or_insert(0) += 1;
    }
    if by_set.is_empty() {
        return Vec::new();
    }

    // Libraries present in every variant are "common"; the rest deviate.
    let sets: Vec<&Vec<String>> = by_set.keys().collect();
    let common: HashSet<&String> = sets
        .iter()
        .skip(1)
        .fold(sets[0].iter().collect::<HashSet<_>>(), |acc, s| {
            acc.intersection(&s.iter().collect()).copied().collect()
        });

    let mut rows: Vec<LibraryVariantRow> = by_set
        .iter()
        .map(|(set, &count)| LibraryVariantRow {
            path: exe_path.to_string(),
            processes: count,
            deviating: set
                .iter()
                .filter(|l| !common.contains(l))
                .cloned()
                .collect(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.processes
            .cmp(&a.processes)
            .then(a.deviating.cmp(&b.deviating))
    });
    rows
}

/// One library-usage row: a shared object and how widely it is loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryUsageRow {
    /// Shared-object path as reported in `OBJECTS`.
    pub library: String,
    /// Processes that loaded it.
    pub processes: u64,
    /// Distinct hosts it was loaded on.
    pub hosts: u64,
}

/// Aggregate shared-object usage over any record selection — the
/// workhorse behind cross-epoch "library usage by host / time range"
/// service queries (the caller filters, this counts). Sorted by process
/// count descending, then library path.
pub fn library_usage<'a, I>(records: I) -> Vec<LibraryUsageRow>
where
    I: IntoIterator<Item = &'a ProcessRecord>,
{
    struct Acc<'a> {
        processes: u64,
        hosts: HashSet<&'a str>,
    }
    let mut by_lib: HashMap<&str, Acc<'_>> = HashMap::new();
    for rec in records {
        let Some(objs) = &rec.objects else { continue };
        for lib in objs {
            let acc = by_lib.entry(lib.as_str()).or_insert_with(|| Acc {
                processes: 0,
                hosts: HashSet::new(),
            });
            acc.processes += 1;
            acc.hosts.insert(rec.key.host.as_str());
        }
    }
    let mut rows: Vec<LibraryUsageRow> = by_lib
        .into_iter()
        .map(|(library, acc)| LibraryUsageRow {
            library: library.to_string(),
            processes: acc.processes,
            hosts: acc.hosts.len() as u64,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.processes
            .cmp(&a.processes)
            .then(a.library.cmp(&b.library))
    });
    rows
}

/// Render Table 3 (top `n` rows).
pub fn render_system(rows: &[SystemRow], n: usize) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .take(n)
        .map(|r| {
            vec![
                r.path.clone(),
                r.unique_users.to_string(),
                group_digits(r.job_count),
                group_digits(r.process_count),
                r.unique_objects_h.to_string(),
            ]
        })
        .collect();
    render_table(
        &format!(
            "Table 3: Top {n} system-directory executables ({} total)",
            rows.len()
        ),
        &[
            "Executable",
            "Users",
            "Jobs",
            "Processes",
            "Unique OBJECTS_H",
        ],
        &body,
    )
}

/// Render Table 4.
pub fn render_library_variants(rows: &[LibraryVariantRow]) -> String {
    let total: u64 = rows.iter().map(|r| r.processes).sum();
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.path.clone(),
                group_digits(r.processes),
                if r.deviating.is_empty() {
                    "(common set only)".into()
                } else {
                    r.deviating.join(" ")
                },
            ]
        })
        .collect();
    body.push(vec!["Total".into(), group_digits(total), String::new()]);
    render_table(
        "Table 4: Distinct sets of shared objects",
        &["Executable", "Processes", "Deviating libraries"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    fn sys_rec(
        job: u64,
        pid: u32,
        user: &str,
        path: &str,
        objs: Vec<&str>,
        oh: &str,
    ) -> ProcessRecord {
        let mut r = record(job, pid, user, path, None, Some(objs), None, job);
        r.objects_hash = Some(oh.to_string());
        r
    }

    #[test]
    fn table3_counts_and_sorting() {
        let records = vec![
            sys_rec(1, 1, "a", "/usr/bin/bash", vec!["/l/t.so"], "h1"),
            sys_rec(1, 2, "b", "/usr/bin/bash", vec!["/l/t.so"], "h1"),
            sys_rec(2, 3, "a", "/usr/bin/bash", vec!["/l/t2.so"], "h2"),
            sys_rec(2, 4, "a", "/usr/bin/rm", vec![], "h3"),
            // user-dir process must not appear
            record(3, 5, "a", "/users/a/app", None, None, None, 3),
        ];
        let rows = system_table(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].path, "/usr/bin/bash");
        assert_eq!(rows[0].unique_users, 2);
        assert_eq!(rows[0].job_count, 2);
        assert_eq!(rows[0].process_count, 3);
        assert_eq!(rows[0].unique_objects_h, 2);
        assert_eq!(rows[1].path, "/usr/bin/rm");
    }

    #[test]
    fn library_usage_counts_processes_and_hosts() {
        let mut a = sys_rec(1, 1, "a", "/usr/bin/bash", vec!["/l/c.so", "/l/t.so"], "h1");
        a.key.host = "nid1".into();
        let mut b = sys_rec(2, 2, "b", "/usr/bin/rm", vec!["/l/c.so"], "h2");
        b.key.host = "nid2".into();
        let mut c = sys_rec(3, 3, "c", "/users/c/app", vec!["/l/c.so"], "h3");
        c.key.host = "nid1".into();
        let no_objs = record(4, 4, "d", "/usr/bin/true", None, None, None, 4);

        let rows = library_usage([&a, &b, &c, &no_objs]);
        assert_eq!(rows[0].library, "/l/c.so");
        assert_eq!(rows[0].processes, 3);
        assert_eq!(rows[0].hosts, 2);
        assert_eq!(rows[1].library, "/l/t.so");
        assert_eq!(rows[1].processes, 1);
        // Filtering before aggregation is the caller's job.
        let only_a = library_usage([&a]);
        assert_eq!(only_a.len(), 2);
    }

    #[test]
    fn python_interpreters_excluded_from_table3() {
        let records = vec![sys_rec(1, 1, "a", "/usr/bin/python3.10", vec![], "h")];
        assert!(system_table(&records).is_empty());
    }

    #[test]
    fn table4_identifies_deviating_libraries() {
        let records = vec![
            sys_rec(
                1,
                1,
                "a",
                "/usr/bin/bash",
                vec!["/lib64/libtinfo.so.6", "/lib64/libc.so.6"],
                "h1",
            ),
            sys_rec(
                1,
                2,
                "a",
                "/usr/bin/bash",
                vec!["/lib64/libtinfo.so.6", "/lib64/libc.so.6"],
                "h1",
            ),
            sys_rec(
                2,
                3,
                "b",
                "/usr/bin/bash",
                vec![
                    "/appl/SW/ncurses/libtinfo.so.6",
                    "/lib64/libm.so.6",
                    "/lib64/libc.so.6",
                ],
                "h2",
            ),
        ];
        let rows = library_variant_table(&records, "/usr/bin/bash");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].processes, 2);
        assert_eq!(rows[0].deviating, vec!["/lib64/libtinfo.so.6"]);
        assert!(rows[1].deviating.contains(&"/lib64/libm.so.6".to_string()));
        // libc is common to both variants and must not be listed.
        assert!(!rows[1].deviating.contains(&"/lib64/libc.so.6".to_string()));
    }

    #[test]
    fn table4_empty_for_unknown_exe() {
        assert!(library_variant_table(&[], "/usr/bin/none").is_empty());
    }

    #[test]
    fn renders() {
        let records = vec![sys_rec(1, 1, "a", "/usr/bin/bash", vec!["/l.so"], "h1")];
        let t3 = render_system(&system_table(&records), 10);
        assert!(t3.contains("/usr/bin/bash"));
        let t4 = render_library_variants(&library_variant_table(&records, "/usr/bin/bash"));
        assert!(t4.contains("Total"));
    }
}
