//! Table 2 — "Data about users' jobs and processes".

use crate::render::{dash_zero, group_digits, render_table};
use crate::{category_of, RecordCategory};
use siren_consolidate::ProcessRecord;
use std::collections::{HashMap, HashSet};

/// One Table-2 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageRow {
    /// Anonymized user name.
    pub user: String,
    /// Jobs submitted by this user.
    pub jobs: u64,
    /// System-directory processes.
    pub system_procs: u64,
    /// User-directory processes.
    pub user_procs: u64,
    /// Python processes.
    pub python_procs: u64,
}

/// Compute Table 2. Rows sorted as in the paper: descending by job count,
/// then system / user / Python process counts; fully tied rows order by
/// user name so the table (and the protocol-v2 usage-table stream built
/// on it) is deterministic. Takes any iterator of record references so
/// callers aggregating a filtered view (the v2 plan executor, snapshot
/// selections) need not clone records into a contiguous slice first.
pub fn usage_table<'a>(records: impl IntoIterator<Item = &'a ProcessRecord>) -> Vec<UsageRow> {
    struct Acc {
        jobs: HashSet<u64>,
        system: u64,
        user: u64,
        python: u64,
    }
    let mut by_user: HashMap<String, Acc> = HashMap::new();

    for rec in records {
        let Some(user) = rec.user() else { continue };
        let acc = by_user.entry(user.to_string()).or_insert_with(|| Acc {
            jobs: HashSet::new(),
            system: 0,
            user: 0,
            python: 0,
        });
        acc.jobs.insert(rec.key.job_id);
        match category_of(rec) {
            RecordCategory::System => acc.system += 1,
            RecordCategory::User => acc.user += 1,
            RecordCategory::Python => acc.python += 1,
            RecordCategory::Unknown => {}
        }
    }

    let mut rows: Vec<UsageRow> = by_user
        .into_iter()
        .map(|(user, acc)| UsageRow {
            user,
            jobs: acc.jobs.len() as u64,
            system_procs: acc.system,
            user_procs: acc.user,
            python_procs: acc.python,
        })
        .collect();
    rows.sort_by(|a, b| {
        (b.jobs, b.system_procs, b.user_procs, b.python_procs)
            .cmp(&(a.jobs, a.system_procs, a.user_procs, a.python_procs))
            .then_with(|| a.user.cmp(&b.user))
    });
    rows
}

/// Paper-style rendering, including the totals row.
pub fn render_usage(rows: &[UsageRow]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.user.clone(),
                group_digits(r.jobs),
                dash_zero(r.system_procs),
                dash_zero(r.user_procs),
                dash_zero(r.python_procs),
            ]
        })
        .collect();
    let total = UsageRow {
        user: "Total".into(),
        jobs: rows.iter().map(|r| r.jobs).sum(),
        system_procs: rows.iter().map(|r| r.system_procs).sum(),
        user_procs: rows.iter().map(|r| r.user_procs).sum(),
        python_procs: rows.iter().map(|r| r.python_procs).sum(),
    };
    body.push(vec![
        total.user,
        group_digits(total.jobs),
        group_digits(total.system_procs),
        group_digits(total.user_procs),
        group_digits(total.python_procs),
    ]);
    render_table(
        "Table 2: Users' jobs and processes",
        &[
            "User",
            "Jobs",
            "SystemDir Procs",
            "UserDir Procs",
            "Python Procs",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::record;

    #[test]
    fn counts_by_category_and_user() {
        let records = vec![
            record(1, 1, "user_1", "/usr/bin/rm", None, None, None, 0),
            record(1, 2, "user_1", "/usr/bin/rm", None, None, None, 1),
            record(2, 3, "user_1", "/usr/bin/mkdir", None, None, None, 2),
            record(3, 4, "user_2", "/users/user_2/app", None, None, None, 3),
            record(3, 5, "user_2", "/usr/bin/python3.10", None, None, None, 4),
        ];
        let rows = usage_table(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].user, "user_1");
        assert_eq!(rows[0].jobs, 2);
        assert_eq!(rows[0].system_procs, 3);
        assert_eq!(rows[0].user_procs, 0);
        assert_eq!(rows[1].user, "user_2");
        assert_eq!(rows[1].jobs, 1);
        assert_eq!(rows[1].user_procs, 1);
        assert_eq!(rows[1].python_procs, 1);
    }

    #[test]
    fn sorted_by_job_count_desc() {
        let mut records = Vec::new();
        for j in 0..5 {
            records.push(record(j, 1, "busy", "/usr/bin/ls", None, None, None, j));
        }
        records.push(record(
            100,
            1,
            "quiet",
            "/usr/bin/ls",
            None,
            None,
            None,
            100,
        ));
        let rows = usage_table(&records);
        assert_eq!(rows[0].user, "busy");
        assert_eq!(rows[1].user, "quiet");
    }

    #[test]
    fn render_includes_total_and_dashes() {
        let records = vec![record(1, 1, "user_1", "/usr/bin/rm", None, None, None, 0)];
        let out = render_usage(&usage_table(&records));
        assert!(out.contains("Total"));
        assert!(out.contains('-')); // zero python procs rendered as dash
    }

    #[test]
    fn records_without_user_metadata_ignored() {
        let mut broken = record(1, 1, "user_1", "/usr/bin/rm", None, None, None, 0);
        broken.meta.clear();
        assert!(usage_table(&[broken]).is_empty());
    }
}
