//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. recognition method — fuzzy vs exact-hash vs name-based (recall is
//!    asserted in tests; here we measure cost);
//! 2. chunked datagrams vs oversized single datagrams;
//! 3. streaming context-retirement optimization on/off;
//! 4. selective (Table 1) vs collect-everything policies, end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use siren_analysis::{baseline::recognition_ablation, Labeler};
use siren_bench::{campaign_records, pseudo_bytes};
use siren_collector::PolicyMode;
use siren_core::{Deployment, DeploymentConfig};
use siren_fuzzy::FuzzyHasher;
use siren_wire::{chunk_message, Layer, MessageHeader, MessageType};
use std::hint::black_box;

fn bench_recognition(c: &mut Criterion) {
    let records = campaign_records(0.005, 0x51_4E);
    let labeler = Labeler::default();
    let mut g = c.benchmark_group("ablation_recognition");
    g.sample_size(10);
    g.bench_function("all_methods_pairwise", |b| {
        b.iter(|| black_box(recognition_ablation(black_box(&records), &labeler, 60)))
    });
    g.finish();
}

fn bench_chunking(c: &mut Criterion) {
    let header = MessageHeader {
        job_id: 1,
        step_id: 0,
        pid: 1,
        exe_hash: "ab".into(),
        host: "nid1".into(),
        time: 1,
        layer: Layer::SelfExe,
        mtype: MessageType::Objects,
    };
    let content = "/opt/long/library/path/libname.so.1;".repeat(400); // ~14 KiB
    let mut g = c.benchmark_group("ablation_chunking");
    for limit in [1200usize, 65_000] {
        g.bench_with_input(BenchmarkId::new("datagram_limit", limit), &(), |b, _| {
            b.iter(|| {
                let msgs = chunk_message(&header, black_box(&content), limit);
                black_box(msgs.iter().map(|m| m.encode().len()).sum::<usize>())
            })
        });
    }
    g.finish();
}

fn bench_context_reduction(c: &mut Criterion) {
    let data = pseudo_bytes(3, 512 * 1024);
    let mut g = c.benchmark_group("ablation_context_reduction");
    g.sample_size(20);
    g.bench_function("with_retirement", |b| {
        b.iter(|| {
            let mut h = FuzzyHasher::new();
            h.update(black_box(&data));
            black_box(h.digest())
        })
    });
    g.bench_function("without_retirement", |b| {
        b.iter(|| {
            let mut h = FuzzyHasher::new_without_reduction();
            h.update(black_box(&data));
            black_box(h.digest())
        })
    });
    g.finish();
}

fn bench_policy_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_selective_policy");
    g.sample_size(10);
    for mode in [PolicyMode::Selective, PolicyMode::CollectEverything] {
        g.bench_with_input(
            BenchmarkId::new("deployment", format!("{mode:?}")),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut cfg = DeploymentConfig::default();
                    cfg.campaign.scale = 0.001;
                    cfg.policy = mode;
                    black_box(Deployment::new(cfg).run().db_rows)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_recognition,
    bench_chunking,
    bench_context_reduction,
    bench_policy_end_to_end
);
criterion_main!(benches);
