//! Fuzzy-hashing benchmarks: generation throughput, comparison latency,
//! and the §2.1 scalability claim (fuzzy-hash comparison vs byte-by-byte
//! file comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use siren_analysis::byte_similarity;
use siren_bench::{hash_corpus, pseudo_bytes, variant_family};
use siren_fuzzy::{
    compare_parsed, fuzzy_hash, fuzzy_hash_reference, similarity_search, FuzzyHasher,
};
use std::hint::black_box;

/// Hashing throughput across input sizes (streaming engine).
fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzzy_generate");
    for size in [4 * 1024, 64 * 1024, 1024 * 1024] {
        let data = pseudo_bytes(42, size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("streaming", size), &data, |b, d| {
            b.iter(|| {
                let mut h = FuzzyHasher::new();
                h.update(black_box(d));
                black_box(h.digest())
            })
        });
        g.bench_with_input(
            BenchmarkId::new("reference_two_pass", size),
            &data,
            |b, d| b.iter(|| black_box(fuzzy_hash_reference(black_box(d)))),
        );
    }
    g.finish();
}

/// Single-pair comparison cost: fuzzy hashes vs raw bytes (§2.1).
fn bench_compare_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("fuzzy_vs_bytes_pair");
    for size in [64 * 1024, 1024 * 1024] {
        let fam = variant_family(7, size, 2);
        let (a, b) = (&fam[0], &fam[1]);
        let (ha, hb) = (fuzzy_hash(a), fuzzy_hash(b));

        g.bench_with_input(BenchmarkId::new("fuzzy_compare", size), &(), |bench, _| {
            bench.iter(|| black_box(compare_parsed(black_box(&ha), black_box(&hb))))
        });
        g.bench_with_input(BenchmarkId::new("byte_compare", size), &(), |bench, _| {
            bench.iter(|| black_box(byte_similarity(black_box(a), black_box(b))))
        });
    }
    g.finish();
}

/// One-vs-many similarity search scaling with corpus size, with and
/// without block-size pruning.
fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity_search");
    g.sample_size(20);
    for n in [100usize, 1_000, 5_000] {
        let corpus = hash_corpus(n / 10, 10, 16 * 1024);
        let baseline = corpus[0].clone();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("pruned", n), &(), |b, _| {
            b.iter(|| {
                black_box(similarity_search(
                    black_box(&baseline),
                    black_box(&corpus),
                    1,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("unpruned_full", n), &(), |b, _| {
            b.iter(|| {
                black_box(siren_fuzzy::compare_many(
                    black_box(&baseline),
                    black_box(&corpus),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generate, bench_compare_pair, bench_search);
criterion_main!(benches);
