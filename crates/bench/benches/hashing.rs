//! Hash-substrate benchmarks: XXH64, XXH3-128, SHA-1, FNV — the
//! collector's fast-path primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use siren_bench::pseudo_bytes;
use siren_hash::{fnv1a64, sha1, xxh3_128, xxh64};
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_throughput");
    for size in [64usize, 4 * 1024, 256 * 1024] {
        let data = pseudo_bytes(7, size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("xxh64", size), &data, |b, d| {
            b.iter(|| black_box(xxh64(black_box(d), 0)))
        });
        g.bench_with_input(BenchmarkId::new("xxh3_128", size), &data, |b, d| {
            b.iter(|| black_box(xxh3_128(black_box(d))))
        });
        g.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| black_box(sha1(black_box(d))))
        });
        g.bench_with_input(BenchmarkId::new("fnv1a64", size), &data, |b, d| {
            b.iter(|| black_box(fnv1a64(black_box(d))))
        });
    }
    g.finish();
}

/// The actual collector use-case: hashing short executable paths.
fn bench_path_hash(c: &mut Criterion) {
    let paths = [
        "/usr/bin/bash",
        "/users/user_4/icon-model/build_17/bin/icon",
        "/opt/cray/pe/python/3.10.10/bin/python3.10",
    ];
    c.bench_function("xxh3_128_exe_paths", |b| {
        b.iter(|| {
            for p in &paths {
                black_box(xxh3_128(black_box(p.as_bytes())));
            }
        })
    });
}

criterion_group!(benches, bench_hashes, bench_path_hash);
criterion_main!(benches);
