//! Ingest-tier benchmark: serial receiver vs the sharded ingest service
//! at 2/4/8 shards, over one fixed pre-collected campaign.
//!
//! Only the ingest stage is timed — reassembly, storage, consolidation,
//! merge — not workload generation or collection, which are identical
//! for every mode. Besides the usual criterion output, the run emits
//! `BENCH_ingest.json` at the workspace root so the performance
//! trajectory of the ingest tier is tracked in-repo.
//!
//! Honest-measurement note: shard workers are OS threads, so the sharded
//! speedup is bounded by the machine's available parallelism. The JSON
//! records `available_parallelism` alongside the numbers.

use criterion::{BenchmarkId, Criterion, Throughput};
use siren_bench::available_parallelism;
use siren_cluster::{Campaign, CampaignConfig};
use siren_collector::{Collector, PolicyMode};
use siren_consolidate::consolidate;
use siren_db::Database;
use siren_ingest::{IngestConfig, IngestService};
use siren_net::{SimChannel, SimConfig};
use siren_wire::{Message, Reassembler};
use std::hint::black_box;

/// The fixed campaign every mode ingests (collected once, up front).
fn campaign_messages(scale: f64) -> Vec<Message> {
    let campaign = Campaign::new(CampaignConfig {
        scale,
        ..CampaignConfig::default()
    });
    let (tx, rx) = SimChannel::create(SimConfig::perfect());
    let mut collector = Collector::new(&tx, PolicyMode::Selective);
    campaign.run(|ctx| collector.observe(&ctx));
    let (messages, decode_errors) = rx.drain_messages();
    assert_eq!(decode_errors, 0);
    messages
}

/// The serial receiver: one reassembler, one database, one consolidate.
fn ingest_serial(messages: Vec<Message>) -> usize {
    let mut reasm = Reassembler::new();
    let db = Database::in_memory();
    let mut batch = Vec::with_capacity(256);
    for msg in messages {
        if let Some(done) = reasm.push(msg) {
            batch.push(done);
            if batch.len() >= 256 {
                db.insert_message_batch(std::mem::take(&mut batch)).unwrap();
            }
        }
    }
    db.insert_message_batch(batch).unwrap();
    consolidate(&db).records.len()
}

/// The sharded service end to end (spawn, push, finish).
fn ingest_sharded(messages: Vec<Message>, shards: usize) -> usize {
    let mut svc = IngestService::spawn(IngestConfig::with_shards(shards)).unwrap();
    for msg in messages {
        svc.push(msg);
    }
    svc.finish().unwrap().records.len()
}

fn bench_ingest(c: &mut Criterion, messages: &[Message]) {
    let n = messages.len();
    let mut g = c.benchmark_group("ingest");
    g.sample_size(5);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("serial", |b| {
        b.iter(|| black_box(ingest_serial(black_box(messages.to_vec()))))
    });
    for shards in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| b.iter(|| black_box(ingest_sharded(black_box(messages.to_vec()), shards))),
        );
    }
    g.finish();
}

fn write_json(c: &Criterion, n_messages: usize) {
    let mut serial_ns = None;
    let mut sharded: Vec<(usize, f64)> = Vec::new();
    for m in c.measurements() {
        if m.id == "ingest/serial" {
            serial_ns = Some(m.median_ns);
        } else if let Some(shards) = m.id.strip_prefix("ingest/sharded/") {
            if let Ok(shards) = shards.parse::<usize>() {
                sharded.push((shards, m.median_ns));
            }
        }
    }
    let Some(serial_ns) = serial_ns else { return };

    let cores = available_parallelism();
    let per_sec = |ns: f64| n_messages as f64 * 1e9 / ns;
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"ingest\",\n  \"messages\": {n_messages},\n"
    ));
    out.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    out.push_str(&format!(
        "  \"serial\": {{\"median_ns\": {serial_ns:.0}, \"messages_per_sec\": {:.0}}},\n",
        per_sec(serial_ns)
    ));
    out.push_str("  \"sharded\": [\n");
    for (i, (shards, ns)) in sharded.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {shards}, \"median_ns\": {ns:.0}, \"messages_per_sec\": {:.0}, \"speedup_vs_serial\": {:.3}}}{}\n",
            per_sec(*ns),
            serial_ns / ns,
            if i + 1 < sharded.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, out).expect("write BENCH_ingest.json");
    println!("wrote {path}");
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    let messages = campaign_messages(0.005);
    let n = messages.len();
    bench_ingest(&mut criterion, &messages);
    write_json(&criterion, n);
}
