//! Pipeline benchmarks: per-process collection cost, wire codec,
//! end-to-end message throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use siren_cluster::{Campaign, CampaignConfig};
use siren_collector::{collect_messages, CollectorStats, PolicyMode};
use siren_net::{SimChannel, SimConfig};
use siren_wire::{chunk_message, Layer, Message, MessageHeader, MessageType, Reassembler};
use std::hint::black_box;

/// Gather a small pool of representative process contexts once.
fn sample_contexts() -> Vec<siren_cluster::ProcessContext> {
    let campaign = Campaign::new(CampaignConfig {
        scale: 0.001,
        ..CampaignConfig::default()
    });
    let mut out = Vec::new();
    campaign.run(|ctx| {
        if ctx.slurm_procid == 0 && out.len() < 512 {
            out.push(ctx);
        }
    });
    out
}

/// Per-process collection cost under the Table-1 policy vs collect-all.
fn bench_collection(c: &mut Criterion) {
    let contexts = sample_contexts();
    let system: Vec<_> = contexts
        .iter()
        .filter(|x| x.exe_path.starts_with("/usr/bin/") && x.python.is_none())
        .take(32)
        .collect();
    let user: Vec<_> = contexts
        .iter()
        .filter(|x| x.exe_path.starts_with("/users/") || x.exe_path.starts_with("/scratch/"))
        .take(32)
        .collect();
    assert!(!system.is_empty() && !user.is_empty());

    let mut g = c.benchmark_group("collector_per_process");
    for (name, pool) in [("system_exe", &system), ("user_exe", &user)] {
        for mode in [PolicyMode::Selective, PolicyMode::CollectEverything] {
            let label = format!("{name}/{mode:?}");
            g.bench_with_input(BenchmarkId::from_parameter(&label), &(), |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let ctx = pool[i % pool.len()];
                    i += 1;
                    let mut stats = CollectorStats::default();
                    black_box(collect_messages(black_box(ctx), mode, &mut stats))
                })
            });
        }
    }
    g.finish();
}

fn header() -> MessageHeader {
    MessageHeader {
        job_id: 8_000_001,
        step_id: 0,
        pid: 4242,
        exe_hash: "0123456789abcdef0123456789abcdef".into(),
        host: "nid001234".into(),
        time: 1_733_900_000,
        layer: Layer::SelfExe,
        mtype: MessageType::Objects,
    }
}

/// Wire codec cost: encode, decode, chunk+reassemble.
fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let msg = Message {
        header: header(),
        chunk_index: 0,
        chunk_total: 1,
        content: "/lib64/libc.so.6;/lib64/libm.so.6;/opt/cray/pe/lib64/libsci.so".into(),
    };
    let encoded = msg.encode();
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(black_box(&msg).encode())));
    g.bench_function("decode", |b| {
        b.iter(|| black_box(Message::decode(black_box(&encoded)).unwrap()))
    });

    let long_content = "/opt/some/library/path/libexample.so.1;".repeat(200);
    g.bench_function("chunk_and_reassemble_8k_content", |b| {
        b.iter(|| {
            let chunks = chunk_message(&header(), black_box(&long_content), 1200);
            let mut reasm = Reassembler::new();
            let mut done = None;
            for ch in chunks {
                if let Some(d) = reasm.push(ch) {
                    done = Some(d);
                }
            }
            black_box(done.unwrap())
        })
    });
    g.finish();
}

/// End-to-end datagram throughput through the simulated channel.
fn bench_channel_throughput(c: &mut Criterion) {
    let contexts = sample_contexts();
    let mut g = c.benchmark_group("pipeline_throughput");
    g.sample_size(20);
    g.throughput(Throughput::Elements(contexts.len() as u64));
    g.bench_function("collect_send_receive_per_512_procs", |b| {
        b.iter(|| {
            let (tx, rx) = SimChannel::create(SimConfig::perfect());
            let mut collector = siren_collector::Collector::new(&tx, PolicyMode::Selective);
            for ctx in &contexts {
                collector.observe(ctx);
            }
            let (msgs, _) = rx.drain_messages();
            let mut reasm = Reassembler::new();
            let mut n = 0u64;
            for m in msgs {
                if reasm.push(m).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_collection,
    bench_wire,
    bench_channel_throughput
);
criterion_main!(benches);
