//! Query-tier benchmark: epoch-commit snapshot cost (layered delta vs
//! monolithic full rebuild), indexed vs linear-scan fuzzy neighbor
//! search, request latency over the TCP protocol (p50/p99 per request
//! kind against a live daemon), and the protocol-v2 streamed `ByJob`
//! against the one-shot v1 answer on a large job (time to first row
//! and full-drain time vs the single buffered frame).
//!
//! Emits `BENCH_query.json` at the workspace root alongside
//! `BENCH_ingest.json` / `BENCH_store.json`. Set `SIREN_BENCH_QUICK=1`
//! (the CI smoke step does) to shrink the workload.

use criterion::Criterion;
use siren_bench::{available_parallelism, synthetic_file_hash};
use siren_consolidate::ProcessRecord;
use siren_db::Record;
use siren_fuzzy::{similarity_search, FuzzyHash};
use siren_proto::{QueryPlan, Selection, SirenClient, TraceId, MAX_PAGE_ROWS};
use siren_service::{EpochRecord, QuerySnapshot, ServiceConfig, SirenDaemon};
use siren_wire::{Layer, MessageType};
use std::hint::black_box;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("SIREN_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// One synthetic consolidated record, with a realistic-entropy FILE_H
/// so the fuzzy corpus and its gram index are fully populated.
fn record(i: u64) -> ProcessRecord {
    let row = Record {
        job_id: i % 997,
        step_id: 0,
        pid: i as u32,
        exe_hash: format!("{i:032x}"),
        host: format!("nid{:06}", i % 128),
        time: 1_700_000_000 + i,
        layer: Layer::SelfExe,
        mtype: MessageType::Meta,
        content: String::new(),
    };
    let mut rec = ProcessRecord::new(&row);
    rec.meta
        .insert("path".into(), format!("/opt/app/bin{}", i % 64));
    rec.objects = Some(vec![
        "/lib64/libc.so.6".into(),
        "/lib64/libm.so.6".into(),
        format!("/opt/app/lib{}.so", i % 256),
    ]);
    rec.file_hash = Some(synthetic_file_hash(i));
    rec
}

/// A lean consolidated record (key only, no metadata/objects/hashes):
/// the stream-vs-one-shot comparison needs a ≥50k-row job whose
/// one-shot answer still fits the 8 MiB frame cap.
fn lean_record(i: u64, job_id: u64) -> ProcessRecord {
    ProcessRecord::new(&Record {
        job_id,
        step_id: 0,
        pid: i as u32,
        exe_hash: format!("{i:032x}"),
        host: format!("nid{:06}", i % 128),
        time: 1_700_000_000 + i,
        layer: Layer::SelfExe,
        mtype: MessageType::Meta,
        content: String::new(),
    })
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    let idx = ((sorted_ns.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ns[idx]
}

/// Time `calls` invocations of `f`, returning sorted per-call ns.
fn measure(calls: usize, mut f: impl FnMut()) -> Vec<u64> {
    let mut ns = Vec::with_capacity(calls);
    for _ in 0..calls {
        let start = Instant::now();
        f();
        ns.push(start.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    ns
}

struct CommitNumbers {
    epoch_records: usize,
}

struct NeighborNumbers {
    calls: usize,
    scan_ns: Vec<u64>,
    indexed_ns: Vec<u64>,
}

struct StreamNumbers {
    job_rows: usize,
    calls: usize,
    oneshot_ns: Vec<u64>,
    first_row_ns: Vec<u64>,
    full_stream_ns: Vec<u64>,
}

struct ObsNumbers {
    calls: usize,
    plain_ns: Vec<u64>,
    traced_ns: Vec<u64>,
    span_calls: usize,
    span_record_ns: Vec<u64>,
}

struct ConcurrencyLevel {
    connections: usize,
    first_row_ns: Vec<u64>,
    full_stream_ns: Vec<u64>,
    rows_checked: u64,
}

struct ConcurrencyNumbers {
    streams_per_connection: usize,
    levels: Vec<ConcurrencyLevel>,
}

struct FederationLevel {
    backends: usize,
    full_stream_ns: Vec<u64>,
}

struct FederationNumbers {
    rows: usize,
    calls: usize,
    single_ns: Vec<u64>,
    levels: Vec<FederationLevel>,
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    let n: usize = if quick() { 5_000 } else { 50_000 };
    let epochs = 8u64;
    let rows: Vec<EpochRecord> = (0..n as u64)
        .map(|i| EpochRecord {
            epoch: i % epochs,
            record: record(i),
        })
        .collect();

    // 1. Snapshot rebuild: what a monolithic commit pays to publish
    //    (indexes + fuzzy corpus parse over the full record set).
    {
        let mut g = criterion.benchmark_group("query");
        g.sample_size(5);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_function("snapshot_rebuild", |b| {
            b.iter(|| black_box(QuerySnapshot::build(black_box(rows.clone()))))
        });
        g.finish();
    }

    // 2. Epoch commit: the acceptance comparison. Delta-committing a
    //    10% epoch onto `n` existing records (what `with_epoch` does at
    //    every commit) vs rebuilding the whole history from scratch
    //    (what the monolithic snapshot did).
    let commit = {
        let epoch_len = n / 10;
        let delta_rows: Vec<EpochRecord> = (n as u64..(n + epoch_len) as u64)
            .map(|i| EpochRecord {
                epoch: epochs,
                record: record(i),
            })
            .collect();
        let mut full_input = rows.clone();
        full_input.extend(delta_rows.iter().cloned());
        let base = QuerySnapshot::build(rows.clone());

        let mut g = criterion.benchmark_group("query");
        g.sample_size(5);
        g.bench_function("commit_full_rebuild", |b| {
            b.iter(|| black_box(QuerySnapshot::build(black_box(full_input.clone()))))
        });
        g.bench_function("commit_delta", |b| {
            b.iter(|| black_box(base.with_epoch(black_box(delta_rows.clone()))))
        });
        g.finish();
        CommitNumbers {
            epoch_records: epoch_len,
        }
    };

    // 3. Fuzzy neighbors: the per-layer gram index vs the linear scan
    //    over the same corpus, in-process (no protocol in the way).
    let neighbor_calls = if quick() { 50 } else { 200 };
    let neighbors = {
        let snapshot = QuerySnapshot::build(rows.clone());
        let corpus: Vec<FuzzyHash> = rows
            .iter()
            .filter_map(|er| er.record.file_hash.as_deref())
            .filter_map(|h| FuzzyHash::parse(h).ok())
            .collect();
        let mut probe = 0u64;
        let scan_ns = measure(neighbor_calls, || {
            probe = (probe + 41) % n as u64;
            let baseline = FuzzyHash::parse(&synthetic_file_hash(probe)).unwrap();
            black_box(similarity_search(&baseline, &corpus, 50));
        });
        probe = 0;
        let indexed_ns = measure(neighbor_calls, || {
            probe = (probe + 41) % n as u64;
            black_box(snapshot.nearest_neighbors(&synthetic_file_hash(probe), 5, 50));
        });
        NeighborNumbers {
            calls: neighbor_calls,
            scan_ns,
            indexed_ns,
        }
    };

    // 4. TCP request latency against a live daemon populated with the
    //    same records (imported as `epochs` committed epochs).
    let dir = std::env::temp_dir().join(format!("siren-bench-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServiceConfig {
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        // The concurrency section below holds up to 1024 connections
        // open at once while a small worker pool round-robins them:
        // none may be refused at registration, deadline-dropped while
        // parked, or evicted from the cursor table mid-stream.
        query_backlog: 2048,
        query_deadline: std::time::Duration::from_secs(300),
        query_max_cursors: 4096,
        ..ServiceConfig::at(&dir)
    };
    let (mut daemon, _) = SirenDaemon::open(cfg).expect("open bench daemon");
    for epoch in 0..epochs {
        let chunk: Vec<ProcessRecord> = rows
            .iter()
            .filter(|er| er.epoch == epoch)
            .map(|er| er.record.clone())
            .collect();
        daemon.import_epoch(chunk).expect("import epoch");
    }
    let addr = daemon.query_addr().expect("query server up");
    let mut client = SirenClient::connect(addr).expect("connect");

    let calls: usize = if quick() { 300 } else { 2_000 };
    let probe_hash = record(42).file_hash.unwrap();

    let mut job = 0u64;
    let status_ns = measure(calls, || {
        black_box(client.status().expect("status"));
    });
    let by_job_ns = measure(calls, || {
        job = (job + 13) % 997;
        black_box(client.by_job(job).expect("by_job"));
    });
    let mut host = 0u64;
    let library_ns = measure(calls.min(400), || {
        host = (host + 7) % 128;
        let sel = Selection::all().host(format!("nid{host:06}"));
        black_box(client.library_usage(sel).expect("library_usage"));
    });
    let neighbors_ns = measure(calls.min(200), || {
        black_box(client.neighbors(&probe_hash, 5, 50).expect("neighbors"));
    });

    for (kind, ns) in [
        ("status", &status_ns),
        ("by_job", &by_job_ns),
        ("library_usage", &library_ns),
        ("neighbors", &neighbors_ns),
    ] {
        println!(
            "query/tcp_{kind:<14} p50 {:>9} ns   p99 {:>9} ns   ({} calls)",
            percentile(ns, 50.0),
            percentile(ns, 99.0),
            ns.len()
        );
    }

    // 5. Streamed vs one-shot ByJob on one big job (protocol v2 plan
    //    stream vs the single buffered v1 frame). The interesting
    //    number is time to the *first row*: the stream starts
    //    delivering after one bounded batch; the one-shot answer
    //    serializes every row before the first byte.
    let stream = {
        let job_rows: usize = if quick() { 5_000 } else { 50_000 };
        let big_job = 1_000_000u64;
        daemon
            .import_epoch(
                (0..job_rows as u64)
                    .map(|i| lean_record(i, big_job))
                    .collect(),
            )
            .expect("import big job");
        let calls = if quick() { 10 } else { 20 };

        let oneshot_ns = measure(calls, || {
            let rows = client.by_job(big_job).expect("one-shot by_job");
            assert_eq!(rows.len(), job_rows);
            black_box(rows);
        });

        let mut first_row_ns = Vec::with_capacity(calls);
        let mut full_stream_ns = Vec::with_capacity(calls);
        for _ in 0..calls {
            let plan = QueryPlan::records()
                .filter(Selection::all().job(big_job))
                .batch_rows(512)
                .page_rows(MAX_PAGE_ROWS);
            let start = Instant::now();
            let mut stream = client.query(plan).expect("open stream");
            let first = stream.next().expect("first row").expect("first row ok");
            first_row_ns.push(start.elapsed().as_nanos() as u64);
            black_box(first);
            let mut rows = 1usize;
            for row in &mut stream {
                black_box(row.expect("stream row"));
                rows += 1;
            }
            full_stream_ns.push(start.elapsed().as_nanos() as u64);
            assert_eq!(rows, job_rows);
        }
        first_row_ns.sort_unstable();
        full_stream_ns.sort_unstable();

        println!(
            "query/stream_byjob ({job_rows} rows): one-shot p50 {:>9} ns | first row p50 {:>9} ns | full stream p50 {:>9} ns",
            percentile(&oneshot_ns, 50.0),
            percentile(&first_row_ns, 50.0),
            percentile(&full_stream_ns, 50.0),
        );
        StreamNumbers {
            job_rows,
            calls,
            oneshot_ns,
            first_row_ns,
            full_stream_ns,
        }
    };

    // 6. Tracing overhead: the same paged plan with and without a
    //    client-supplied trace id (the server records spans either way;
    //    the delta is the wire trace context plus the cursor rejoin),
    //    and the raw cost of recording one span into a live flight
    //    recorder ring.
    let obs = {
        let obs_calls: usize = if quick() { 200 } else { 1_000 };
        let plan_for = |job: u64| {
            QueryPlan::records()
                .filter(Selection::all().job(job))
                .batch_rows(256)
                .page_rows(MAX_PAGE_ROWS)
        };
        let mut job = 0u64;
        let plain_ns = measure(obs_calls, || {
            job = (job + 13) % 997;
            let stream = client.query(plan_for(job)).expect("plain plan");
            black_box(stream.collect_rows().expect("plain rows"));
        });
        job = 0;
        let mut t = 0u64;
        let traced_ns = measure(obs_calls, || {
            job = (job + 13) % 997;
            t += 1;
            let stream = client
                .query_traced(plan_for(job), TraceId(t))
                .expect("traced plan");
            black_box(stream.collect_rows().expect("traced rows"));
        });

        let span_calls: usize = if quick() { 10_000 } else { 100_000 };
        let store = siren_obs::TraceStore::default();
        let buffer = store.buffer();
        let span_record_ns = measure(span_calls, || {
            black_box(buffer.root("bench.span", None));
        });
        ObsNumbers {
            calls: obs_calls,
            plain_ns,
            traced_ns,
            span_calls,
            span_record_ns,
        }
    };
    println!(
        "query/obs_overhead: plain plan p50 {:>9} ns | traced plan p50 {:>9} ns | span record p50 {:>5} ns",
        percentile(&obs.plain_ns, 50.0),
        percentile(&obs.traced_ns, 50.0),
        percentile(&obs.span_record_ns, 50.0),
    );

    // 7. Reactor concurrency: N connections held open simultaneously,
    //    each interleaving two multiplexed (v3) cursor streams, driven
    //    by a bounded worker pool. Reported per level: time to first
    //    row and to full drain, per stream, across every connection —
    //    the serving tier's latency under connection fan-out.
    let concurrency = {
        use std::sync::{Arc, Barrier};
        let levels: &[usize] = if quick() { &[16, 64] } else { &[64, 256, 1024] };
        let streams_per_connection = 2usize;
        // Expected row count per job, from the same records the daemon
        // imported: each stream's drain is verified against it.
        let mut per_job = vec![0u64; 997];
        for er in &rows {
            per_job[(er.record.key.job_id % 997) as usize] += 1;
        }

        let mut results = Vec::new();
        for &connections in levels {
            let workers = connections.min(32);
            let per_worker = connections / workers;
            let barrier = Arc::new(Barrier::new(workers));
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let barrier = Arc::clone(&barrier);
                    let per_job = per_job.clone();
                    std::thread::spawn(move || {
                        let muxes: Vec<_> = (0..per_worker)
                            .map(|_| {
                                SirenClient::connect(addr)
                                    .expect("concurrency connect")
                                    .into_mux()
                                    .expect("v3 mux")
                            })
                            .collect();
                        // All connections at this level are open before
                        // any stream starts.
                        barrier.wait();
                        let mut first_row_ns = Vec::new();
                        let mut full_stream_ns = Vec::new();
                        let mut rows_checked = 0u64;
                        for (c, mux) in muxes.iter().enumerate() {
                            let job = |s: usize| ((w * per_worker + c) * 2 + s) as u64 % 997;
                            let plan_for = |j: u64| {
                                QueryPlan::records()
                                    .filter(Selection::all().job(j))
                                    .batch_rows(16)
                                    .page_rows(32)
                            };
                            let start = Instant::now();
                            let mut streams: Vec<_> = (0..streams_per_connection)
                                .map(|s| mux.query(plan_for(job(s))).expect("open mux stream"))
                                .collect();
                            let mut firsts = vec![None; streams.len()];
                            let mut counts = vec![0u64; streams.len()];
                            let mut fulls = vec![None; streams.len()];
                            // Interleave: one row from each live stream
                            // per round, so the streams stay mid-flight
                            // together on the shared connection.
                            while fulls.iter().any(Option::is_none) {
                                for (s, stream) in streams.iter_mut().enumerate() {
                                    if fulls[s].is_some() {
                                        continue;
                                    }
                                    match stream.next() {
                                        Some(row) => {
                                            black_box(row.expect("mux stream row"));
                                            counts[s] += 1;
                                            firsts[s].get_or_insert_with(|| {
                                                start.elapsed().as_nanos() as u64
                                            });
                                        }
                                        None => {
                                            fulls[s] = Some(start.elapsed().as_nanos() as u64);
                                        }
                                    }
                                }
                            }
                            for (s, count) in counts.iter().enumerate() {
                                assert_eq!(
                                    *count,
                                    per_job[job(s) as usize],
                                    "stream drained the wrong row count"
                                );
                                rows_checked += count;
                            }
                            first_row_ns.extend(firsts.into_iter().flatten());
                            full_stream_ns.extend(fulls.into_iter().flatten());
                        }
                        // Hold every connection open until the whole
                        // level has drained: peak concurrency = level.
                        barrier.wait();
                        (first_row_ns, full_stream_ns, rows_checked)
                    })
                })
                .collect();
            let mut first_row_ns = Vec::new();
            let mut full_stream_ns = Vec::new();
            let mut rows_checked = 0u64;
            for handle in handles {
                let (firsts, fulls, checked) = handle.join().expect("concurrency worker");
                first_row_ns.extend(firsts);
                full_stream_ns.extend(fulls);
                rows_checked += checked;
            }
            first_row_ns.sort_unstable();
            full_stream_ns.sort_unstable();
            println!(
                "query/concurrent_connections {connections:>5}: first row p50 {:>9} ns p99 {:>9} ns | full stream p50 {:>9} ns p99 {:>9} ns | {rows_checked} rows checked",
                percentile(&first_row_ns, 50.0),
                percentile(&first_row_ns, 99.0),
                percentile(&full_stream_ns, 50.0),
                percentile(&full_stream_ns, 99.0),
            );
            results.push(ConcurrencyLevel {
                connections,
                first_row_ns,
                full_stream_ns,
                rows_checked,
            });
        }
        ConcurrencyNumbers {
            streams_per_connection,
            levels: results,
        }
    };

    drop(client);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);

    // 8. Federation: full-stream drain of the whole corpus through an
    //    embedded scatter-gather Router over 1/2/4 shard daemons vs a
    //    direct client on the single daemon holding the union — the
    //    price of the k-way merge tier at each fan-out width.
    let federation = {
        use siren_consolidate::record_order;
        use siren_federation::{FleetConfig, Router};
        use siren_wire::ShardRouter;

        let fed_rows: usize = if quick() { 4_000 } else { 40_000 };
        let fed_calls: usize = if quick() { 8 } else { 20 };
        let fed_epochs = 4u64;
        // Canonical-corpus discipline: per-epoch records in
        // record_order on every daemon (see siren_federation::merge).
        let mut union: Vec<Vec<ProcessRecord>> = (0..fed_epochs).map(|_| Vec::new()).collect();
        for i in 0..fed_rows as u64 {
            union[(i % fed_epochs) as usize].push(lean_record(i, i % 997));
        }
        for epoch in &mut union {
            epoch.sort_by(record_order);
        }

        let mut dirs = Vec::new();
        let mut spawn = |tag: &str, epochs: &[Vec<ProcessRecord>]| {
            let dir =
                std::env::temp_dir().join(format!("siren-bench-fed-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = ServiceConfig {
                query_addr: Some("127.0.0.1:0".parse().unwrap()),
                ..ServiceConfig::at(&dir)
            };
            let (mut d, _) = SirenDaemon::open(cfg).expect("open fed daemon");
            for records in epochs {
                d.import_epoch(records.clone()).expect("import fed epoch");
            }
            dirs.push(dir);
            d
        };

        let single = spawn("single", &union);
        let mut single_client =
            SirenClient::connect(single.query_addr().unwrap()).expect("connect single");
        let single_ns = measure(fed_calls, || {
            let stream = single_client
                .query(QueryPlan::records())
                .expect("single plan");
            let rows = stream.collect_rows().expect("single rows");
            assert_eq!(rows.len(), fed_rows);
            black_box(rows);
        });

        let mut levels = Vec::new();
        for backends in [1usize, 2, 4] {
            let shard_router = ShardRouter::new(backends);
            let daemons: Vec<SirenDaemon> = (0..backends)
                .map(|k| {
                    let epochs: Vec<Vec<ProcessRecord>> = union
                        .iter()
                        .map(|epoch| {
                            epoch
                                .iter()
                                .filter(|r| shard_router.shard_of_job(r.key.job_id) == k)
                                .cloned()
                                .collect()
                        })
                        .collect();
                    spawn(&format!("b{backends}s{k}"), &epochs)
                })
                .collect();
            let router = Router::new(FleetConfig::sharded(
                daemons.iter().map(|d| d.query_addr().unwrap()),
            ))
            .expect("fed router");
            let full_stream_ns = measure(fed_calls, || {
                let stream = router.query(QueryPlan::records()).expect("fed plan");
                let (rows, warning) = stream.collect_rows_warned();
                assert!(warning.is_none(), "bench fleet must be healthy");
                assert_eq!(rows.len(), fed_rows);
                black_box(rows);
            });
            println!(
                "query/federation {backends} backend(s): full stream p50 {:>9} ns p99 {:>9} ns | overhead vs single {:>5.2}x",
                percentile(&full_stream_ns, 50.0),
                percentile(&full_stream_ns, 99.0),
                percentile(&full_stream_ns, 50.0) as f64
                    / percentile(&single_ns, 50.0).max(1) as f64,
            );
            levels.push(FederationLevel {
                backends,
                full_stream_ns,
            });
        }
        drop(single_client);
        drop(single);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
        FederationNumbers {
            rows: fed_rows,
            calls: fed_calls,
            single_ns,
            levels,
        }
    };

    write_json(
        &criterion,
        n,
        commit,
        &neighbors,
        &stream,
        &obs,
        &concurrency,
        &federation,
        &[
            ("status", status_ns),
            ("by_job", by_job_ns),
            ("library_usage", library_ns),
            ("neighbors", neighbors_ns),
        ],
    );
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    c: &Criterion,
    n: usize,
    commit: CommitNumbers,
    neighbors: &NeighborNumbers,
    stream: &StreamNumbers,
    obs: &ObsNumbers,
    concurrency: &ConcurrencyNumbers,
    federation: &FederationNumbers,
    kinds: &[(&str, Vec<u64>)],
) {
    let median = |id: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.median_ns)
    };
    let (Some(rebuild_ns), Some(full_ns), Some(delta_ns)) = (
        median("query/snapshot_rebuild"),
        median("query/commit_full_rebuild"),
        median("query/commit_delta"),
    ) else {
        return;
    };

    let scan_p50 = percentile(&neighbors.scan_ns, 50.0);
    let indexed_p50 = percentile(&neighbors.indexed_ns, 50.0);

    let mut out = String::from("{\n  \"bench\": \"query\",\n");
    out.push_str(&format!("  \"records\": {n},\n"));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        available_parallelism()
    ));
    out.push_str(&format!(
        "  \"snapshot_rebuild\": {{\"median_ns\": {rebuild_ns:.0}, \"records_per_sec\": {:.0}}},\n",
        n as f64 * 1e9 / rebuild_ns
    ));
    out.push_str(&format!(
        "  \"snapshot_commit\": {{\"existing_records\": {n}, \"epoch_records\": {}, \
         \"full_median_ns\": {full_ns:.0}, \"delta_median_ns\": {delta_ns:.0}, \
         \"delta_speedup\": {:.1}}},\n",
        commit.epoch_records,
        full_ns / delta_ns
    ));
    out.push_str(&format!(
        "  \"neighbors_index\": {{\"calls\": {}, \"scan_p50_ns\": {scan_p50}, \
         \"indexed_p50_ns\": {indexed_p50}, \"indexed_speedup\": {:.1}}},\n",
        neighbors.calls,
        scan_p50 as f64 / indexed_p50.max(1) as f64
    ));
    out.push_str(&format!(
        "  \"stream_byjob\": {{\"job_rows\": {}, \"calls\": {}, \
         \"oneshot_p50_ns\": {}, \"oneshot_p99_ns\": {}, \
         \"first_row_p50_ns\": {}, \"first_row_p99_ns\": {}, \
         \"full_stream_p50_ns\": {}, \"full_stream_p99_ns\": {}, \
         \"first_row_speedup_vs_oneshot_p50\": {:.1}}},\n",
        stream.job_rows,
        stream.calls,
        percentile(&stream.oneshot_ns, 50.0),
        percentile(&stream.oneshot_ns, 99.0),
        percentile(&stream.first_row_ns, 50.0),
        percentile(&stream.first_row_ns, 99.0),
        percentile(&stream.full_stream_ns, 50.0),
        percentile(&stream.full_stream_ns, 99.0),
        percentile(&stream.oneshot_ns, 50.0) as f64
            / percentile(&stream.first_row_ns, 50.0).max(1) as f64
    ));
    let plain_p50 = percentile(&obs.plain_ns, 50.0);
    let traced_p50 = percentile(&obs.traced_ns, 50.0);
    out.push_str(&format!(
        "  \"obs_overhead\": {{\"calls\": {}, \"plan_p50_ns\": {plain_p50}, \
         \"traced_plan_p50_ns\": {traced_p50}, \"overhead_pct\": {:.1}, \
         \"span_calls\": {}, \"span_record_p50_ns\": {}}},\n",
        obs.calls,
        (traced_p50 as f64 - plain_p50 as f64) * 100.0 / plain_p50.max(1) as f64,
        obs.span_calls,
        percentile(&obs.span_record_ns, 50.0)
    ));
    out.push_str(&format!(
        "  \"concurrent_connections\": {{\"streams_per_connection\": {}, \"levels\": [\n",
        concurrency.streams_per_connection
    ));
    for (i, level) in concurrency.levels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"connections\": {}, \"streams\": {}, \
             \"first_row_p50_ns\": {}, \"first_row_p99_ns\": {}, \
             \"full_stream_p50_ns\": {}, \"full_stream_p99_ns\": {}, \
             \"rows_checked\": {}}}{}\n",
            level.connections,
            level.full_stream_ns.len(),
            percentile(&level.first_row_ns, 50.0),
            percentile(&level.first_row_ns, 99.0),
            percentile(&level.full_stream_ns, 50.0),
            percentile(&level.full_stream_ns, 99.0),
            level.rows_checked,
            if i + 1 < concurrency.levels.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]},\n");
    let single_p50 = percentile(&federation.single_ns, 50.0);
    out.push_str(&format!(
        "  \"federation\": {{\"rows\": {}, \"calls\": {}, \
         \"single_daemon_full_stream_p50_ns\": {single_p50}, \"levels\": [\n",
        federation.rows, federation.calls
    ));
    for (i, level) in federation.levels.iter().enumerate() {
        let p50 = percentile(&level.full_stream_ns, 50.0);
        out.push_str(&format!(
            "    {{\"backends\": {}, \"full_stream_p50_ns\": {p50}, \
             \"full_stream_p99_ns\": {}, \"merge_overhead_vs_single\": {:.2}}}{}\n",
            level.backends,
            percentile(&level.full_stream_ns, 99.0),
            p50 as f64 / single_p50.max(1) as f64,
            if i + 1 < federation.levels.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]},\n");
    out.push_str("  \"tcp\": {\n");
    for (i, (kind, ns)) in kinds.iter().enumerate() {
        out.push_str(&format!(
            "    \"{kind}\": {{\"calls\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            ns.len(),
            percentile(ns, 50.0),
            percentile(ns, 99.0),
            if i + 1 < kinds.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(path, out).expect("write BENCH_query.json");
    println!("wrote {path}");
}
