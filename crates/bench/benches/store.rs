//! Segmented-store benchmark: segment write throughput, recovery time,
//! and indexed query latency over a recovered store.
//!
//! Emits `BENCH_store.json` at the workspace root alongside the usual
//! criterion output, so the storage tier's performance trajectory is
//! tracked in-repo next to `BENCH_ingest.json`. Set `SIREN_BENCH_QUICK=1`
//! (the CI smoke step does) to shrink the workload an order of magnitude.

use criterion::Criterion;
use siren_bench::available_parallelism;
use siren_consolidate::ProcessRecord;
use siren_db::{Database, Record, SegmentedOptions};
use siren_service::{Replicator, ReplicatorConfig, ServiceConfig, SirenDaemon};
use siren_store::{SegmentedBackend, StorageBackend};
use siren_wire::{Layer, MessageType};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

fn quick() -> bool {
    std::env::var("SIREN_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn record(i: u64) -> Record {
    Record {
        job_id: i % 997,
        step_id: 0,
        pid: i as u32,
        exe_hash: format!("{i:032x}"),
        host: format!("nid{:06}", i % 128),
        time: 1_700_000_000 + i,
        layer: Layer::SelfExe,
        mtype: MessageType::Objects,
        content: format!("/lib64/libc.so.6;/lib64/libm.so.6;/opt/app/lib{i}.so"),
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts() -> SegmentedOptions {
    SegmentedOptions {
        rotate_bytes: 256 * 1024,
        compact_min_files: 4,
        background_compaction: false,
    }
}

fn write_all(dir: &std::path::Path, records: &[Record], compact: bool) -> (usize, usize) {
    let (mut backend, _, _) = SegmentedBackend::<Record>::open(dir, opts()).unwrap();
    for chunk in records.chunks(256) {
        backend.append_batch(chunk).unwrap();
    }
    backend.sync().unwrap();
    if compact {
        backend.compact_now().unwrap();
    }
    backend.file_census()
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    let n: usize = if quick() { 4_000 } else { 40_000 };
    let records: Vec<Record> = (0..n as u64).map(record).collect();
    let bytes: usize = records.iter().map(|r| r.encode().len()).sum();

    // 1. Segment write throughput: append + rotate + seal, fsynced.
    {
        let mut g = criterion.benchmark_group("store");
        g.sample_size(5);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_function("segment_write", |b| {
            b.iter(|| {
                let dir = bench_dir("write");
                let census = write_all(&dir, black_box(&records), false);
                std::fs::remove_dir_all(&dir).unwrap();
                black_box(census)
            })
        });
        g.finish();
    }

    // 2. Recovery: reopen a compacted store (runs + segments + WAL).
    let recovery_dir = bench_dir("recover");
    write_all(&recovery_dir, &records, true);
    {
        let mut g = criterion.benchmark_group("store");
        g.sample_size(5);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_function("recovery", |b| {
            b.iter(|| {
                let (_backend, recovered, stats) =
                    SegmentedBackend::<Record>::open(black_box(&recovery_dir), opts()).unwrap();
                assert_eq!(recovered.len(), n);
                black_box(stats)
            })
        });
        g.finish();
    }

    // 3. Query latency: indexed job lookups over the recovered cache.
    let (db, _) = Database::open_segmented(&recovery_dir, opts()).unwrap();
    let queries: usize = if quick() { 200 } else { 2_000 };
    {
        let mut g = criterion.benchmark_group("store");
        g.sample_size(10);
        g.throughput(criterion::Throughput::Elements(queries as u64));
        g.bench_function("query_by_job", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in 0..queries as u64 {
                    hits += db.query().job(q % 997).collect().len();
                }
                black_box(hits)
            })
        });
        g.finish();
    }
    drop(db);
    std::fs::remove_dir_all(&recovery_dir).unwrap();

    // 4. Replication: a fresh follower catching up the full corpus
    // from a live leader over the query port — the epoch-shipping
    // path end to end (subscribe, checksummed batches, idempotent
    // epoch applies, durable commits on the follower's own store).
    let repl_epochs: usize = if quick() { 4 } else { 10 };
    let leader_dir = bench_dir("repl-leader");
    let (mut leader, _) = SirenDaemon::open(ServiceConfig {
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::at(&leader_dir)
    })
    .unwrap();
    for chunk in records.chunks(n.div_ceil(repl_epochs)) {
        let rows: Vec<ProcessRecord> = chunk.iter().map(ProcessRecord::new).collect();
        leader.import_epoch(rows).unwrap();
    }
    let leader_addr = leader.query_addr().unwrap();
    let apply_p50 = std::cell::Cell::new(0u64);
    {
        let mut g = criterion.benchmark_group("store");
        g.sample_size(5);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_function("replication_catchup", |b| {
            b.iter(|| {
                let follower_dir = bench_dir("repl-follower");
                let (follower, _) = SirenDaemon::open(ServiceConfig::at(&follower_dir)).unwrap();
                let repl = Replicator::spawn(
                    follower,
                    ReplicatorConfig {
                        poll_interval: Duration::from_millis(5),
                        ..ReplicatorConfig::to(leader_addr)
                    },
                )
                .unwrap();
                assert!(
                    repl.wait_caught_up(Duration::from_secs(120)),
                    "follower failed to catch up"
                );
                let follower = repl.shutdown();
                assert_eq!(follower.committed_epochs().len(), repl_epochs);
                let snapshot = follower.metrics_snapshot();
                apply_p50.set(
                    snapshot
                        .histogram("repl.apply_ns")
                        .map(|h| h.p50())
                        .unwrap_or(0),
                );
                drop(follower);
                std::fs::remove_dir_all(&follower_dir).unwrap();
            })
        });
        g.finish();
    }
    drop(leader);
    std::fs::remove_dir_all(&leader_dir).unwrap();

    write_json(&criterion, n, bytes, queries, repl_epochs, apply_p50.get());
}

fn write_json(
    c: &Criterion,
    n: usize,
    bytes: usize,
    queries: usize,
    repl_epochs: usize,
    apply_p50_ns: u64,
) {
    let median = |id: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.median_ns)
    };
    let (Some(write_ns), Some(recovery_ns), Some(query_ns), Some(catchup_ns)) = (
        median("store/segment_write"),
        median("store/recovery"),
        median("store/query_by_job"),
        median("store/replication_catchup"),
    ) else {
        return;
    };

    let out = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store\",\n",
            "  \"records\": {records},\n",
            "  \"available_parallelism\": {cores},\n",
            "  \"payload_bytes\": {bytes},\n",
            "  \"write\": {{\"median_ns\": {write_ns:.0}, \"records_per_sec\": {wps:.0}, \"mb_per_sec\": {mbps:.1}}},\n",
            "  \"recovery\": {{\"median_ns\": {recovery_ns:.0}, \"records_per_sec\": {rps:.0}}},\n",
            "  \"query\": {{\"median_ns\": {query_ns:.0}, \"queries\": {queries}, \"ns_per_query\": {npq:.0}}},\n",
            "  \"replication\": {{\"rows\": {records}, \"epochs\": {repl_epochs}, \"catchup_median_ns\": {catchup_ns:.0}, \"epochs_per_sec\": {eps:.1}, \"rows_per_sec\": {rows_ps:.0}, \"follower_apply_p50_ns\": {apply_p50_ns}}}\n",
            "}}\n"
        ),
        records = n,
        cores = available_parallelism(),
        bytes = bytes,
        write_ns = write_ns,
        wps = n as f64 * 1e9 / write_ns,
        mbps = bytes as f64 * 1e9 / write_ns / (1024.0 * 1024.0),
        recovery_ns = recovery_ns,
        rps = n as f64 * 1e9 / recovery_ns,
        query_ns = query_ns,
        queries = queries,
        npq = query_ns / queries as f64,
        repl_epochs = repl_epochs,
        catchup_ns = catchup_ns,
        eps = repl_epochs as f64 * 1e9 / catchup_ns,
        rows_ps = n as f64 * 1e9 / catchup_ns,
        apply_p50_ns = apply_p50_ns,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, out).expect("write BENCH_store.json");
    println!("wrote {path}");
}
