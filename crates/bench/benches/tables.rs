//! Table/figure regeneration benchmarks: one bench per paper artifact,
//! all over the same consolidated campaign records. These double as the
//! canonical invocation of each analysis; the experiment harness prints
//! the same outputs.

use criterion::{criterion_group, criterion_main, Criterion};
use siren_analysis::{self as analysis, Labeler};
use siren_bench::campaign_records;
use siren_cluster::python::PACKAGE_CATALOG;
use siren_core::find_unknown_baseline;
use siren_text::SubstringDeriver;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let records = campaign_records(0.005, 0x51_4E);
    let labeler = Labeler::default();
    let deriver = SubstringDeriver::paper();

    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(20);

    g.bench_function("table2_usage", |b| {
        b.iter(|| black_box(analysis::usage_table(black_box(&records))))
    });
    g.bench_function("table3_system_executables", |b| {
        b.iter(|| black_box(analysis::system_table(black_box(&records))))
    });
    g.bench_function("table4_bash_variants", |b| {
        b.iter(|| {
            black_box(analysis::library_variant_table(
                black_box(&records),
                "/usr/bin/bash",
            ))
        })
    });
    g.bench_function("table5_labels", |b| {
        b.iter(|| black_box(analysis::label_table(black_box(&records), &labeler)))
    });
    g.bench_function("table6_compilers", |b| {
        b.iter(|| black_box(analysis::compiler_table(black_box(&records))))
    });
    g.bench_function("table7_similarity_search", |b| {
        let baseline = find_unknown_baseline(&records).expect("unknown baseline");
        b.iter(|| {
            black_box(analysis::similarity_search_table(
                black_box(&records),
                baseline,
                &labeler,
                10,
            ))
        })
    });
    g.bench_function("table8_interpreters", |b| {
        b.iter(|| black_box(analysis::interpreter_table(black_box(&records))))
    });
    g.bench_function("fig2_derived_libraries", |b| {
        b.iter(|| {
            black_box(analysis::derived_library_stats(
                black_box(&records),
                &deriver,
            ))
        })
    });
    g.bench_function("fig3_python_packages", |b| {
        b.iter(|| {
            black_box(analysis::package_stats(
                black_box(&records),
                PACKAGE_CATALOG,
            ))
        })
    });
    g.bench_function("fig4_compiler_matrix", |b| {
        b.iter(|| black_box(analysis::compiler_matrix(black_box(&records), &labeler)))
    });
    g.bench_function("fig5_library_matrix", |b| {
        b.iter(|| {
            black_box(analysis::library_matrix(
                black_box(&records),
                &labeler,
                &deriver,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
