//! # siren-bench — shared workload builders for the benchmark suite
//!
//! The Criterion benches under `benches/` regenerate the paper's tables
//! and figures and measure the performance claims (§2.1: fuzzy-hash
//! comparison scales better than byte-level comparison; §3.1: selective
//! collection and UDP fire-and-forget keep overhead low). This library
//! holds the workload constructors they share, so every bench measures
//! the same populations.

use siren_consolidate::ProcessRecord;
use siren_core::{Deployment, DeploymentConfig};
use siren_fuzzy::{fuzzy_hash, FuzzyHash};

/// Deterministic pseudo-random bytes (xorshift64), the standard corpus
/// material across the benches.
pub fn pseudo_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

/// A family of `n` binaries around a common base: member `i` has `i`
/// small regions rewritten, so fuzzy similarity to member 0 decays.
pub fn variant_family(seed: u64, len: usize, n: usize) -> Vec<Vec<u8>> {
    let base = pseudo_bytes(seed, len);
    (0..n)
        .map(|i| {
            let mut v = base.clone();
            // Rewrite one contiguous region whose size grows with `i`:
            // clustered edits leave most content-defined chunks intact,
            // which is what makes real binary variants fuzzy-comparable.
            let vlen = v.len();
            let region = (i * vlen / (2 * n.max(1))).min(vlen);
            let start = (i * 7919) % vlen.saturating_sub(region).max(1);
            for b in v.iter_mut().skip(start).take(region) {
                *b ^= 0x5A;
            }
            v
        })
        .collect()
}

/// A corpus of fuzzy hashes: `families` distinct base contents with
/// `members` variants each.
pub fn hash_corpus(families: usize, members: usize, len: usize) -> Vec<FuzzyHash> {
    let mut out = Vec::with_capacity(families * members);
    for f in 0..families {
        for v in variant_family(0x9000 + f as u64 * 131, len, members) {
            out.push(fuzzy_hash(&v));
        }
    }
    out
}

/// The hardware parallelism the bench ran under. Every `BENCH_*.json`
/// artifact records this so numbers from constrained containers (the
/// ROADMAP's 1-core ingest measurements) are self-describing.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A synthetic SSDeep-style `FILE_H` string: base64 signatures derived
/// from the seed, the entropy profile of real CTPH output (every bench
/// record gets one so fuzzy corpora are fully populated).
pub fn synthetic_file_hash(seed: u64) -> String {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next_char = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        siren_hash::BASE64_ALPHABET[(x >> 32) as usize & 63] as char
    };
    let sig1: String = (0..48).map(|_| next_char()).collect();
    let sig2: String = (0..24).map(|_| next_char()).collect();
    format!("96:{sig1}:{sig2}")
}

/// Run one deployment and return its consolidated records (the input to
/// every table/figure bench).
pub fn campaign_records(scale: f64, seed: u64) -> Vec<ProcessRecord> {
    let mut cfg = DeploymentConfig::default();
    cfg.campaign.scale = scale;
    cfg.campaign.seed = seed;
    Deployment::new(cfg).run().records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_family_decays() {
        let fam = variant_family(1, 16_384, 4);
        let h0 = fuzzy_hash(&fam[0]);
        let h1 = fuzzy_hash(&fam[1]);
        let h3 = fuzzy_hash(&fam[3]);
        let near = siren_fuzzy::compare_parsed(&h0, &h1);
        let far = siren_fuzzy::compare_parsed(&h0, &h3);
        assert!(
            near >= far,
            "similarity must not increase with distance: {near} vs {far}"
        );
        assert!(near > 0);
    }

    #[test]
    fn corpus_sizes() {
        let c = hash_corpus(3, 4, 8_192);
        assert_eq!(c.len(), 12);
    }

    #[test]
    fn campaign_records_nonempty() {
        assert!(!campaign_records(0.001, 1).is_empty());
    }
}
