//! Machine-independent shape guard over the checked-in benchmark
//! artifacts: every section and key the benches promise must be
//! present in the committed `BENCH_*.json`, so a bench refactor that
//! silently drops a series (or forgets to regenerate the artifact)
//! fails CI on any machine — no timing values are ever asserted.

use std::path::PathBuf;

fn artifact(name: &str) -> String {
    let path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    std::fs::read_to_string(path.join(name))
        .unwrap_or_else(|e| panic!("committed artifact {name} must be readable: {e}"))
}

#[test]
fn query_bench_artifact_keeps_its_shape() {
    let json = artifact("BENCH_query.json");
    for key in [
        "\"bench\": \"query\"",
        "\"records\":",
        "\"snapshot_rebuild\":",
        "\"snapshot_commit\":",
        "\"delta_speedup\":",
        "\"neighbors_index\":",
        "\"indexed_speedup\":",
        "\"stream_byjob\":",
        "\"first_row_p50_ns\":",
        "\"obs_overhead\":",
        "\"concurrent_connections\":",
        "\"tcp\":",
        "\"status\":",
        "\"by_job\":",
        "\"library_usage\":",
        "\"neighbors\":",
    ] {
        assert!(json.contains(key), "BENCH_query.json lost {key}");
    }
}

/// The federation section: scatter-gather p50 at 1/2/4 backends plus
/// the merge-overhead ratio against the single union daemon.
#[test]
fn query_bench_artifact_carries_the_federation_section() {
    let json = artifact("BENCH_query.json");
    for key in [
        "\"federation\":",
        "\"single_daemon_full_stream_p50_ns\":",
        "\"backends\": 1",
        "\"backends\": 2",
        "\"backends\": 4",
        "\"full_stream_p50_ns\":",
        "\"full_stream_p99_ns\":",
        "\"merge_overhead_vs_single\":",
    ] {
        assert!(json.contains(key), "BENCH_query.json lost {key}");
    }
}

#[test]
fn ingest_and_store_artifacts_keep_their_headers() {
    for (name, bench) in [
        ("BENCH_ingest.json", "\"bench\": \"ingest\""),
        ("BENCH_store.json", "\"bench\": \"store\""),
    ] {
        let json = artifact(name);
        assert!(json.contains(bench), "{name} lost its bench header");
    }
}
