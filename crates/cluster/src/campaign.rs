//! Campaign orchestration: users × job kinds × processes → a deterministic
//! stream of [`ProcessContext`] observations.

use crate::corpus::ApplicationCorpus;
use crate::process::{ProcessContext, PythonContext, SimFile};
use crate::python::PythonEcosystem;
use crate::scheduler::{
    pick_weighted, sample_count, scale_count, system_variant_weights, PidAllocator,
};
use crate::sysimage::SystemImage;
use crate::users::{build_profiles, UserProfile};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; `(seed, scale)` fully determines the output stream.
    pub seed: u64,
    /// Population scale relative to the paper's deployment (1.0 =
    /// 2.3 M processes; the default 0.02 ≈ 46 k keeps experiments fast
    /// while preserving every structural feature).
    pub scale: f64,
    /// Campaign window start (UNIX seconds).
    pub start_time: u64,
    /// Campaign window length (seconds).
    pub duration: u64,
    /// Fraction of application/Python processes that also emit a
    /// non-zero-rank MPI sibling (which the collector must skip).
    pub nonzero_rank_ratio: f64,
    /// First Slurm job id minus one.
    pub job_id_base: u64,
    /// Lowest node number; jobs land on hosts `nid{host_base+0..512}`.
    /// Multi-cluster fleets give each cluster a disjoint host range.
    pub host_base: u32,
    /// Fraction of application processes that run inside containers
    /// (Singularity/Apptainer). `siren.so` is not mounted there, so the
    /// collector cannot observe them — §3.1's stated limitation.
    pub container_ratio: f64,
    /// Presence floor: each binary-variant family emits at least
    /// `min(variants, cap)` processes over the campaign regardless of
    /// scale, so the similarity experiments always see their families.
    /// The UNKNOWN family's 7 copies are below the default cap of 8.
    pub variant_floor_cap: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0x51_4E,
            scale: 0.02,
            start_time: crate::CAMPAIGN_START,
            duration: crate::CAMPAIGN_SECONDS,
            nonzero_rank_ratio: 0.05,
            container_ratio: 0.02,
            job_id_base: 8_000_000,
            host_base: 1000,
            variant_floor_cap: 8,
        }
    }
}

/// Aggregate counts of one campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Jobs generated.
    pub jobs: u64,
    /// Rank-0 process observations emitted.
    pub processes: u64,
    /// … of which from system-directory executables.
    pub system_processes: u64,
    /// … of which from user-directory executables.
    pub user_processes: u64,
    /// … of which Python interpreters (system-directory).
    pub python_processes: u64,
    /// Extra non-zero-rank observations (collector should skip these).
    pub nonzero_rank_processes: u64,
    /// `exec()` image replacements emitted (same PID + timestamp).
    pub exec_replacements: u64,
    /// Containerized process observations (invisible to the collector).
    pub container_processes: u64,
}

/// A fully built campaign, ready to stream process observations.
pub struct Campaign {
    cfg: CampaignConfig,
    system: SystemImage,
    corpus: ApplicationCorpus,
    python: PythonEcosystem,
    profiles: Vec<UserProfile>,
}

impl Campaign {
    /// Build all substrate state (system image, corpus, Python ecosystem).
    pub fn new(cfg: CampaignConfig) -> Self {
        Self {
            cfg,
            system: SystemImage::build(),
            corpus: ApplicationCorpus::build(),
            python: PythonEcosystem::build(),
            profiles: build_profiles(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// The system-executable image.
    pub fn system_image(&self) -> &SystemImage {
        &self.system
    }

    /// The user-application corpus.
    pub fn corpus(&self) -> &ApplicationCorpus {
        &self.corpus
    }

    /// The Python ecosystem.
    pub fn python(&self) -> &PythonEcosystem {
        &self.python
    }

    /// Stream every process observation through `f`. Deterministic for a
    /// given config. Returns aggregate statistics.
    pub fn run(&self, mut f: impl FnMut(ProcessContext)) -> CampaignStats {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut pids = PidAllocator::new();
        let mut stats = CampaignStats::default();
        let mut job_id = cfg.job_id_base;
        // Round-robin cursors so every binary variant and every script in
        // a family gets exercised, lowest variants first (the similarity
        // experiments rely on low-numbered variants being present).
        let mut variant_cursor: HashMap<&'static str, usize> = HashMap::new();
        let mut script_cursor: HashMap<&'static str, usize> = HashMap::new();
        // SimFile cache (per concrete path) so repeated executions share
        // one file object with a stable inode.
        let mut file_cache: HashMap<String, Arc<SimFile>> = HashMap::new();
        let mut next_inode = 5_000_000u64;
        // Processes emitted per group, for the presence floor.
        let mut group_emitted: HashMap<&'static str, u64> = HashMap::new();
        // Variants emitted per system executable: the first draws cycle
        // through the library-set variants so every set of Tables 3–4 is
        // present at any scale (same presence doctrine as the app-family
        // floor); afterwards draws follow the observed weights.
        let mut sys_variant_seen: HashMap<&'static str, usize> = HashMap::new();
        // Users whose first job has already guaranteed system-executable
        // presence (keeps Table 3's unique-user column exact at any scale).
        let mut sys_guaranteed: std::collections::HashSet<&'static str> =
            std::collections::HashSet::new();

        for profile in &self.profiles {
            // Per-job system rates. bash is moved to the front so the
            // bash→srun exec() pairing sees the bash before the srun.
            let mut sys_rates: Vec<(&'static str, f64)> = profile
                .system_procs
                .iter()
                .map(|(exe, total)| (*exe, total / profile.total_jobs as f64))
                .collect();
            sys_rates.sort_by_key(|(exe, _)| *exe != "/usr/bin/bash");

            let mut user_first_job = !sys_guaranteed.contains(profile.name);
            sys_guaranteed.insert(profile.name);
            for kind in &profile.kinds {
                let n_jobs = scale_count(kind.count, cfg.scale);
                // When the min-1 clamp rounded the job count up (or .round()
                // moved it), rescale the per-job rates so expected totals
                // remain exactly `scale × unscaled`.
                let kind_factor = (kind.count as f64 * cfg.scale) / n_jobs as f64;
                for job_idx in 0..n_jobs {
                    job_id += 1;
                    stats.jobs += 1;
                    let host = format!("nid{:06}", cfg.host_base + rng.random_range(0..512u32));
                    let span = cfg.duration.saturating_sub(7200).max(1);
                    let job_start = cfg.start_time + rng.random_range(0..span);

                    self.emit_job(
                        profile,
                        kind,
                        job_id,
                        &host,
                        job_start,
                        &sys_rates,
                        kind_factor,
                        job_idx == 0,
                        std::mem::take(&mut user_first_job),
                        &mut rng,
                        &mut pids,
                        &mut variant_cursor,
                        &mut script_cursor,
                        &mut group_emitted,
                        &mut sys_variant_seen,
                        &mut file_cache,
                        &mut next_inode,
                        &mut stats,
                        &mut f,
                    );
                }
            }
        }
        stats
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_job(
        &self,
        profile: &UserProfile,
        kind: &crate::users::JobKind,
        job_id: u64,
        host: &str,
        job_start: u64,
        sys_rates: &[(&'static str, f64)],
        kind_factor: f64,
        first_job_of_kind: bool,
        first_job_of_user: bool,
        rng: &mut StdRng,
        pids: &mut PidAllocator,
        variant_cursor: &mut HashMap<&'static str, usize>,
        script_cursor: &mut HashMap<&'static str, usize>,
        group_emitted: &mut HashMap<&'static str, u64>,
        sys_variant_seen: &mut HashMap<&'static str, usize>,
        file_cache: &mut HashMap<String, Arc<SimFile>>,
        next_inode: &mut u64,
        stats: &mut CampaignStats,
        f: &mut impl FnMut(ProcessContext),
    ) {
        let uid = profile.uid;
        let user = profile.name;
        let job_pid_root = pids.next(host);
        let mut first_bash: Option<(u32, u64)> = None;
        let mut exec_done = false;

        // ------------------------------------------ system processes --
        for (exe_path, rate) in sys_rates {
            let mut n = sample_count(rate * kind_factor, rng);
            if first_job_of_user && *rate > 0.0 {
                // Presence guarantee: every executable a user touches in
                // the full-scale campaign appears at least once, so the
                // unique-users column of Table 3 is scale-invariant.
                n = n.max(1);
            }
            if n == 0 {
                continue;
            }
            let exe = self
                .system
                .get(exe_path)
                .unwrap_or_else(|| panic!("system image missing {exe_path}"));
            let weights = system_variant_weights(exe_path, exe.object_variants.len());
            for _ in 0..n {
                let seen = sys_variant_seen.entry(exe_path).or_insert(0);
                let variant = if *seen < exe.object_variants.len() {
                    let v = *seen;
                    *seen += 1;
                    v
                } else {
                    pick_weighted(&weights, rng)
                };
                let objects = Arc::clone(&exe.object_variants[variant]);
                let ts = job_start + rng.random_range(0..3600u64);

                // §3.1: a bash that `exec()`s srun keeps its PID; the two
                // observations may share the same 1-second timestamp.
                let (pid, ts) = if *exe_path == "/usr/bin/srun" && !exec_done {
                    if let Some((bpid, bts)) = first_bash {
                        exec_done = true;
                        stats.exec_replacements += 1;
                        (bpid, bts)
                    } else {
                        (pids.next(host), ts)
                    }
                } else {
                    (pids.next(host), ts)
                };

                if *exe_path == "/usr/bin/bash" && first_bash.is_none() {
                    first_bash = Some((pid, ts));
                }

                let mut maps: Vec<String> = objects.iter().cloned().collect();
                maps.push(exe_path.to_string());

                stats.processes += 1;
                stats.system_processes += 1;
                f(ProcessContext {
                    user: user.to_string(),
                    uid,
                    gid: uid,
                    job_id,
                    step_id: 0,
                    slurm_procid: 0,
                    host: host.to_string(),
                    pid,
                    ppid: job_pid_root,
                    timestamp: ts,
                    exe_path: exe_path.to_string(),
                    exe: Arc::clone(&exe.file),
                    loaded_objects: objects,
                    loaded_modules: Arc::new(Vec::new()),
                    memory_maps: Arc::new(maps),
                    python: None,
                    in_container: false,
                });
            }
        }

        // -------------------------------------- application processes --
        let mut step_id = 1u32;
        for (group_id, rate) in &kind.apps {
            let group = self.corpus.group(group_id);
            let mut n = sample_count(rate * kind_factor, rng);
            if first_job_of_kind {
                // Presence guarantees: every kind shows its applications at
                // any scale, and every variant family reaches its floor.
                let floor = group.spec.variants.min(self.cfg.variant_floor_cap) as u64;
                let already = *group_emitted.get(group.spec.group_id).unwrap_or(&0);
                n = n.max(1).max(floor.saturating_sub(already));
            }
            *group_emitted.entry(group.spec.group_id).or_insert(0) += n;
            for _ in 0..n {
                let cursor = variant_cursor.entry(group.spec.group_id).or_insert(0);
                let variant = *cursor % group.spec.variants;
                *cursor += 1;

                let path = group.exe_path(user, variant);
                let vb = &group.variants[variant];
                let file = file_cache
                    .entry(path.clone())
                    .or_insert_with(|| {
                        *next_inode += 1;
                        Arc::new(SimFile {
                            data: Arc::clone(&vb.content),
                            meta: crate::process::FileMeta {
                                inode: *next_inode,
                                size: vb.content.len() as u64,
                                mode: 0o755,
                                owner_uid: uid,
                                owner_gid: uid,
                                atime: job_start,
                                mtime: self.cfg.start_time - 86_400,
                                ctime: self.cfg.start_time - 86_400,
                            },
                        })
                    })
                    .clone();

                let ts = job_start + 60 + rng.random_range(0..3600u64);
                let pid = pids.next(host);
                let mut maps: Vec<String> = vb.objects.iter().cloned().collect();
                maps.push(path.clone());

                stats.processes += 1;
                stats.user_processes += 1;
                let in_container = rng.random::<f64>() < self.cfg.container_ratio;
                if in_container {
                    stats.container_processes += 1;
                }
                let ctx = ProcessContext {
                    user: user.to_string(),
                    uid,
                    gid: uid,
                    job_id,
                    step_id,
                    slurm_procid: 0,
                    host: host.to_string(),
                    pid,
                    ppid: job_pid_root,
                    timestamp: ts,
                    exe_path: path,
                    exe: file,
                    loaded_objects: Arc::clone(&vb.objects),
                    loaded_modules: Arc::clone(&vb.modules),
                    memory_maps: Arc::new(maps),
                    python: None,
                    in_container,
                };
                // A fraction of MPI applications run with multiple ranks;
                // the collector must skip the non-zero ranks (§3.1).
                if rng.random::<f64>() < self.cfg.nonzero_rank_ratio {
                    let mut sibling = ctx.clone();
                    sibling.slurm_procid = 1;
                    sibling.pid = pids.next(host);
                    stats.nonzero_rank_processes += 1;
                    f(sibling);
                }
                f(ctx);
            }
            step_id += 1;
        }

        // ------------------------------------------ python processes --
        if let Some(py) = &kind.python {
            let interp = self.python.interpreter(py.interpreter);
            let scripts = self.python.scripts(py.family);

            let mut n = sample_count(py.procs_per_job * kind_factor, rng);
            if first_job_of_kind {
                n = n.max(1);
            }
            for _ in 0..n {
                // Rotate through the family per process so every script —
                // and thus every imported package — is exercised at any
                // scale (a job's many interpreter processes map to the
                // sweep of inputs the user's workflow runs through).
                let cursor = script_cursor.entry(py.family).or_insert(0);
                let script = &scripts[*cursor % scripts.len()];
                *cursor += 1;
                let ts = job_start + 30 + rng.random_range(0..3600u64);
                let pid = pids.next(host);
                let maps = self.python.interpreter_maps(interp, script);

                stats.processes += 1;
                stats.python_processes += 1;
                f(ProcessContext {
                    user: user.to_string(),
                    uid,
                    gid: uid,
                    job_id,
                    step_id,
                    slurm_procid: 0,
                    host: host.to_string(),
                    pid,
                    ppid: job_pid_root,
                    timestamp: ts,
                    exe_path: interp.path.to_string(),
                    exe: Arc::clone(&interp.file),
                    loaded_objects: Arc::clone(&interp.objects),
                    loaded_modules: Arc::new(Vec::new()),
                    memory_maps: Arc::new(maps),
                    python: Some(PythonContext {
                        script_path: script.path.clone(),
                        script: Arc::new((*script.file).clone()),
                    }),
                    in_container: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            scale: 0.002,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn stats_add_up() {
        let campaign = Campaign::new(small_cfg());
        let mut counted = 0u64;
        let stats = campaign.run(|_| counted += 1);
        assert_eq!(
            counted,
            stats.processes + stats.nonzero_rank_processes,
            "callback must see rank-0 and extra-rank observations"
        );
        assert_eq!(
            stats.processes,
            stats.system_processes + stats.user_processes + stats.python_processes
        );
        assert!(stats.jobs > 0);
    }

    #[test]
    fn population_shape_matches_table_2_proportions() {
        let campaign = Campaign::new(CampaignConfig {
            scale: 0.01,
            ..CampaignConfig::default()
        });
        let stats = campaign.run(|_| {});
        // At scale s the totals should approximate s × paper totals.
        let expect_procs = 2_350_217.0 * 0.01; // 2,317,859 + 9,042 + 23,316
        let got = stats.processes as f64;
        assert!(
            (got - expect_procs).abs() / expect_procs < 0.15,
            "got {got}, expected ≈{expect_procs}"
        );
        assert!(stats.system_processes > stats.user_processes);
        assert!(stats.python_processes > stats.user_processes / 4);
    }

    #[test]
    fn exec_replacements_share_pid_and_timestamp() {
        let campaign = Campaign::new(small_cfg());
        let mut by_key: HashMap<(u64, String, u32, u64), Vec<String>> = HashMap::new();
        let stats = campaign.run(|ctx| {
            by_key
                .entry((ctx.job_id, ctx.host.clone(), ctx.pid, ctx.timestamp))
                .or_default()
                .push(ctx.exe_path.clone());
        });
        assert!(stats.exec_replacements > 0, "campaign must exercise exec()");
        let collisions = by_key.values().filter(|v| v.len() > 1).count();
        assert!(collisions > 0, "exec pairs must collide on (pid, time)");
        // At least one collision must be bash → srun.
        assert!(by_key.values().any(|v| {
            v.len() > 1
                && v.iter().any(|e| e.contains("bash"))
                && v.iter().any(|e| e.contains("srun"))
        }));
    }

    #[test]
    fn unknown_group_emitted_with_nondescript_path() {
        let campaign = Campaign::new(small_cfg());
        let mut unknown_paths = Vec::new();
        campaign.run(|ctx| {
            if ctx.exe_path.ends_with("/a.out") {
                unknown_paths.push(ctx.exe_path.clone());
            }
        });
        assert!(
            !unknown_paths.is_empty(),
            "UNKNOWN must appear even at small scale"
        );
    }

    #[test]
    fn python_contexts_carry_scripts() {
        let campaign = Campaign::new(small_cfg());
        let mut py = 0u64;
        campaign.run(|ctx| {
            if let Some(p) = &ctx.python {
                py += 1;
                assert!(p.script_path.ends_with(".py"));
                assert!(!p.script.data.is_empty());
                assert!(ctx.exe_path.contains("python"));
            }
        });
        assert!(py > 0);
    }

    #[test]
    fn variants_cycle_from_zero() {
        let campaign = Campaign::new(small_cfg());
        let mut icon_paths = std::collections::HashSet::new();
        campaign.run(|ctx| {
            if ctx.exe_path.contains("icon-model/build_") {
                icon_paths.insert(ctx.exe_path.clone());
            }
        });
        // Low-numbered build dirs must be present (round-robin from 0).
        assert!(icon_paths.iter().any(|p| p.contains("/build_0/")));
        assert!(icon_paths.len() > 3);
    }

    #[test]
    fn all_twelve_users_appear() {
        let campaign = Campaign::new(small_cfg());
        let mut users = std::collections::HashSet::new();
        campaign.run(|ctx| {
            users.insert(ctx.user.clone());
        });
        assert_eq!(users.len(), 12);
    }
}
