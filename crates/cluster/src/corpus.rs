//! The user-application corpus: synthetic binary *families*.
//!
//! Each [`GroupSpec`] describes one build lineage of one software package
//! — e.g. the GCC-built icon executables, or the LLD-built GROMACS — with
//! its compiler identification strings (Table 6 / Fig. 4), shared-library
//! labels (Fig. 2 / Fig. 5), module environment, and a number of binary
//! *variants* (the paper's "unique FILE_H" column, Table 5).
//!
//! Variants are generated with **controlled byte-level divergence**: the
//! `.text` payload of variant `v` re-rolls a fraction of the base blocks
//! that grows with `v`, so fuzzy-hash similarity to variant 0 decays
//! gradually — exactly the structure Table 7's similarity search reveals.
//! Symbol tables change every 4 variants, module lists every 8, and the
//! loaded-object list alternates between a full and a reduced set every
//! 16, reproducing the mixed 100/57-style column values of Table 7.
//!
//! The `UNKNOWN` group *copies* the first variants of the GCC icon lineage
//! byte-for-byte under a nondescript `/scratch/.../a.out` path — the
//! planted ground truth that the similarity-search experiment recovers.

use crate::libcatalog::LibraryCatalog;
use siren_elf::{Binding, ElfBuilder, ElfType, SymType};
use std::collections::HashMap;
use std::sync::Arc;

/// Compiler identification strings as they appear in `.comment`.
pub mod compilers {
    /// SUSE system GCC (LUMI's OS toolchain).
    pub const GCC_SUSE: &str = "GCC: (SUSE Linux) 13.2.1 20240206";
    /// AMD ROCm LLVM linker.
    pub const LLD_AMD: &str = "LLD 17.0.0 [AMD ROCm 5.6.1]";
    /// Cray clang (CCE).
    pub const CLANG_CRAY: &str = "clang version 16.0.1 (Cray Inc.)";
    /// AMD clang (ROCm).
    pub const CLANG_AMD: &str = "AMD clang version 16.0.0 (roc-5.6.1)";
    /// Red Hat GCC (conda base images).
    pub const GCC_REDHAT: &str = "GCC: (GNU) 8.5.0 20210514 (Red Hat 8.5.0-18)";
    /// conda-forge GCC.
    pub const GCC_CONDA: &str = "GCC: (conda-forge gcc 12.3.0-3) 12.3.0";
    /// HPE GCC build.
    pub const GCC_HPE: &str = "GCC: (HPE) 12.2.0 20230601";
    /// Rust compiler (novel-toolchain case of §4.3).
    pub const RUSTC: &str = "rustc version 1.74.0 (79e9716c9 2023-11-13)";
}

use compilers::*;

/// Static description of one build lineage.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Unique group identifier (referenced by job templates).
    pub group_id: &'static str,
    /// Software label the analysis should derive (Table 5). `UNKNOWN`
    /// binaries get a nondescript path that matches no label rule.
    pub software: &'static str,
    /// `.comment` strings in every variant of this lineage.
    pub compilers: &'static [&'static str],
    /// Number of distinct binaries (unique `FILE_H`).
    pub variants: usize,
    /// Figure-2 library labels loaded by these processes (full set).
    pub lib_labels: &'static [&'static str],
    /// Optional reduced library set used by some variants (drives the
    /// multiple-OBJECTS_H structure).
    pub alt_lib_labels: Option<&'static [&'static str]>,
    /// Module environment (`LOADEDMODULES` base list).
    pub modules: &'static [&'static str],
    /// Executable file name.
    pub exe_name: &'static str,
    /// Directory template; `{user}` and `{variant}` are substituted.
    pub exe_dir: &'static str,
    /// Deterministic generation seed.
    pub seed: u64,
    /// `.text` payload size in bytes.
    pub text_size: usize,
    /// When set, variants are byte-copies of another group's first
    /// variants (the UNKNOWN construction).
    pub copy_of: Option<&'static str>,
    /// Symbol-name theme for the synthetic symbol table.
    pub symbol_theme: &'static str,
}

const LAMMPS_LIBS: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "fabric-cray",
    "pmi-cray",
    "rocm",
    "numa",
    "drm",
    "amdgpu-drm",
    "libsci-cray",
    "rocm-blas",
    "rocsolver-rocm",
    "rocsparse-rocm",
    "fft-cray",
    "rocm-fft",
    "rocfft-rocm-fft",
    "MIOpen-rocm",
    "rocm-torch",
    "numa-rocm-torch",
    "torch-tykky",
    "numa-torch-tykky",
];
const GROMACS_LIBS: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "fabric-cray",
    "pmi-cray",
    "rocm",
    "numa",
    "drm",
    "amdgpu-drm",
    "fortran",
    "gromacs",
    "boost",
];
const MINICONDA_LIBS: &[&str] = &["siren", "pthread"];
const JANKO_LIBS: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "fabric-cray",
    "pmi-cray",
    "fortran",
    "libsci-cray",
    "numa-spack",
    "spack",
    "blas-spack",
    "rocsolver-spack",
    "rocsparse-spack",
    "drm-spack",
    "amdgpu-drm-spack",
];
const ICON_LIBS: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "fabric-cray",
    "pmi-cray",
    "rocm",
    "numa",
    "drm",
    "amdgpu-drm",
    "fortran",
    "libsci-cray",
    "craymath-cray",
    "netcdf-cray",
    "amdgpu-cray",
    "openacc-cray",
    "climatedt",
    "climatedt-yaml",
    "hdf5-cray",
];
/// Reduced icon set (variants that skip GPU + climatedt libraries) —
/// produces the second OBJECTS_H and the 57-similarity OB column value.
const ICON_LIBS_REDUCED: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "fabric-cray",
    "pmi-cray",
    "fortran",
    "libsci-cray",
    "craymath-cray",
    "netcdf-cray",
    "hdf5-cray",
];
const AMBER_LIBS: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "fabric-cray",
    "pmi-cray",
    "rocm",
    "numa",
    "drm",
    "amdgpu-drm",
    "fortran",
    "libsci-cray",
    "rocm-blas",
    "rocsolver-rocm",
    "rocsparse-rocm",
    "fft-cray",
    "rocm-fft",
    "rocfft-rocm-fft",
    "netcdf-cray",
    "cuda-amber",
    "amber",
    "netcdf-parallel-cray",
    "hdf5-parallel-cray",
    "hdf5-fortran-parallel-cray",
];
const GZIP_LIBS: &[&str] = &["siren"];
const ALEXANDRIA_LIBS: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "fabric-cray",
    "pmi-cray",
    "fortran",
    "craymath-cray",
];
const RADRAD_LIBS: &[&str] = &[
    "siren",
    "pthread",
    "cray",
    "quadmath-cray",
    "rocm",
    "numa",
    "drm",
    "amdgpu-drm",
    "fortran",
    "libsci-cray",
    "rocm-blas",
    "rocsolver-rocm",
    "rocsparse-rocm",
    "craymath-cray",
    "amdgpu-cray",
    "openacc-cray",
];

/// All build lineages in the simulated deployment. Allocation of
/// processes/jobs to users lives in `users.rs`; this table is the "what
/// exists on disk" side.
pub const GROUPS: &[GroupSpec] = &[
    GroupSpec {
        group_id: "lammps-gcc",
        software: "LAMMPS",
        compilers: &[GCC_SUSE],
        variants: 3,
        lib_labels: LAMMPS_LIBS,
        alt_lib_labels: None,
        modules: &["PrgEnv-gnu/8.4.0", "rocm/5.6.1", "cray-fftw/3.3.10.5"],
        exe_name: "lmp",
        exe_dir: "/users/{user}/lammps/build",
        seed: 0x11AA,
        text_size: 28_000,
        copy_of: None,
        symbol_theme: "pair_lj",
    },
    GroupSpec {
        group_id: "lammps-lld",
        software: "LAMMPS",
        compilers: &[LLD_AMD],
        variants: 2,
        lib_labels: LAMMPS_LIBS,
        alt_lib_labels: None,
        modules: &["PrgEnv-amd/8.4.0", "rocm/5.6.1", "cray-fftw/3.3.10.5"],
        exe_name: "lmp_gpu",
        exe_dir: "/users/{user}/lammps/build-gpu",
        seed: 0x11AB,
        text_size: 30_000,
        copy_of: None,
        symbol_theme: "pair_gpu",
    },
    GroupSpec {
        group_id: "gromacs",
        software: "GROMACS",
        compilers: &[LLD_AMD],
        variants: 1,
        lib_labels: GROMACS_LIBS,
        alt_lib_labels: None,
        modules: &["PrgEnv-amd/8.4.0", "rocm/5.6.1", "gromacs/2024.1"],
        exe_name: "gmx_mpi",
        exe_dir: "/users/{user}/gromacs-2024/bin",
        seed: 0x22AA,
        text_size: 32_000,
        copy_of: None,
        symbol_theme: "gmx_mdrun",
    },
    GroupSpec {
        group_id: "miniconda",
        software: "miniconda",
        compilers: &[GCC_REDHAT, GCC_CONDA],
        variants: 4,
        lib_labels: MINICONDA_LIBS,
        alt_lib_labels: None,
        modules: &[],
        exe_name: "python3.11",
        exe_dir: "/users/{user}/miniconda3/envs/env{variant}/bin",
        seed: 0x33AA,
        text_size: 24_000,
        copy_of: None,
        symbol_theme: "PyObject",
    },
    GroupSpec {
        group_id: "miniconda-rustc",
        software: "miniconda",
        compilers: &[GCC_REDHAT, RUSTC],
        variants: 1,
        lib_labels: MINICONDA_LIBS,
        alt_lib_labels: None,
        modules: &[],
        exe_name: "uv",
        exe_dir: "/users/{user}/miniconda3/bin",
        seed: 0x33AB,
        text_size: 20_000,
        copy_of: None,
        symbol_theme: "rust_alloc",
    },
    GroupSpec {
        group_id: "janko",
        software: "janko",
        compilers: &[GCC_SUSE, GCC_HPE],
        variants: 2,
        lib_labels: JANKO_LIBS,
        alt_lib_labels: None,
        modules: &["PrgEnv-gnu/8.4.0", "spack/23.09"],
        exe_name: "janko",
        exe_dir: "/users/{user}/janko/bin",
        seed: 0x44AA,
        text_size: 18_000,
        copy_of: None,
        symbol_theme: "janko_solver",
    },
    GroupSpec {
        group_id: "icon-gcc",
        software: "icon",
        compilers: &[GCC_SUSE],
        variants: 130,
        lib_labels: ICON_LIBS,
        alt_lib_labels: Some(ICON_LIBS_REDUCED),
        modules: &[
            "PrgEnv-gnu/8.4.0",
            "cray-hdf5/1.12.2.7",
            "cray-netcdf/4.9.0.7",
            "climatedt/1.4",
        ],
        exe_name: "icon",
        exe_dir: "/users/{user}/icon-model/build_{variant}/bin",
        seed: 0x55AA,
        text_size: 26_000,
        copy_of: None,
        symbol_theme: "mo_atmo",
    },
    GroupSpec {
        group_id: "icon-cray",
        software: "icon",
        compilers: &[GCC_SUSE, CLANG_CRAY],
        variants: 32,
        lib_labels: ICON_LIBS,
        alt_lib_labels: Some(ICON_LIBS_REDUCED),
        modules: &[
            "PrgEnv-cray/8.4.0",
            "cce/16.0.1",
            "cray-hdf5/1.12.2.7",
            "cray-netcdf/4.9.0.7",
            "climatedt/1.4",
        ],
        exe_name: "icon_atm",
        exe_dir: "/users/{user}/icon-model/build-cce_{variant}/bin",
        seed: 0x55AB,
        text_size: 26_000,
        copy_of: None,
        symbol_theme: "mo_atmo",
    },
    GroupSpec {
        group_id: "icon-triple",
        software: "icon",
        compilers: &[GCC_SUSE, CLANG_CRAY, CLANG_AMD],
        variants: 13,
        lib_labels: ICON_LIBS,
        alt_lib_labels: Some(ICON_LIBS_REDUCED),
        modules: &[
            "PrgEnv-cray/8.4.0",
            "cce/16.0.1",
            "rocm/5.6.1",
            "cray-hdf5/1.12.2.7",
            "cray-netcdf/4.9.0.7",
            "climatedt/1.4",
        ],
        exe_name: "icon_ocean",
        exe_dir: "/users/{user}/icon-model/build-gpu_{variant}/bin",
        seed: 0x55AC,
        text_size: 26_000,
        copy_of: None,
        symbol_theme: "mo_ocean",
    },
    GroupSpec {
        group_id: "unknown",
        software: "UNKNOWN",
        compilers: &[GCC_SUSE],
        variants: 7,
        lib_labels: ICON_LIBS,
        alt_lib_labels: Some(ICON_LIBS_REDUCED),
        modules: &[
            "PrgEnv-gnu/8.4.0",
            "cray-hdf5/1.12.2.7",
            "cray-netcdf/4.9.0.7",
            "climatedt/1.4",
        ],
        exe_name: "a.out",
        exe_dir: "/scratch/project_462000123/run_{variant}",
        seed: 0x55AA, // irrelevant: bytes are copied from icon-gcc
        text_size: 26_000,
        copy_of: Some("icon-gcc"),
        symbol_theme: "mo_atmo",
    },
    GroupSpec {
        group_id: "amber",
        software: "amber",
        compilers: &[GCC_SUSE, CLANG_AMD],
        variants: 2,
        lib_labels: AMBER_LIBS,
        alt_lib_labels: None,
        modules: &["PrgEnv-gnu/8.4.0", "rocm/5.6.1", "amber/22"],
        exe_name: "pmemd.hip",
        exe_dir: "/users/{user}/amber22/bin",
        seed: 0x66AA,
        text_size: 30_000,
        copy_of: None,
        symbol_theme: "pme_force",
    },
    GroupSpec {
        group_id: "gzip",
        software: "gzip",
        compilers: &[LLD_AMD],
        variants: 1,
        lib_labels: GZIP_LIBS,
        alt_lib_labels: None,
        modules: &[],
        exe_name: "gzip",
        exe_dir: "/users/{user}/tools/gzip-1.13/bin",
        seed: 0x77AA,
        text_size: 12_000,
        copy_of: None,
        symbol_theme: "deflate",
    },
    GroupSpec {
        group_id: "alexandria",
        software: "alexandria",
        compilers: &[GCC_SUSE],
        variants: 1,
        lib_labels: ALEXANDRIA_LIBS,
        alt_lib_labels: None,
        modules: &["PrgEnv-gnu/8.4.0"],
        exe_name: "alexandria",
        exe_dir: "/users/{user}/alexandria/bin",
        seed: 0x88AA,
        text_size: 16_000,
        copy_of: None,
        symbol_theme: "alex_train",
    },
    GroupSpec {
        group_id: "radrad",
        software: "RadRad",
        compilers: &[GCC_SUSE, CLANG_CRAY],
        variants: 2,
        lib_labels: RADRAD_LIBS,
        alt_lib_labels: None,
        modules: &["PrgEnv-cray/8.4.0", "cce/16.0.1", "rocm/5.6.1"],
        exe_name: "RadRad",
        exe_dir: "/users/{user}/RadRad/bin",
        seed: 0x99AA,
        text_size: 15_000,
        copy_of: None,
        symbol_theme: "rad_transfer",
    },
];

/// One generated binary variant (content shared across users; paths are
/// instantiated per user by the scheduler).
#[derive(Debug, Clone)]
pub struct VariantBinary {
    /// Binary image bytes.
    pub content: Arc<Vec<u8>>,
    /// Loaded-object paths (resolved, with `siren.so` + base libs).
    pub objects: Arc<Vec<String>>,
    /// `LOADEDMODULES` list for processes running this variant.
    pub modules: Arc<Vec<String>>,
}

/// A lineage with its generated variants.
#[derive(Debug)]
pub struct GroupRuntime {
    /// The static spec.
    pub spec: &'static GroupSpec,
    /// Generated variants, index = variant number.
    pub variants: Vec<VariantBinary>,
}

impl GroupRuntime {
    /// Directory + file name for `(user, variant)`.
    pub fn exe_path(&self, user: &str, variant: usize) -> String {
        let dir = self
            .spec
            .exe_dir
            .replace("{user}", user)
            .replace("{variant}", &variant.to_string());
        format!("{dir}/{}", self.spec.exe_name)
    }
}

/// The whole corpus.
#[derive(Debug)]
pub struct ApplicationCorpus {
    groups: HashMap<&'static str, GroupRuntime>,
}

/// Deterministic block-based payload with per-variant divergence.
fn variant_text(seed: u64, size: usize, variant: usize, total_variants: usize) -> Vec<u8> {
    const BLOCK: usize = 256;
    let blocks = size.div_ceil(BLOCK);
    // Fraction of blocks re-rolled grows sub-linearly so low-numbered
    // variants stay close to the baseline (Table 7's graded decay).
    let frac = if variant == 0 || total_variants <= 1 {
        0.0
    } else {
        (variant as f64 / total_variants as f64).sqrt()
    };
    let rerolled = (frac * blocks as f64).round() as usize;

    let mut out = Vec::with_capacity(blocks * BLOCK);
    for b in 0..blocks {
        let block_seed = if b < rerolled {
            seed ^ (variant as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ b as u64
        } else {
            seed ^ (b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let mut x = block_seed | 1;
        for _ in 0..BLOCK {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.push((x >> 32) as u8);
        }
    }
    out.truncate(size);
    out
}

/// Synthetic global symbol names for a variant. The set changes every 4
/// variants (symbol churn is slower than code churn).
fn variant_symbols(theme: &str, variant: usize) -> Vec<String> {
    let generation = variant / 4;
    let mut syms = Vec::with_capacity(44);
    for i in 0..40 {
        syms.push(format!("{theme}_{i:02}"));
    }
    // Each generation renames a few interfaces and adds one.
    for g in 0..generation.min(8) {
        syms[g * 3 % 40] = format!("{theme}_v{generation}_{g}");
    }
    if generation > 0 {
        syms.push(format!("{theme}_init_v{generation}"));
    }
    syms.push("main".to_string());
    syms
}

/// `.rodata` literal pool: stable domain strings + a drifting version
/// banner (drives `Strings_H` similarity staying high but not perfect).
fn variant_rodata(spec: &GroupSpec, variant: usize) -> Vec<u8> {
    let mut s = String::with_capacity(2048);
    s.push_str(&format!(
        "{} release 2.{}.{}\0",
        spec.software,
        variant / 10,
        variant % 10
    ));
    s.push_str("usage: %s [options] input\0--help display this help\0");
    for i in 0..24 {
        s.push_str(&format!(
            "{}::{}_kernel_{i} elapsed %f s\0",
            spec.symbol_theme, spec.software
        ));
    }
    s.push_str("error: allocation failed at %s:%d\0MPI_Init\0MPI_Finalize\0");
    s.into_bytes()
}

/// Modules every Cray PE job loads regardless of application (the bulk of
/// a real `LOADEDMODULES` value — and what makes `MO_H` comparisons
/// meaningful: fuzzy hashes of longer lists carry more signal).
pub const BASE_MODULES: &[&str] = &[
    "craype-x86-rome",
    "libfabric/1.15.2.0",
    "craype-network-ofi",
    "xpmem/2.6.2-2.5_2.38",
    "craype/2.7.23",
    "cray-dsmml/0.2.2",
    "cray-mpich/8.1.27",
    "cray-libsci/23.09.1.1",
    "perftools-base/23.09.0",
    "cpe/23.09",
    "lumi-tools/23.03",
    "init-lumi/0.2",
];

fn modules_for_variant(spec: &GroupSpec, variant: usize) -> Vec<String> {
    // Module environments drift every 8 variants (a toolchain upgrade):
    // one module gets a patch-version bump per generation, so the list
    // stays highly similar — Table 7's MO_H column decays gently
    // (100 → 96 → 94 …), it does not collapse.
    let generation = variant / 8;
    if spec.modules.is_empty() {
        // Software without a module environment (conda, user gzip).
        return Vec::new();
    }
    let all: Vec<&str> = BASE_MODULES
        .iter()
        .chain(spec.modules.iter())
        .copied()
        .collect();
    let n = all.len();
    all.iter()
        .enumerate()
        .map(|(i, m)| {
            let bumps = if generation == 0 {
                0
            } else {
                (generation + n - 1 - i) / n
            };
            if bumps == 0 {
                m.to_string()
            } else {
                format!("{m}.{bumps}")
            }
        })
        .collect()
}

fn objects_for_variant(spec: &GroupSpec, variant: usize) -> Vec<String> {
    let use_alt = spec.alt_lib_labels.is_some() && (variant / 16) % 2 == 1;
    let labels = if use_alt {
        spec.alt_lib_labels.unwrap()
    } else {
        spec.lib_labels
    };
    LibraryCatalog::resolve_with_base(labels)
}

fn build_variant(spec: &GroupSpec, variant: usize) -> VariantBinary {
    let text = variant_text(spec.seed, spec.text_size, variant, spec.variants);
    let symbols = variant_symbols(spec.symbol_theme, variant);
    let rodata = variant_rodata(spec, variant);
    let objects = objects_for_variant(spec, variant);

    let mut builder = ElfBuilder::new(ElfType::Dyn).text(&text).rodata(&rodata);
    for c in spec.compilers {
        builder = builder.comment(c);
    }
    for (i, sym) in symbols.iter().enumerate() {
        builder = builder.symbol(
            sym,
            0x1000 + (i as u64) * 0x40,
            0x40,
            Binding::Global,
            SymType::Func,
        );
    }
    // A couple of local symbols (must not appear in the global extraction).
    builder = builder.symbol("static_helper", 0x9000, 16, Binding::Local, SymType::Func);
    for obj in objects.iter().skip(1).take(8) {
        // DT_NEEDED uses sonames, not paths.
        if let Some(name) = obj.rsplit('/').next() {
            builder = builder.needed(name);
        }
    }

    VariantBinary {
        content: Arc::new(builder.build()),
        objects: Arc::new(objects),
        modules: Arc::new(modules_for_variant(spec, variant)),
    }
}

impl ApplicationCorpus {
    /// Generate every lineage. Content depends only on the static specs —
    /// binaries on disk do not change with the campaign seed (users built
    /// them before the observation window).
    pub fn build() -> Self {
        let mut groups: HashMap<&'static str, GroupRuntime> = HashMap::new();

        // First pass: everything that is not a copy.
        for spec in GROUPS.iter().filter(|s| s.copy_of.is_none()) {
            let variants = (0..spec.variants).map(|v| build_variant(spec, v)).collect();
            groups.insert(spec.group_id, GroupRuntime { spec, variants });
        }
        // Second pass: copies (UNKNOWN = byte-identical icon binaries).
        for spec in GROUPS.iter().filter(|s| s.copy_of.is_some()) {
            let source = groups
                .get(spec.copy_of.unwrap())
                .expect("copy_of target must be defined before the copying group");
            let variants: Vec<VariantBinary> = source
                .variants
                .iter()
                .take(spec.variants)
                .cloned()
                .collect();
            assert_eq!(
                variants.len(),
                spec.variants,
                "copy source has too few variants"
            );
            groups.insert(spec.group_id, GroupRuntime { spec, variants });
        }

        Self { groups }
    }

    /// Look up a lineage by id.
    pub fn group(&self, group_id: &str) -> &GroupRuntime {
        self.groups
            .get(group_id)
            .unwrap_or_else(|| panic!("unknown group {group_id}"))
    }

    /// All lineages (deterministic order by group id).
    pub fn groups(&self) -> Vec<&GroupRuntime> {
        let mut v: Vec<&GroupRuntime> = self.groups.values().collect();
        v.sort_by_key(|g| g.spec.group_id);
        v
    }
}

/// Softwares in Table 5 with their expected unique-binary counts, used by
/// tests and the experiment harness.
pub struct SoftwareGroup;

impl SoftwareGroup {
    /// Sum of variants per software label across lineages.
    pub fn expected_unique_binaries() -> HashMap<&'static str, usize> {
        let mut m = HashMap::new();
        for g in GROUPS {
            *m.entry(g.software).or_insert(0) += g.variants;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_all_groups() {
        let corpus = ApplicationCorpus::build();
        assert_eq!(corpus.groups().len(), GROUPS.len());
        for g in corpus.groups() {
            assert_eq!(g.variants.len(), g.spec.variants, "{}", g.spec.group_id);
        }
    }

    #[test]
    fn icon_family_sums_to_175_unique_binaries() {
        let m = SoftwareGroup::expected_unique_binaries();
        assert_eq!(m["icon"], 175); // 130 + 32 + 13, Table 5
        assert_eq!(m["UNKNOWN"], 7);
        assert_eq!(m["LAMMPS"], 5);
        assert_eq!(m["GROMACS"], 1);
        assert_eq!(m["miniconda"], 5);
    }

    #[test]
    fn unknown_copies_icon_bytes_exactly() {
        let corpus = ApplicationCorpus::build();
        let icon = corpus.group("icon-gcc");
        let unknown = corpus.group("unknown");
        for v in 0..unknown.spec.variants {
            assert_eq!(
                icon.variants[v].content, unknown.variants[v].content,
                "variant {v} must be byte-identical"
            );
        }
    }

    #[test]
    fn unknown_path_is_nondescript() {
        let corpus = ApplicationCorpus::build();
        let path = corpus.group("unknown").exe_path("user_4", 0);
        assert!(path.ends_with("/a.out"));
        assert!(!path.contains("icon"));
    }

    #[test]
    fn variants_diverge_gradually() {
        let corpus = ApplicationCorpus::build();
        let icon = corpus.group("icon-gcc");
        let base = &icon.variants[0].content;
        let diff = |a: &[u8], b: &[u8]| -> usize {
            a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() + a.len().abs_diff(b.len())
        };
        let d1 = diff(base, &icon.variants[1].content);
        let d10 = diff(base, &icon.variants[10].content);
        let d100 = diff(base, &icon.variants[100].content);
        assert!(d1 > 0, "variant 1 must differ");
        assert!(d1 < d10, "divergence must grow: {d1} !< {d10}");
        assert!(d10 < d100, "divergence must keep growing: {d10} !< {d100}");
    }

    #[test]
    fn variant_binaries_parse_and_carry_compilers() {
        let corpus = ApplicationCorpus::build();
        let amber = corpus.group("amber");
        let parsed = siren_elf::ElfFile::parse(&amber.variants[0].content).unwrap();
        let comments = parsed.comment_strings();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].contains("SUSE"));
        assert!(comments[1].contains("AMD clang"));
        let globals = parsed.global_symbols();
        assert!(globals.iter().any(|s| s.name == "main"));
        assert!(globals.iter().any(|s| s.name.starts_with("pme_force")));
        assert!(!globals.iter().any(|s| s.name == "static_helper"));
    }

    #[test]
    fn symbol_sets_change_every_four_variants() {
        let a = variant_symbols("mo_atmo", 0);
        let b = variant_symbols("mo_atmo", 3);
        let c = variant_symbols("mo_atmo", 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn module_lists_drift_every_eight_variants() {
        let spec = &GROUPS.iter().find(|g| g.group_id == "icon-gcc").unwrap();
        assert_eq!(modules_for_variant(spec, 0), modules_for_variant(spec, 7));
        assert_ne!(modules_for_variant(spec, 0), modules_for_variant(spec, 8));
    }

    #[test]
    fn object_sets_alternate_with_alt_labels() {
        let spec = &GROUPS.iter().find(|g| g.group_id == "icon-gcc").unwrap();
        let full = objects_for_variant(spec, 0);
        let alt = objects_for_variant(spec, 16);
        assert_ne!(full, alt);
        assert!(full.len() > alt.len());
        assert_eq!(objects_for_variant(spec, 32), full);
        // Groups without alt labels never alternate.
        let gz = &GROUPS.iter().find(|g| g.group_id == "gzip").unwrap();
        assert_eq!(objects_for_variant(gz, 0), objects_for_variant(gz, 16));
    }

    #[test]
    fn exe_paths_substitute_user_and_variant() {
        let corpus = ApplicationCorpus::build();
        let icon = corpus.group("icon-gcc");
        assert_eq!(
            icon.exe_path("user_4", 17),
            "/users/user_4/icon-model/build_17/bin/icon"
        );
        let gmx = corpus.group("gromacs");
        assert_eq!(
            gmx.exe_path("user_8", 0),
            "/users/user_8/gromacs-2024/bin/gmx_mpi"
        );
    }
}
