//! Multi-cluster campaign fleets.
//!
//! The paper observed one system (LUMI); a production SIREN deployment
//! would aggregate collection from several clusters into one ingest
//! service. A [`FleetConfig`] derives `clusters` independent
//! [`CampaignConfig`]s from a base configuration, giving each cluster
//!
//! * a disjoint **job-id namespace** (`job_id_base` strided far apart),
//! * a disjoint **host namespace** (`host_base` strided so node names
//!   never collide), and
//! * a decorrelated **seed** (so clusters do not emit identical
//!   workloads in lockstep).
//!
//! Everything else — user population, corpora, scale — is shared, which
//! is what makes cross-cluster analysis meaningful: the same software
//! appears under different job/host identities.

use crate::campaign::CampaignConfig;

/// Derives per-cluster campaign configurations from a base config.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of independent clusters.
    pub clusters: usize,
    /// Template configuration (cluster 0 uses it almost verbatim).
    pub base: CampaignConfig,
    /// Distance between consecutive clusters' `job_id_base`s. Must
    /// exceed any cluster's campaign job count.
    pub job_stride: u64,
    /// Distance between consecutive clusters' `host_base`s. Must be at
    /// least 512 (a campaign's node-number spread).
    pub host_stride: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            clusters: 2,
            base: CampaignConfig::default(),
            job_stride: 1_000_000,
            host_stride: 10_000,
        }
    }
}

impl FleetConfig {
    /// Fleet of `clusters` clusters over the default base campaign.
    pub fn with_clusters(clusters: usize) -> Self {
        Self {
            clusters,
            ..Self::default()
        }
    }

    /// The derived configuration for cluster `k` (`k < clusters`).
    pub fn campaign_config(&self, k: usize) -> CampaignConfig {
        assert!(k < self.clusters, "cluster index {k} out of range");
        let k64 = k as u64;
        CampaignConfig {
            // Golden-ratio stride decorrelates the RNG streams.
            seed: self
                .base
                .seed
                .wrapping_add(k64.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            job_id_base: self.base.job_id_base + k64 * self.job_stride,
            host_base: self.base.host_base + k as u32 * self.host_stride,
            ..self.base.clone()
        }
    }

    /// All derived configurations.
    pub fn campaign_configs(&self) -> Vec<CampaignConfig> {
        (0..self.clusters)
            .map(|k| self.campaign_config(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;

    #[test]
    fn namespaces_are_disjoint() {
        let fleet = FleetConfig {
            clusters: 3,
            base: CampaignConfig {
                scale: 0.001,
                ..CampaignConfig::default()
            },
            ..FleetConfig::default()
        };
        let mut all_jobs: Vec<std::ops::Range<u64>> = Vec::new();
        let mut all_hosts: Vec<std::ops::Range<u32>> = Vec::new();
        for cfg in fleet.campaign_configs() {
            let campaign = Campaign::new(cfg.clone());
            let mut max_job = cfg.job_id_base;
            campaign.run(|ctx| {
                assert!(ctx.job_id > cfg.job_id_base);
                max_job = max_job.max(ctx.job_id);
                let nid: u32 = ctx.host.trim_start_matches("nid").parse().unwrap();
                assert!((cfg.host_base..cfg.host_base + 512).contains(&nid));
            });
            all_jobs.push(cfg.job_id_base..max_job + 1);
            all_hosts.push(cfg.host_base..cfg.host_base + 512);
        }
        for i in 0..all_jobs.len() {
            for j in 0..i {
                assert!(
                    all_jobs[i].start >= all_jobs[j].end || all_jobs[j].start >= all_jobs[i].end,
                    "job ranges overlap: {:?} vs {:?}",
                    all_jobs[i],
                    all_jobs[j]
                );
                assert!(
                    all_hosts[i].start >= all_hosts[j].end
                        || all_hosts[j].start >= all_hosts[i].end,
                    "host ranges overlap"
                );
            }
        }
    }

    #[test]
    fn clusters_are_decorrelated_but_structurally_alike() {
        let fleet = FleetConfig {
            clusters: 2,
            base: CampaignConfig {
                scale: 0.001,
                ..CampaignConfig::default()
            },
            ..FleetConfig::default()
        };
        let stats: Vec<_> = fleet
            .campaign_configs()
            .into_iter()
            .map(|cfg| Campaign::new(cfg).run(|_| {}))
            .collect();
        // Same structural scale (jobs within a few percent)…
        assert_eq!(
            stats[0].jobs, stats[1].jobs,
            "job counts are scale-determined"
        );
        // …but different draws (process totals differ because the RNG
        // streams are decorrelated).
        assert_ne!(stats[0], stats[1]);
    }
}
