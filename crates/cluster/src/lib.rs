//! # siren-cluster — deterministic HPC workload simulator
//!
//! The paper's evaluation substrate is the LUMI supercomputer: 12 opt-in
//! users, 13,448 Slurm jobs, 2,317,859 processes collected between
//! December 2024 and March 2025. That campaign cannot be re-run, so this
//! crate *synthesizes* it: a seeded, scalable generator that emits the
//! same population structure the paper observed —
//!
//! * 12 users with the exact per-user job / system-process /
//!   user-process / Python-process profile of **Table 2**;
//! * a system-executable image (`/usr/bin/bash`, `srun`, `lua5.3`, `rm`,
//!   …) including the shared-library *variants* behind **Tables 3–4**
//!   (three distinct `bash` library sets, etc.);
//! * a user-application corpus (LAMMPS, GROMACS, miniconda, janko, icon,
//!   amber, gzip, alexandria, RadRad, plus the nondescript `a.out`
//!   UNKNOWN) with per-software compiler combinations (**Table 6 /
//!   Fig. 4**), shared-library sets (**Fig. 2 / Fig. 5**), and
//!   controlled-variation binary *families* — the icon family realizes
//!   the decaying-similarity structure of **Table 7**;
//! * Python interpreters 3.6 / 3.10 / 3.11 with script populations and
//!   imported-package sets (**Table 8 / Fig. 3**);
//! * Slurm-shaped metadata: job ids, step ids, node hostnames, PIDs with
//!   reuse, `exec()` image replacement under an unchanged PID within the
//!   same 1-second timestamp (the §3.1 disambiguation discussion).
//!
//! Binaries are real ELF64 images produced by `siren-elf`'s builder, so
//! everything downstream (fuzzy hashing, `.comment` extraction, symbol
//! extraction) operates on genuine bytes, not mocks.
//!
//! All randomness flows from one seed; `(seed, scale)` fully determines
//! the campaign.

pub mod campaign;
pub mod corpus;
pub mod fleet;
pub mod libcatalog;
pub mod process;
pub mod python;
pub mod scheduler;
pub mod sysimage;
pub mod users;

pub use campaign::{Campaign, CampaignConfig, CampaignStats};
pub use corpus::{ApplicationCorpus, SoftwareGroup, VariantBinary};
pub use fleet::FleetConfig;
pub use libcatalog::{library_path, LibraryCatalog};
pub use process::{FileMeta, ProcessContext, PythonContext, SimFile};
pub use python::PythonEcosystem;
pub use sysimage::SystemImage;
pub use users::{UserProfile, USER_PROFILES};

/// Default campaign start timestamp: 2024-12-11 00:00:00 UTC, the first
/// day of the paper's deployment window.
pub const CAMPAIGN_START: u64 = 1_733_875_200;

/// Default campaign duration in seconds (Dec 11 2024 → Mar 7 2025).
pub const CAMPAIGN_SECONDS: u64 = 86 * 24 * 3600;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_deterministic() {
        let cfg = CampaignConfig {
            seed: 7,
            scale: 0.001,
            ..CampaignConfig::default()
        };
        let collect = |cfg: &CampaignConfig| {
            let mut sig = Vec::new();
            Campaign::new(cfg.clone()).run(|ctx| {
                sig.push((ctx.job_id, ctx.pid, ctx.exe_path.clone(), ctx.timestamp));
            });
            sig
        };
        assert_eq!(collect(&cfg), collect(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let cfg = CampaignConfig {
                seed,
                scale: 0.001,
                ..CampaignConfig::default()
            };
            let mut n_hashes = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            Campaign::new(cfg).run(|ctx| {
                (ctx.job_id, ctx.pid, &ctx.host).hash(&mut n_hashes);
            });
            n_hashes.finish()
        };
        assert_ne!(run(1), run(2));
    }
}
