//! Shared-library catalog: concrete library paths whose *derived labels*
//! (per the Figure 2 substring rules) reproduce the paper's matrix.
//!
//! Each entry pairs a Figure-2 label (e.g. `hdf5-fortran-parallel-cray`)
//! with a realistic LUMI path that derives to exactly that label under
//! `siren_text::SubstringDeriver::paper()`. The Figure-5 rows (which
//! software loads which libraries) are encoded in `corpus.rs` by
//! referencing these labels.

/// `(derived_label, concrete_path)` for every x-axis entry of Figure 2.
pub const LIBRARY_CATALOG: &[(&str, &str)] = &[
    ("siren", "/opt/siren/lib/siren.so"),
    ("pthread", "/lib64/libpthread.so.0"),
    ("cray", "/opt/cray/pe/lib64/libcxi.so.1"),
    ("quadmath-cray", "/opt/cray/pe/gcc-libs/libquadmath.so.0"),
    (
        "fabric-cray",
        "/opt/cray/libfabric/1.15.2.0/lib64/libfabric.so.1",
    ),
    ("pmi-cray", "/opt/cray/pe/pmi/6.1.12/lib/libpmi2.so.0"),
    ("rocm", "/opt/rocm/lib/libhsa-runtime64.so.1"),
    ("numa", "/usr/lib64/libnuma.so.1"),
    ("drm", "/usr/lib64/libdrm.so.2"),
    ("amdgpu-drm", "/usr/lib64/libdrm_amdgpu.so.1"),
    ("fortran", "/usr/lib64/libgfortran.so.5"),
    (
        "libsci-cray",
        "/opt/cray/pe/libsci/23.09/lib/libsci_cray.so.6",
    ),
    ("rocm-blas", "/opt/rocm/lib/librocblas.so.3"),
    ("rocsolver-rocm", "/opt/rocm/lib/librocsolver.so.0"),
    ("rocsparse-rocm", "/opt/rocm/lib/librocsparse.so.0"),
    ("fft-cray", "/opt/cray/pe/fftw/3.3.10/lib/libfftw3.so.3"),
    ("rocm-fft", "/opt/rocm/lib/libhipfft.so.0"),
    ("rocfft-rocm-fft", "/opt/rocm/lib/librocfft.so.0"),
    ("craymath-cray", "/opt/cray/pe/lib64/libcraymath.so.1"),
    ("MIOpen-rocm", "/opt/rocm/lib/libMIOpen.so.1"),
    (
        "gromacs",
        "/users/user_8/gromacs-2024/lib/libgromacs_mpi.so.9",
    ),
    ("boost", "/appl/lumi/lib/libboost_program_options.so.1.82.0"),
    (
        "netcdf-cray",
        "/opt/cray/pe/netcdf/4.9.0/lib/libnetcdf.so.19",
    ),
    (
        "amdgpu-cray",
        "/opt/cray/pe/mpich/8.1.27/gtl/lib/libmpi_gtl_amdgpu.so",
    ),
    ("openacc-cray", "/opt/cray/pe/lib64/libopenacc_cray.so.2"),
    ("rocm-torch", "/appl/pytorch/rocm/lib/libtorch_hip.so"),
    (
        "numa-rocm-torch",
        "/appl/pytorch/rocm/lib/libtorch_cpu_numa.so",
    ),
    ("numa-spack", "/appl/spack/23.09/lib/libnuma_shim.so.1"),
    ("spack", "/appl/spack/23.09/lib/libzstd.so.1"),
    ("blas-spack", "/appl/spack/23.09/lib/libopenblas.so.0"),
    (
        "rocsolver-spack",
        "/appl/spack/23.09/lib/librocsolver_wrap.so",
    ),
    (
        "rocsparse-spack",
        "/appl/spack/23.09/lib/librocsparse_wrap.so",
    ),
    ("drm-spack", "/appl/spack/23.09/lib/libdrm_shim.so.2"),
    (
        "amdgpu-drm-spack",
        "/appl/spack/23.09/lib/libdrm_amdgpu_shim.so.1",
    ),
    (
        "climatedt",
        "/appl/climatedt/1.4/lib/libclimatedt_core.so.1",
    ),
    (
        "climatedt-yaml",
        "/appl/climatedt/1.4/lib/libclimatedt_yaml.so.1",
    ),
    ("hdf5-cray", "/opt/cray/pe/hdf5/1.12.2/lib/libhdf5.so.200"),
    (
        "cuda-amber",
        "/users/user_10/amber22/lib/libcuda_amber_shim.so",
    ),
    ("amber", "/users/user_10/amber22/lib/libamber_tools.so"),
    (
        "netcdf-parallel-cray",
        "/opt/cray/pe/parallel-netcdf/1.12.3/lib/libpnetcdf.so.4",
    ),
    (
        "hdf5-parallel-cray",
        "/opt/cray/pe/hdf5-parallel/1.12.2/lib/libhdf5_parallel.so.200",
    ),
    (
        "hdf5-fortran-parallel-cray",
        "/opt/cray/pe/hdf5-parallel/1.12.2/lib/libhdf5_fortran_parallel.so.200",
    ),
    ("torch-tykky", "/appl/tykky/torch-env/lib/libtorch.so.2"),
    (
        "numa-torch-tykky",
        "/appl/tykky/torch-env/lib/libtorch_numa.so.2",
    ),
];

/// Uninformative base libraries every dynamically linked process loads
/// (these derive to no label and are filtered out by the Fig. 2 pipeline).
pub const BASE_LIBRARIES: &[&str] = &[
    "/lib64/libc.so.6",
    "/lib64/libdl.so.2",
    "/lib64/ld-linux-x86-64.so.2",
];

/// Lookup the concrete path for a Figure-2 label.
///
/// # Panics
/// Panics when the label is not in the catalog — corpus definitions are
/// static data, so a missing label is a programming error caught by tests.
pub fn library_path(label: &str) -> &'static str {
    LIBRARY_CATALOG
        .iter()
        .find(|(l, _)| *l == label)
        .map(|(_, p)| *p)
        .unwrap_or_else(|| panic!("unknown library label {label}"))
}

/// Convenience view over the catalog.
pub struct LibraryCatalog;

impl LibraryCatalog {
    /// All Figure-2 labels, in the figure's x-axis order.
    pub fn labels() -> Vec<&'static str> {
        LIBRARY_CATALOG.iter().map(|(l, _)| *l).collect()
    }

    /// Resolve a list of labels to concrete paths, prepending the
    /// LD_PRELOAD `siren.so` (first, as the dynamic linker loads it
    /// before anything else) and appending the uninformative base set.
    pub fn resolve_with_base(labels: &[&str]) -> Vec<String> {
        let mut out = Vec::with_capacity(labels.len() + 1 + BASE_LIBRARIES.len());
        out.push(library_path("siren").to_string());
        for l in labels {
            if *l != "siren" {
                out.push(library_path(l).to_string());
            }
        }
        for b in BASE_LIBRARIES {
            out.push(b.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_44_entries_like_fig2() {
        assert_eq!(LIBRARY_CATALOG.len(), 44);
    }

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for (l, _) in LIBRARY_CATALOG {
            assert!(seen.insert(l), "duplicate label {l}");
        }
    }

    #[test]
    fn paths_unique() {
        let mut seen = std::collections::HashSet::new();
        for (_, p) in LIBRARY_CATALOG {
            assert!(seen.insert(p), "duplicate path {p}");
        }
    }

    #[test]
    fn resolve_prepends_siren_and_appends_base() {
        let libs = LibraryCatalog::resolve_with_base(&["pthread", "cray"]);
        assert_eq!(libs[0], library_path("siren"));
        assert!(libs.contains(&"/lib64/libpthread.so.0".to_string()));
        assert!(libs.contains(&"/lib64/libc.so.6".to_string()));
    }

    #[test]
    #[should_panic(expected = "unknown library label")]
    fn unknown_label_panics() {
        library_path("not-a-label");
    }
}
