//! The simulated `/proc` view: everything `siren.so` can observe about a
//! process at constructor time.

use std::sync::Arc;

/// Executable (or script) file metadata, mirroring the `stat` fields the
//  collector records (§3.1: inode, size, permissions, owner, timestamps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Inode number.
    pub inode: u64,
    /// File size in bytes.
    pub size: u64,
    /// Permission bits (e.g. 0o755).
    pub mode: u32,
    /// Owning user id.
    pub owner_uid: u32,
    /// Owning group id.
    pub owner_gid: u32,
    /// Access time (UNIX seconds).
    pub atime: u64,
    /// Modification time.
    pub mtime: u64,
    /// Status-change time.
    pub ctime: u64,
}

/// A file in the simulated filesystem: bytes + metadata.
#[derive(Debug, Clone)]
pub struct SimFile {
    /// File contents (shared; many processes execute the same binary).
    pub data: Arc<Vec<u8>>,
    /// Stat metadata.
    pub meta: FileMeta,
}

impl SimFile {
    /// Construct with metadata derived from content and provenance.
    pub fn new(data: Vec<u8>, inode: u64, owner_uid: u32, mtime: u64) -> Self {
        let size = data.len() as u64;
        Self {
            data: Arc::new(data),
            meta: FileMeta {
                inode,
                size,
                mode: 0o755,
                owner_uid,
                owner_gid: owner_uid,
                atime: mtime,
                mtime,
                ctime: mtime,
            },
        }
    }
}

/// Python-specific observation: the input script run by an interpreter
/// process (collected at LAYER=SCRIPT).
#[derive(Debug, Clone)]
pub struct PythonContext {
    /// Path of the Python input script.
    pub script_path: String,
    /// The script file.
    pub script: Arc<SimFile>,
}

/// One process observation: the full simulated `/proc/self` view handed to
/// the collector.
#[derive(Debug, Clone)]
pub struct ProcessContext {
    /// Anonymized user name (`user_<n>`).
    pub user: String,
    /// Numeric uid.
    pub uid: u32,
    /// Numeric gid.
    pub gid: u32,
    /// `SLURM_JOB_ID`.
    pub job_id: u64,
    /// `SLURM_STEP_ID`.
    pub step_id: u32,
    /// `SLURM_PROCID` — the collector only records rank 0 (§3.1,
    /// "Selective Data Collection").
    pub slurm_procid: u32,
    /// Node hostname.
    pub host: String,
    /// Process id (subject to reuse and `exec()` retention).
    pub pid: u32,
    /// Parent process id.
    pub ppid: u32,
    /// Observation timestamp (1-second granularity, like UNIX time).
    pub timestamp: u64,
    /// Path of `/proc/self/exe`.
    pub exe_path: String,
    /// The executable file.
    pub exe: Arc<SimFile>,
    /// Loaded shared objects (what `dl_iterate_phdr` would report).
    pub loaded_objects: Arc<Vec<String>>,
    /// Loaded modules (the `LOADEDMODULES` environment variable, split).
    pub loaded_modules: Arc<Vec<String>>,
    /// Memory-mapped file paths (what parsing `/proc/self/maps` yields).
    pub memory_maps: Arc<Vec<String>>,
    /// Present when this process is a Python interpreter with an input
    /// script.
    pub python: Option<PythonContext>,
    /// True when the process runs inside a container. The LD_PRELOAD
    /// variable propagates into the container, but the directory holding
    /// `siren.so` is not mounted there, so the collection library never
    /// loads — the paper's stated limitation (§3.1), modeled explicitly.
    pub in_container: bool,
}

impl ProcessContext {
    /// The `LOADEDMODULES` environment value (colon-separated).
    pub fn loadedmodules_env(&self) -> String {
        self.loaded_modules.join(":")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simfile_meta_derived_from_content() {
        let f = SimFile::new(vec![1, 2, 3, 4], 42, 1001, 99);
        assert_eq!(f.meta.size, 4);
        assert_eq!(f.meta.inode, 42);
        assert_eq!(f.meta.owner_uid, 1001);
        assert_eq!(f.meta.mode, 0o755);
        assert_eq!(f.meta.mtime, 99);
    }

    #[test]
    fn loadedmodules_env_joins_with_colon() {
        let ctx = ProcessContext {
            user: "user_1".into(),
            uid: 1,
            gid: 1,
            job_id: 1,
            step_id: 0,
            slurm_procid: 0,
            host: "nid1".into(),
            pid: 2,
            ppid: 1,
            timestamp: 0,
            exe_path: "/usr/bin/bash".into(),
            exe: Arc::new(SimFile::new(vec![], 1, 0, 0)),
            loaded_objects: Arc::new(vec![]),
            loaded_modules: Arc::new(vec!["PrgEnv-cray/8.4.0".into(), "cce/16.0.1".into()]),
            memory_maps: Arc::new(vec![]),
            python: None,
            in_container: false,
        };
        assert_eq!(ctx.loadedmodules_env(), "PrgEnv-cray/8.4.0:cce/16.0.1");
    }
}
