//! The Python ecosystem: interpreters, script families, imported packages.
//!
//! Python is the paper's special case (§4.4): the process-level view only
//! sees the interpreter binary, so SIREN additionally records the input
//! script (LAYER=SCRIPT) and later extracts imported packages from the
//! interpreter's memory-mapped files. This module synthesizes the three
//! interpreter populations of Table 8 and the package-import structure of
//! Figure 3.

use crate::process::SimFile;
use siren_elf::{Binding, ElfBuilder, ElfType, SymType};
use std::collections::HashMap;
use std::sync::Arc;

/// The 36 packages of Figure 3, in the figure's x-axis order.
pub const PACKAGE_CATALOG: &[&str] = &[
    "heapq",
    "struct",
    "math",
    "posixsubprocess",
    "select",
    "blake2",
    "hashlib",
    "bz2",
    "lzma",
    "zlib",
    "fcntl",
    "array",
    "binascii",
    "bisect",
    "cmath",
    "csv",
    "ctypes",
    "datetime",
    "decimal",
    "grp",
    "json",
    "mmap",
    "mpi4py",
    "multiprocessing",
    "numpy",
    "opcode",
    "pandas",
    "pickle",
    "queue",
    "random",
    "scipy",
    "sha512",
    "socket",
    "unicodedata",
    "zoneinfo",
    "sha3",
];

/// One interpreter installation.
#[derive(Debug, Clone)]
pub struct Interpreter {
    /// Short name as reported in Table 8 (e.g. `python3.10`).
    pub name: &'static str,
    /// Absolute path. All three live in system directories, which is what
    /// makes them category *Python* rather than *user* (§3.1).
    pub path: &'static str,
    /// CPython ABI tag used in extension-module file names.
    pub abi: &'static str,
    /// The interpreter binary.
    pub file: Arc<SimFile>,
    /// Loaded shared objects of the interpreter process itself.
    pub objects: Arc<Vec<String>>,
}

/// A family of related scripts run by one user on one interpreter.
#[derive(Debug, Clone)]
pub struct ScriptFamily {
    /// Family id referenced by job templates (e.g. `u4-py36`).
    pub id: &'static str,
    /// Which interpreter runs these scripts.
    pub interpreter: &'static str,
    /// Owning user.
    pub user: &'static str,
    /// Number of distinct scripts (unique `SCRIPT_H`, Table 8).
    pub n_scripts: usize,
    /// Packages this family draws imports from.
    pub imports: &'static [&'static str],
}

/// Script-family definitions reproducing Table 8:
/// `python3.10`: 2 users, 30 jobs/procs, 27 scripts;
/// `python3.6`: 1 user, 14,884 procs, 6 scripts;
/// `python3.11`: 1 user, 8,402 procs, 5 scripts.
pub const SCRIPT_FAMILIES: &[ScriptFamily0] = &[
    ScriptFamily0 {
        id: "u4-py36",
        interpreter: "python3.6",
        user: "user_4",
        n_scripts: 6,
        imports: &[
            "heapq",
            "struct",
            "math",
            "mpi4py",
            "numpy",
            "scipy",
            "pickle",
            "socket",
            "select",
            "posixsubprocess",
            "hashlib",
            "blake2",
            "sha512",
            "sha3",
            "zlib",
            "bz2",
            "lzma",
            "fcntl",
            "array",
            "binascii",
        ],
    },
    ScriptFamily0 {
        id: "u4-py311",
        interpreter: "python3.11",
        user: "user_4",
        n_scripts: 5,
        imports: &[
            "heapq",
            "struct",
            "math",
            "numpy",
            "pandas",
            "json",
            "datetime",
            "decimal",
            "csv",
            "ctypes",
            "multiprocessing",
            "mmap",
            "queue",
            "random",
            "opcode",
            "unicodedata",
            "zoneinfo",
        ],
    },
    ScriptFamily0 {
        id: "u5-py310",
        interpreter: "python3.10",
        user: "user_5",
        n_scripts: 26,
        imports: &[
            "heapq", "struct", "bisect", "cmath", "csv", "json", "grp", "datetime", "random",
            "socket", "pickle", "queue",
        ],
    },
    ScriptFamily0 {
        id: "u12-py310",
        interpreter: "python3.10",
        user: "user_12",
        n_scripts: 1,
        imports: &["heapq", "struct", "math"],
    },
];

/// Static form of [`ScriptFamily`] (const-friendly).
#[derive(Debug, Clone)]
pub struct ScriptFamily0 {
    /// Family id.
    pub id: &'static str,
    /// Interpreter name.
    pub interpreter: &'static str,
    /// Owning user.
    pub user: &'static str,
    /// Distinct scripts.
    pub n_scripts: usize,
    /// Import pool.
    pub imports: &'static [&'static str],
}

/// A concrete generated script.
#[derive(Debug, Clone)]
pub struct Script {
    /// Script path.
    pub path: String,
    /// Script file (content + metadata).
    pub file: Arc<SimFile>,
    /// Packages this script imports.
    pub imports: Vec<&'static str>,
}

/// The built ecosystem.
#[derive(Debug)]
pub struct PythonEcosystem {
    interpreters: HashMap<&'static str, Interpreter>,
    scripts: HashMap<&'static str, Vec<Script>>,
}

fn interpreter_binary(name: &str, seed: u64) -> Vec<u8> {
    let mut text = Vec::with_capacity(40_000);
    let mut x = seed | 1;
    for _ in 0..40_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        text.push((x >> 16) as u8);
    }
    ElfBuilder::new(ElfType::Dyn)
        .text(&text)
        .rodata(format!("{name}\0Python interpreter\0PYTHONPATH\0").as_bytes())
        .comment("GCC: (SUSE Linux) 13.2.1 20240206")
        .symbol("Py_Main", 0x1000, 128, Binding::Global, SymType::Func)
        .symbol("Py_Initialize", 0x2000, 128, Binding::Global, SymType::Func)
        .needed("libpython.so.1")
        .needed("libc.so.6")
        .build()
}

/// Path of the memory-mapped extension module for `package` under a given
/// interpreter. C-extension stdlib modules live in `lib-dynload` with a
/// leading underscore; site packages live under `site-packages/<pkg>/`.
pub fn package_map_path(interp: &Interpreter, package: &str) -> String {
    let big = matches!(package, "numpy" | "scipy" | "pandas" | "mpi4py");
    if big {
        format!(
            "/usr/lib64/{}/site-packages/{package}/core/_{package}_impl.{}.so",
            interp.name, interp.abi
        )
    } else {
        format!(
            "/usr/lib64/{}/lib-dynload/_{package}.{}.so",
            interp.name, interp.abi
        )
    }
}

/// Which packages script `i` of a family imports. Deterministic; the first
/// three ("core") packages are always imported, every pool entry appears
/// in at least one script (coverage by the modulo clause).
pub fn script_imports(family: &ScriptFamily0, script_idx: usize) -> Vec<&'static str> {
    family
        .imports
        .iter()
        .enumerate()
        .filter(|(j, _)| {
            *j < 3 || *j % family.n_scripts == script_idx || (script_idx * 7 + *j).is_multiple_of(4)
        })
        .map(|(_, p)| *p)
        .collect()
}

fn script_content(family: &ScriptFamily0, idx: usize, imports: &[&str]) -> String {
    let mut s = String::with_capacity(2048);
    s.push_str("#!/usr/bin/env python3\n");
    s.push_str(&format!("# {} workflow script {idx}\n", family.id));
    for imp in imports {
        s.push_str(&format!("import {imp}\n"));
    }
    s.push('\n');
    for k in 0..30 {
        s.push_str(&format!(
            "def stage_{idx}_{k}(data):\n    return [x * {k} for x in data if x % {} == 0]\n\n",
            (idx + k) % 7 + 1
        ));
    }
    s.push_str("if __name__ == '__main__':\n    main()\n");
    s
}

impl PythonEcosystem {
    /// Build interpreters and all script families.
    pub fn build() -> Self {
        let install = crate::CAMPAIGN_START - 200 * 24 * 3600;
        let base_objects = |extra: &str| -> Arc<Vec<String>> {
            Arc::new(vec![
                "/opt/siren/lib/siren.so".to_string(),
                extra.to_string(),
                "/lib64/libc.so.6".to_string(),
                "/lib64/libm.so.6".to_string(),
                "/lib64/ld-linux-x86-64.so.2".to_string(),
            ])
        };

        let mut interpreters = HashMap::new();
        let defs: [(&'static str, &'static str, &'static str, u64, u64); 3] = [
            (
                "python3.6",
                "/usr/bin/python3.6",
                "cpython-36m-x86_64-linux-gnu",
                0xBEEF_0001,
                900_001,
            ),
            (
                "python3.10",
                "/opt/cray/pe/python/3.10.10/bin/python3.10",
                "cpython-310-x86_64-linux-gnu",
                0xBEEF_0002,
                900_002,
            ),
            (
                "python3.11",
                "/opt/python/3.11.4/bin/python3.11",
                "cpython-311-x86_64-linux-gnu",
                0xBEEF_0003,
                900_003,
            ),
        ];
        for (name, path, abi, seed, inode) in defs {
            interpreters.insert(
                name,
                Interpreter {
                    name,
                    path,
                    abi,
                    file: Arc::new(SimFile::new(
                        interpreter_binary(name, seed),
                        inode,
                        0,
                        install,
                    )),
                    objects: base_objects(&format!("/usr/lib64/libpython-{name}.so.1.0")),
                },
            );
        }

        let mut scripts: HashMap<&'static str, Vec<Script>> = HashMap::new();
        let mut inode = 950_000u64;
        for fam in SCRIPT_FAMILIES {
            let mut list = Vec::with_capacity(fam.n_scripts);
            for i in 0..fam.n_scripts {
                let imports = script_imports(fam, i);
                let content = script_content(fam, i, &imports);
                inode += 1;
                list.push(Script {
                    path: format!("/users/{}/scripts/{}_{i:02}.py", fam.user, fam.id),
                    file: Arc::new(SimFile::new(content.into_bytes(), inode, 0, install)),
                    imports,
                });
            }
            scripts.insert(fam.id, list);
        }

        Self {
            interpreters,
            scripts,
        }
    }

    /// Interpreter by name.
    pub fn interpreter(&self, name: &str) -> &Interpreter {
        self.interpreters
            .get(name)
            .unwrap_or_else(|| panic!("unknown interpreter {name}"))
    }

    /// Scripts of a family.
    pub fn scripts(&self, family_id: &str) -> &[Script] {
        self.scripts
            .get(family_id)
            .unwrap_or_else(|| panic!("unknown script family {family_id}"))
    }

    /// Memory-map lines for an interpreter process running `script`:
    /// the interpreter's own objects plus one mapped extension module per
    /// imported package.
    pub fn interpreter_maps(&self, interp: &Interpreter, script: &Script) -> Vec<String> {
        let mut maps: Vec<String> = interp.objects.iter().cloned().collect();
        for pkg in &script.imports {
            maps.push(package_map_path(interp, pkg));
        }
        maps
    }

    /// The family whose id is given (static lookup).
    pub fn family(family_id: &str) -> &'static ScriptFamily0 {
        SCRIPT_FAMILIES
            .iter()
            .find(|f| f.id == family_id)
            .unwrap_or_else(|| panic!("unknown script family {family_id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecosystem_builds_three_interpreters() {
        let eco = PythonEcosystem::build();
        for name in ["python3.6", "python3.10", "python3.11"] {
            let i = eco.interpreter(name);
            assert!(siren_elf::is_elf(&i.file.data));
        }
    }

    #[test]
    fn interpreters_live_in_system_directories() {
        let eco = PythonEcosystem::build();
        for name in ["python3.6", "python3.10", "python3.11"] {
            let p = eco.interpreter(name).path;
            assert!(
                p.starts_with("/usr/") || p.starts_with("/opt/"),
                "{p} must be a system directory for the Python category"
            );
        }
    }

    #[test]
    fn script_counts_match_table_8() {
        let eco = PythonEcosystem::build();
        assert_eq!(eco.scripts("u4-py36").len(), 6);
        assert_eq!(eco.scripts("u4-py311").len(), 5);
        assert_eq!(eco.scripts("u5-py310").len(), 26);
        assert_eq!(eco.scripts("u12-py310").len(), 1);
        // python3.10 total unique scripts = 27 (Table 8).
        assert_eq!(
            eco.scripts("u5-py310").len() + eco.scripts("u12-py310").len(),
            27
        );
    }

    #[test]
    fn scripts_are_distinct() {
        let eco = PythonEcosystem::build();
        let mut seen = std::collections::HashSet::new();
        for fam in SCRIPT_FAMILIES {
            for s in eco.scripts(fam.id) {
                assert!(seen.insert(s.file.data.clone()), "duplicate script content");
            }
        }
    }

    #[test]
    fn every_family_import_is_covered_by_some_script() {
        for fam in SCRIPT_FAMILIES {
            let mut covered = std::collections::HashSet::new();
            for i in 0..fam.n_scripts {
                for p in script_imports(fam, i) {
                    covered.insert(p);
                }
            }
            for p in fam.imports {
                assert!(covered.contains(p), "{} misses {p}", fam.id);
            }
        }
    }

    #[test]
    fn heapq_and_struct_span_three_users_like_fig3() {
        let mut users = std::collections::HashSet::new();
        for fam in SCRIPT_FAMILIES {
            if fam.imports.contains(&"heapq") {
                users.insert(fam.user);
            }
            assert!(fam.imports.contains(&"struct"));
        }
        assert_eq!(users.len(), 3);
    }

    #[test]
    fn all_catalog_packages_used_somewhere() {
        let used: std::collections::HashSet<&str> = SCRIPT_FAMILIES
            .iter()
            .flat_map(|f| f.imports.iter().copied())
            .collect();
        for p in PACKAGE_CATALOG {
            assert!(used.contains(p), "package {p} unused");
        }
    }

    #[test]
    fn map_paths_name_the_package() {
        let eco = PythonEcosystem::build();
        let i36 = eco.interpreter("python3.6");
        assert_eq!(
            package_map_path(i36, "heapq"),
            "/usr/lib64/python3.6/lib-dynload/_heapq.cpython-36m-x86_64-linux-gnu.so"
        );
        assert!(package_map_path(i36, "numpy").contains("site-packages/numpy/"));
    }

    #[test]
    fn interpreter_maps_include_script_imports() {
        let eco = PythonEcosystem::build();
        let i = eco.interpreter("python3.10");
        let s = &eco.scripts("u12-py310")[0];
        let maps = eco.interpreter_maps(i, s);
        assert!(maps.iter().any(|m| m.contains("_heapq.")));
        assert!(maps.iter().any(|m| m.contains("siren.so")));
    }
}
