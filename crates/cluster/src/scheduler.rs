//! Low-level scheduling machinery: PID allocation, rate sampling, variant
//! selection.

use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::HashMap;

/// Per-host PID allocator with kernel-style wrap-around (PID reuse).
#[derive(Debug, Default)]
pub struct PidAllocator {
    counters: HashMap<String, u32>,
}

/// Linux default `pid_max` on large systems.
const PID_MAX: u32 = 4_194_304;

impl PidAllocator {
    /// Fresh allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next PID on `host`.
    pub fn next(&mut self, host: &str) -> u32 {
        let c = self.counters.entry(host.to_string()).or_insert(999);
        *c += 1;
        if *c >= PID_MAX {
            *c = 1000; // wrap: PIDs get reused, as on a real node
        }
        *c
    }
}

/// Sample an integer count from a fractional per-job rate: the integer
/// part is guaranteed, the fractional part is a Bernoulli draw. Expected
/// value equals `rate` exactly.
pub fn sample_count(rate: f64, rng: &mut StdRng) -> u64 {
    if rate <= 0.0 {
        return 0;
    }
    let base = rate.floor() as u64;
    let frac = rate - rate.floor();
    base + u64::from(frac > 0.0 && rng.random::<f64>() < frac)
}

/// Scale an unscaled campaign count, keeping presence: any positive count
/// stays at least 1.
pub fn scale_count(count: u64, scale: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    ((count as f64 * scale).round() as u64).max(1)
}

/// Pick an index from cumulative weights (e.g. bash's three library-set
/// variants with Table 4's observed proportions).
pub fn pick_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Library-set variant weights for the multi-variant system executables,
/// matching Table 3/4's observed process proportions.
pub fn system_variant_weights(path: &str, n_variants: usize) -> Vec<f64> {
    match (path, n_variants) {
        // Table 4: 160,904 / 460 / 54.
        ("/usr/bin/bash", 3) => vec![0.9968, 0.00285, 0.00035],
        ("/usr/bin/srun", 3) => vec![0.85, 0.10, 0.05],
        ("/usr/bin/lua5.3", 2) => vec![0.92, 0.08],
        _ => vec![1.0; n_variants],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pids_monotonic_per_host() {
        let mut alloc = PidAllocator::new();
        let a = alloc.next("nid1");
        let b = alloc.next("nid1");
        let c = alloc.next("nid2");
        assert_eq!(b, a + 1);
        assert_eq!(c, a); // independent counter per host
    }

    #[test]
    fn pids_wrap_for_reuse() {
        let mut alloc = PidAllocator::new();
        alloc.counters.insert("n".into(), PID_MAX - 1);
        assert_eq!(alloc.next("n"), 1000);
    }

    #[test]
    fn sample_count_expectation() {
        let mut rng = StdRng::seed_from_u64(1);
        let n: u64 = (0..20_000).map(|_| sample_count(2.25, &mut rng)).sum();
        let avg = n as f64 / 20_000.0;
        assert!((avg - 2.25).abs() < 0.02, "avg {avg}");
    }

    #[test]
    fn sample_count_zero_and_integer() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_count(0.0, &mut rng), 0);
        assert_eq!(sample_count(-1.0, &mut rng), 0);
        assert_eq!(sample_count(3.0, &mut rng), 3);
    }

    #[test]
    fn scale_keeps_presence() {
        assert_eq!(scale_count(0, 0.01), 0);
        assert_eq!(scale_count(2, 0.01), 1);
        assert_eq!(scale_count(1000, 0.01), 10);
        assert_eq!(scale_count(11_782, 0.02), 236);
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[pick_weighted(&[0.8, 0.15, 0.05], &mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > 0);
    }

    #[test]
    fn bash_weights_cover_three_variants() {
        let w = system_variant_weights("/usr/bin/bash", 3);
        assert_eq!(w.len(), 3);
        let single = system_variant_weights("/usr/bin/rm", 1);
        assert_eq!(single, vec![1.0]);
    }
}
