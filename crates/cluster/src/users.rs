//! User profiles: the Table-2 population and its workload templates.
//!
//! The paper's Tables 2, 3, 5, 6 and 8 are mutually consistent enough
//! that the per-user allocation can be reconstructed almost uniquely:
//!
//! * `user_2`'s 5,259 user-directory processes = miniconda 5,018 +
//!   LAMMPS 222 + gzip 19;
//! * GROMACS's 2,104 processes over 2 users = `user_8` 2,103 + `user_7` 1;
//! * `user_4`'s 642 user-directory processes = icon 625 + UNKNOWN 17, and
//!   its 23,286 Python processes = 14,884 (python3.6) + 8,402 (python3.11);
//! * `python3.10`'s 30 processes over 2 users = `user_5` 29 + `user_12` 1;
//! * `user_10` = amber 889, `user_11` = janko 138, `user_9` = alexandria 4,
//!   `user_6` = RadRad 2, `user_3` = LAMMPS 4 (the second LAMMPS user).
//!
//! System-directory processes are allocated per (user, executable) so that
//! every Table-3 column sums exactly and every Table-2 row sums exactly;
//! `user_1` absorbs each column's remainder (it is the dominant
//! file-management user in the paper too).

/// Table 2 verbatim: `(user, jobs, system procs, user procs, python procs)`.
pub const USER_PROFILES: &[(&str, u64, u64, u64, u64)] = &[
    ("user_1", 11_782, 1_731_077, 0, 0),
    ("user_2", 930, 48_095, 5_259, 0),
    ("user_11", 230, 3_980, 138, 0),
    ("user_8", 216, 3_039, 2_103, 0),
    ("user_4", 205, 528_205, 642, 23_286),
    ("user_5", 47, 94, 0, 29),
    ("user_10", 28, 3_336, 889, 0),
    ("user_9", 4, 8, 4, 0),
    ("user_3", 2, 6, 4, 0),
    ("user_6", 2, 0, 2, 0),
    ("user_7", 1, 17, 1, 0),
    ("user_12", 1, 2, 0, 1),
];

/// A Python workload attached to a job kind.
#[derive(Debug, Clone)]
pub struct PyWorkload {
    /// Interpreter name (Table 8).
    pub interpreter: &'static str,
    /// Script family id.
    pub family: &'static str,
    /// Interpreter processes per job (fractional rates are sampled).
    pub procs_per_job: f64,
}

/// One kind of job a user runs.
#[derive(Debug, Clone)]
pub struct JobKind {
    /// Diagnostic name.
    pub name: &'static str,
    /// Unscaled number of jobs of this kind in the campaign.
    pub count: u64,
    /// Application processes: `(group_id, procs per job)`.
    pub apps: Vec<(&'static str, f64)>,
    /// Optional Python workload.
    pub python: Option<PyWorkload>,
}

/// Everything the scheduler needs about one user.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Anonymized name.
    pub name: &'static str,
    /// Numeric uid.
    pub uid: u32,
    /// Unscaled total jobs (sum of kind counts).
    pub total_jobs: u64,
    /// System-executable usage: `(path, unscaled total processes)`.
    /// Converted to per-job rates by dividing by `total_jobs`.
    pub system_procs: Vec<(&'static str, f64)>,
    /// Job kinds.
    pub kinds: Vec<JobKind>,
}

fn spread(total: f64, exes: &[&'static str]) -> Vec<(&'static str, f64)> {
    let share = total / exes.len() as f64;
    exes.iter().map(|e| (*e, share)).collect()
}

fn tools(range: std::ops::Range<u64>) -> Vec<&'static str> {
    // Long-tail tool paths are interned so they can live in 'static data.
    range
        .map(|i| {
            let s = format!("/usr/bin/tool_{i:03}");
            Box::leak(s.into_boxed_str()) as &'static str
        })
        .collect()
}

/// Build all twelve user profiles.
pub fn build_profiles() -> Vec<UserProfile> {
    let mut out = Vec::with_capacity(12);

    // ---------------------------------------------------------- user_1 --
    {
        let mut sys = vec![
            ("/usr/bin/srun", 1_365.0),
            ("/usr/bin/bash", 130_827.0),
            ("/usr/bin/lua5.3", 14_961.0),
            ("/usr/bin/rm", 433_825.0),
            ("/usr/bin/cat", 20_203.0),
            ("/usr/bin/uname", 20_203.0),
            ("/usr/bin/ls", 5_207.0),
            ("/usr/bin/mkdir", 437_689.0),
            ("/usr/bin/grep", 5_588.0),
            ("/usr/bin/cp", 7_829.0),
        ];
        sys.extend(spread(653_380.0, &tools(0..40)));
        out.push(UserProfile {
            name: "user_1",
            uid: 1001,
            total_jobs: 11_782,
            system_procs: sys,
            kinds: vec![JobKind {
                name: "filemgmt",
                count: 11_782,
                apps: vec![],
                python: None,
            }],
        });
    }

    // ---------------------------------------------------------- user_2 --
    {
        let mut sys = vec![
            ("/usr/bin/srun", 1_800.0),
            ("/usr/bin/bash", 9_300.0),
            ("/usr/bin/lua5.3", 930.0),
            ("/usr/bin/rm", 9_000.0),
            ("/usr/bin/cat", 3_000.0),
            ("/usr/bin/uname", 2_500.0),
            ("/usr/bin/ls", 1_500.0),
            ("/usr/bin/mkdir", 9_000.0),
            ("/usr/bin/grep", 1_500.0),
            ("/usr/bin/cp", 1_200.0),
        ];
        sys.extend(spread(8_365.0, &tools(70..80)));
        out.push(UserProfile {
            name: "user_2",
            uid: 1002,
            total_jobs: 930,
            system_procs: sys,
            kinds: vec![
                JobKind {
                    name: "conda",
                    count: 638,
                    apps: vec![("miniconda", 4_983.0 / 638.0)],
                    python: None,
                },
                JobKind {
                    name: "conda-rust",
                    count: 35,
                    apps: vec![("miniconda-rustc", 1.0)],
                    python: None,
                },
                JobKind {
                    name: "lammps",
                    count: 202,
                    apps: vec![("lammps-gcc", 1.0)],
                    python: None,
                },
                JobKind {
                    name: "lammps-gpu",
                    count: 20,
                    apps: vec![("lammps-lld", 1.0)],
                    python: None,
                },
                JobKind {
                    name: "gzip",
                    count: 18,
                    apps: vec![("gzip", 19.0 / 18.0)],
                    python: None,
                },
                JobKind {
                    name: "misc",
                    count: 17,
                    apps: vec![],
                    python: None,
                },
            ],
        });
    }

    // --------------------------------------------------------- user_11 --
    {
        let mut sys = vec![
            ("/usr/bin/srun", 460.0),
            ("/usr/bin/bash", 690.0),
            ("/usr/bin/lua5.3", 230.0),
            ("/usr/bin/rm", 400.0),
            ("/usr/bin/cat", 300.0),
            ("/usr/bin/ls", 150.0),
            ("/usr/bin/mkdir", 400.0),
        ];
        sys.extend(spread(
            1_350.0,
            &[
                "/usr/bin/env",
                "/usr/bin/id",
                "/usr/bin/dirname",
                "/usr/bin/basename",
                "/usr/bin/tee",
                "/usr/bin/touch",
                "/usr/bin/tool_080",
                "/usr/bin/tool_081",
            ],
        ));
        out.push(UserProfile {
            name: "user_11",
            uid: 1011,
            total_jobs: 230,
            system_procs: sys,
            kinds: vec![
                JobKind {
                    name: "janko",
                    count: 138,
                    apps: vec![("janko", 1.0)],
                    python: None,
                },
                JobKind {
                    name: "sys",
                    count: 92,
                    apps: vec![],
                    python: None,
                },
            ],
        });
    }

    // ---------------------------------------------------------- user_8 --
    {
        let mut sys = vec![
            ("/usr/bin/srun", 430.0),
            ("/usr/bin/bash", 432.0),
            ("/usr/bin/lua5.3", 216.0),
            ("/usr/bin/rm", 300.0),
            ("/usr/bin/cat", 200.0),
            ("/usr/bin/uname", 150.0),
            ("/usr/bin/ls", 200.0),
            ("/usr/bin/grep", 180.0),
        ];
        sys.extend(spread(
            931.0,
            &[
                "/usr/bin/date",
                "/usr/bin/hostname",
                "/usr/bin/chmod",
                "/usr/bin/tail",
            ],
        ));
        out.push(UserProfile {
            name: "user_8",
            uid: 1008,
            total_jobs: 216,
            system_procs: sys,
            kinds: vec![
                JobKind {
                    name: "gromacs",
                    count: 214,
                    apps: vec![("gromacs", 2_103.0 / 214.0)],
                    python: None,
                },
                JobKind {
                    name: "sys",
                    count: 2,
                    apps: vec![],
                    python: None,
                },
            ],
        });
    }

    // ---------------------------------------------------------- user_4 --
    {
        let mut sys = vec![
            ("/usr/bin/srun", 420.0),
            ("/usr/bin/bash", 20_000.0),
            ("/usr/bin/lua5.3", 2_050.0),
            ("/usr/bin/rm", 100_000.0),
            ("/usr/bin/cat", 5_000.0),
            ("/usr/bin/uname", 5_000.0),
            ("/usr/bin/ls", 2_000.0),
            ("/usr/bin/mkdir", 100_000.0),
            ("/usr/bin/grep", 2_000.0),
            ("/usr/bin/cp", 2_500.0),
        ];
        sys.extend(spread(289_235.0, &tools(40..70)));
        out.push(UserProfile {
            name: "user_4",
            uid: 1004,
            total_jobs: 205,
            system_procs: sys,
            kinds: vec![
                JobKind {
                    name: "icon",
                    count: 8,
                    apps: vec![("icon-gcc", 563.0 / 8.0)],
                    python: None,
                },
                JobKind {
                    name: "icon-cray",
                    count: 38,
                    apps: vec![("icon-cray", 44.0 / 38.0)],
                    python: None,
                },
                JobKind {
                    name: "icon-triple",
                    count: 18,
                    apps: vec![("icon-triple", 1.0)],
                    python: None,
                },
                JobKind {
                    name: "unknown",
                    count: 3,
                    apps: vec![("unknown", 17.0 / 3.0)],
                    python: None,
                },
                JobKind {
                    name: "py36",
                    count: 28,
                    apps: vec![],
                    python: Some(PyWorkload {
                        interpreter: "python3.6",
                        family: "u4-py36",
                        procs_per_job: 14_884.0 / 28.0,
                    }),
                },
                JobKind {
                    name: "py311",
                    count: 8,
                    apps: vec![],
                    python: Some(PyWorkload {
                        interpreter: "python3.11",
                        family: "u4-py311",
                        procs_per_job: 8_402.0 / 8.0,
                    }),
                },
                JobKind {
                    name: "sys",
                    count: 102,
                    apps: vec![],
                    python: None,
                },
            ],
        });
    }

    // ---------------------------------------------------------- user_5 --
    out.push(UserProfile {
        name: "user_5",
        uid: 1005,
        total_jobs: 47,
        system_procs: vec![("/usr/bin/srun", 29.0), ("/usr/bin/bash", 65.0)],
        kinds: vec![
            JobKind {
                name: "py",
                count: 29,
                apps: vec![],
                python: Some(PyWorkload {
                    interpreter: "python3.10",
                    family: "u5-py310",
                    procs_per_job: 1.0,
                }),
            },
            JobKind {
                name: "sys",
                count: 18,
                apps: vec![],
                python: None,
            },
        ],
    });

    // --------------------------------------------------------- user_10 --
    {
        let mut sys = vec![
            ("/usr/bin/srun", 54.0),
            ("/usr/bin/bash", 100.0),
            ("/usr/bin/lua5.3", 56.0),
            ("/usr/bin/rm", 500.0),
            ("/usr/bin/cat", 300.0),
            ("/usr/bin/uname", 200.0),
            ("/usr/bin/cp", 126.0),
        ];
        sys.extend(spread(
            2_000.0,
            &[
                "/usr/bin/ln",
                "/usr/bin/du",
                "/usr/bin/df",
                "/usr/bin/tar",
                "/usr/bin/sed",
                "/usr/bin/awk",
            ],
        ));
        out.push(UserProfile {
            name: "user_10",
            uid: 1010,
            total_jobs: 28,
            system_procs: sys,
            kinds: vec![
                JobKind {
                    name: "amber",
                    count: 27,
                    apps: vec![("amber", 889.0 / 27.0)],
                    python: None,
                },
                JobKind {
                    name: "sys",
                    count: 1,
                    apps: vec![],
                    python: None,
                },
            ],
        });
    }

    // ---------------------------------------------------------- user_9 --
    out.push(UserProfile {
        name: "user_9",
        uid: 1009,
        total_jobs: 4,
        system_procs: vec![("/usr/bin/srun", 4.0), ("/usr/bin/lua5.3", 4.0)],
        kinds: vec![
            JobKind {
                name: "alexandria",
                count: 2,
                apps: vec![("alexandria", 2.0)],
                python: None,
            },
            JobKind {
                name: "sys",
                count: 2,
                apps: vec![],
                python: None,
            },
        ],
    });

    // ---------------------------------------------------------- user_3 --
    out.push(UserProfile {
        name: "user_3",
        uid: 1003,
        total_jobs: 2,
        system_procs: vec![("/usr/bin/head", 3.0), ("/usr/bin/sort", 3.0)],
        kinds: vec![JobKind {
            name: "lammps-mixed",
            count: 2,
            apps: vec![("lammps-gcc", 1.0), ("lammps-lld", 1.0)],
            python: None,
        }],
    });

    // ---------------------------------------------------------- user_6 --
    out.push(UserProfile {
        name: "user_6",
        uid: 1006,
        total_jobs: 2,
        system_procs: vec![],
        kinds: vec![JobKind {
            name: "radrad",
            count: 2,
            apps: vec![("radrad", 1.0)],
            python: None,
        }],
    });

    // ---------------------------------------------------------- user_7 --
    out.push(UserProfile {
        name: "user_7",
        uid: 1007,
        total_jobs: 1,
        system_procs: vec![
            ("/usr/bin/srun", 1.0),
            ("/usr/bin/bash", 4.0),
            ("/usr/bin/wc", 6.0),
            ("/usr/bin/sleep", 6.0),
        ],
        kinds: vec![JobKind {
            name: "gromacs-test",
            count: 1,
            apps: vec![("gromacs", 1.0)],
            python: None,
        }],
    });

    // --------------------------------------------------------- user_12 --
    out.push(UserProfile {
        name: "user_12",
        uid: 1012,
        total_jobs: 1,
        system_procs: vec![("/usr/bin/srun", 1.0), ("/usr/bin/lua5.3", 1.0)],
        kinds: vec![JobKind {
            name: "py",
            count: 1,
            apps: vec![],
            python: Some(PyWorkload {
                interpreter: "python3.10",
                family: "u12-py310",
                procs_per_job: 1.0,
            }),
        }],
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_profiles() {
        assert_eq!(build_profiles().len(), 12);
        assert_eq!(USER_PROFILES.len(), 12);
    }

    #[test]
    fn kind_counts_sum_to_total_jobs() {
        for p in build_profiles() {
            let sum: u64 = p.kinds.iter().map(|k| k.count).sum();
            assert_eq!(sum, p.total_jobs, "{}", p.name);
        }
    }

    #[test]
    fn job_totals_match_table_2() {
        let profiles = build_profiles();
        for (name, jobs, _, _, _) in USER_PROFILES {
            let p = profiles.iter().find(|p| p.name == *name).unwrap();
            assert_eq!(p.total_jobs, *jobs, "{name}");
        }
        let total: u64 = profiles.iter().map(|p| p.total_jobs).sum();
        assert_eq!(total, 13_448); // paper total
    }

    #[test]
    fn system_proc_totals_match_table_2() {
        let profiles = build_profiles();
        for (name, _, sys, _, _) in USER_PROFILES {
            let p = profiles.iter().find(|p| p.name == *name).unwrap();
            let total: f64 = p.system_procs.iter().map(|(_, n)| n).sum();
            assert!(
                (total - *sys as f64).abs() < 0.5,
                "{name}: {total} vs {sys}"
            );
        }
    }

    #[test]
    fn table_3_column_sums_reproduce() {
        let profiles = build_profiles();
        let col = |exe: &str| -> f64 {
            profiles
                .iter()
                .flat_map(|p| p.system_procs.iter())
                .filter(|(e, _)| *e == exe)
                .map(|(_, n)| n)
                .sum()
        };
        assert_eq!(col("/usr/bin/srun") as u64, 4_564);
        assert_eq!(col("/usr/bin/bash") as u64, 161_418);
        assert_eq!(col("/usr/bin/lua5.3") as u64, 18_448);
        assert_eq!(col("/usr/bin/rm") as u64, 544_025);
        assert_eq!(col("/usr/bin/cat") as u64, 29_003);
        assert_eq!(col("/usr/bin/uname") as u64, 28_053);
        assert_eq!(col("/usr/bin/ls") as u64, 9_057);
        assert_eq!(col("/usr/bin/mkdir") as u64, 547_089);
        assert_eq!(col("/usr/bin/grep") as u64, 9_268);
        assert_eq!(col("/usr/bin/cp") as u64, 11_655);
    }

    #[test]
    fn table_3_user_counts_reproduce() {
        let profiles = build_profiles();
        let users = |exe: &str| -> usize {
            profiles
                .iter()
                .filter(|p| p.system_procs.iter().any(|(e, n)| *e == exe && *n > 0.0))
                .count()
        };
        assert_eq!(users("/usr/bin/srun"), 10);
        assert_eq!(users("/usr/bin/bash"), 8);
        assert_eq!(users("/usr/bin/lua5.3"), 8);
        assert_eq!(users("/usr/bin/rm"), 6);
        assert_eq!(users("/usr/bin/cat"), 6);
        assert_eq!(users("/usr/bin/uname"), 5);
        assert_eq!(users("/usr/bin/ls"), 5);
        assert_eq!(users("/usr/bin/mkdir"), 4);
        assert_eq!(users("/usr/bin/grep"), 4);
        assert_eq!(users("/usr/bin/cp"), 4);
    }

    #[test]
    fn user_process_totals_match_table_5_allocation() {
        // Per-user user-directory process totals (apps only).
        let profiles = build_profiles();
        let user_procs = |name: &str| -> f64 {
            let p = profiles.iter().find(|p| p.name == name).unwrap();
            p.kinds
                .iter()
                .map(|k| k.count as f64 * k.apps.iter().map(|(_, r)| r).sum::<f64>())
                .sum()
        };
        assert!((user_procs("user_2") - 5_259.0).abs() < 1.0);
        assert!((user_procs("user_8") - 2_103.0).abs() < 1.0);
        assert!((user_procs("user_4") - 642.0).abs() < 1.0);
        assert!((user_procs("user_10") - 889.0).abs() < 1.0);
        assert!((user_procs("user_11") - 138.0).abs() < 1.0);
        assert!((user_procs("user_3") - 4.0).abs() < 1.0);
        assert!((user_procs("user_6") - 2.0).abs() < 1.0);
        assert!((user_procs("user_7") - 1.0).abs() < 1.0);
        assert!((user_procs("user_9") - 4.0).abs() < 1.0);
    }

    #[test]
    fn python_totals_match_table_8() {
        let profiles = build_profiles();
        let py = |name: &str| -> f64 {
            let p = profiles.iter().find(|p| p.name == name).unwrap();
            p.kinds
                .iter()
                .filter_map(|k| {
                    k.python
                        .as_ref()
                        .map(|py| k.count as f64 * py.procs_per_job)
                })
                .sum()
        };
        assert!((py("user_4") - 23_286.0).abs() < 1.0);
        assert!((py("user_5") - 29.0).abs() < 0.5);
        assert!((py("user_12") - 1.0).abs() < 0.5);
    }
}
