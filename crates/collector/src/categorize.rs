//! Process categorization (§3.1, "Selective Data Collection").
//!
//! > Processes are divided according to where their executables originate
//! > from, into the categories system, user, and additionally Python.

/// System directories, verbatim from the paper.
pub const SYSTEM_DIRS: &[&str] = &[
    "/etc/", "/dev/", "/usr/", "/bin/", "/boot/", "/lib/", "/opt/", "/sbin/", "/sys/", "/proc/",
    "/var/",
];

/// Process category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Executable from a system directory.
    System,
    /// Executable from anywhere else (user-installed).
    User,
    /// A Python interpreter executing from a system directory. (A Python
    /// interpreter installed in a user directory counts as [`Category::User`].)
    Python,
}

impl Category {
    /// Categorize an executable path.
    pub fn of(exe_path: &str) -> Category {
        let in_system_dir = SYSTEM_DIRS.iter().any(|d| exe_path.starts_with(d));
        if !in_system_dir {
            return Category::User;
        }
        if is_python_interpreter_name(exe_path) {
            Category::Python
        } else {
            Category::System
        }
    }

    /// Short name for report output.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::System => "system",
            Category::User => "user",
            Category::Python => "python",
        }
    }
}

/// Does the file name look like a CPython interpreter (`python`,
/// `python3`, `python3.11`, …)?
pub fn is_python_interpreter_name(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    if let Some(rest) = name.strip_prefix("python") {
        rest.is_empty() || rest.chars().all(|c| c.is_ascii_digit() || c == '.')
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_directories_categorized() {
        assert_eq!(Category::of("/usr/bin/bash"), Category::System);
        assert_eq!(Category::of("/opt/cray/pe/bin/cc"), Category::System);
        assert_eq!(Category::of("/bin/sh"), Category::System);
        assert_eq!(Category::of("/var/run/tool"), Category::System);
    }

    #[test]
    fn user_directories_categorized() {
        assert_eq!(Category::of("/users/user_4/icon/bin/icon"), Category::User);
        assert_eq!(Category::of("/scratch/project/a.out"), Category::User);
        assert_eq!(Category::of("/projappl/amber/bin/pmemd"), Category::User);
        assert_eq!(Category::of("/home/me/tool"), Category::User);
    }

    #[test]
    fn python_requires_system_directory() {
        assert_eq!(Category::of("/usr/bin/python3.6"), Category::Python);
        assert_eq!(
            Category::of("/opt/python/3.11.4/bin/python3.11"),
            Category::Python
        );
        // The paper's explicit rule: user-dir interpreters are user procs.
        assert_eq!(
            Category::of("/users/user_2/miniconda3/envs/env0/bin/python3.11"),
            Category::User
        );
    }

    #[test]
    fn python_name_detection() {
        assert!(is_python_interpreter_name("/usr/bin/python"));
        assert!(is_python_interpreter_name("/usr/bin/python3"));
        assert!(is_python_interpreter_name("/x/python3.10"));
        assert!(!is_python_interpreter_name("/usr/bin/pythonista"));
        assert!(!is_python_interpreter_name("/usr/bin/bash"));
        assert!(!is_python_interpreter_name("/usr/bin/bpython-x"));
    }

    #[test]
    fn prefix_must_be_a_directory_component() {
        // "/usrx/tool" must not match "/usr/".
        assert_eq!(Category::of("/usrx/tool"), Category::User);
    }
}
