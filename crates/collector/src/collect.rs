//! Record assembly and emission: the constructor-time work of `siren.so`.

use crate::categorize::Category;
use crate::policy::{CollectionPolicy, PolicyMode};
use siren_cluster::ProcessContext;
use siren_fuzzy::FuzzyHasher;
use siren_hash::xxh3_128_hex;
use siren_net::Sender;
use siren_text::{printable_strings_joined, StringsConfig};
use siren_wire::{
    chunk_message, sentinel_message_with_epoch, Layer, Message, MessageHeader, MessageType,
    DEFAULT_MAX_DATAGRAM,
};

/// Collection statistics (the collector's only side channel — it never
/// reports errors to the hooked process).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Rank-0 observations processed.
    pub observed: u64,
    /// Observations skipped because `SLURM_PROCID != 0`.
    pub skipped_nonzero_rank: u64,
    /// Containerized processes the collector never saw (`siren.so` is not
    /// mounted inside containers — the §3.1 limitation). Counted here for
    /// observability of the blind spot; in reality these would simply be
    /// absent.
    pub invisible_container: u64,
    /// Logical messages produced.
    pub messages: u64,
    /// Datagrams handed to the transport (after chunking).
    pub datagrams_sent: u64,
    /// Collection steps that failed and were silently dropped.
    pub errors: u64,
    /// Per-category observation counts (system, user, python).
    pub by_category: [u64; 3],
    /// Total bytes of executable content fuzzy-hashed (cost metric for
    /// the selective-collection ablation).
    pub bytes_hashed: u64,
}

/// How many copies of the end-of-campaign sentinel each sender emits.
/// Transport is fire-and-forget UDP, so a single sentinel could be lost;
/// a small burst makes loss of *all* copies vanishingly unlikely while
/// the receiver's quiet-period fallback still covers that case.
pub const SENTINEL_BURST: usize = 3;

/// The collector: stateless per observation, accumulates statistics.
pub struct Collector<'s, S: Sender> {
    sender: &'s S,
    mode: PolicyMode,
    max_datagram: usize,
    sender_id: u32,
    epoch: Option<u64>,
    stats: CollectorStats,
}

impl<'s, S: Sender> Collector<'s, S> {
    /// Collector emitting through `sender` under the given policy mode.
    pub fn new(sender: &'s S, mode: PolicyMode) -> Self {
        Self {
            sender,
            mode,
            max_datagram: DEFAULT_MAX_DATAGRAM,
            sender_id: 0,
            epoch: None,
            stats: CollectorStats::default(),
        }
    }

    /// Override the datagram size limit (for chunking experiments).
    pub fn with_max_datagram(mut self, max: usize) -> Self {
        self.max_datagram = max;
        self
    }

    /// Tag this collector's sentinel with a sender id (multi-sender
    /// deployments give each collector thread a distinct id so the
    /// receiver can account for every stream).
    pub fn with_sender_id(mut self, id: u32) -> Self {
        self.sender_id = id;
        self
    }

    /// Tag this collector's end-of-campaign sentinel with a service
    /// **epoch** (long-running daemons ingest campaigns as consecutive
    /// epochs; the tag lets the receiver detect close mismatches).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Announce end of campaign: emit [`SENTINEL_BURST`] copies of the
    /// END sentinel through the transport. Datagram counts in the
    /// sentinel reflect payload datagrams only, so receivers can
    /// reconcile loss without counting sentinels.
    pub fn end_campaign(&self) {
        let sentinel =
            sentinel_message_with_epoch(self.sender_id, self.stats.datagrams_sent, self.epoch);
        let encoded = sentinel.encode();
        for _ in 0..SENTINEL_BURST {
            self.sender.send(&encoded);
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// Observe one process (the constructor hook). Sends all resulting
    /// datagrams through the transport; never fails.
    pub fn observe(&mut self, ctx: &ProcessContext) {
        if ctx.slurm_procid != 0 {
            // Non-zero ranks are skipped whether or not the constructor
            // would have run; counting them first keeps the container
            // blind-spot counter aligned with the campaign's rank-0
            // container accounting.
            self.stats.skipped_nonzero_rank += 1;
            return;
        }
        if ctx.in_container {
            // The dynamic linker inside the container cannot find
            // siren.so: the constructor never runs, nothing is collected.
            self.stats.invisible_container += 1;
            return;
        }
        self.stats.observed += 1;
        let msgs = collect_messages(ctx, self.mode, &mut self.stats);
        for (header, content) in msgs {
            self.stats.messages += 1;
            for msg in chunk_message(&header, &content, self.max_datagram) {
                self.stats.datagrams_sent += 1;
                self.sender.send(&msg.encode());
            }
        }
    }
}

fn fuzzy_of_bytes(data: &[u8]) -> String {
    let mut h = FuzzyHasher::new();
    h.update(data);
    h.digest().to_string_repr()
}

fn fuzzy_of_list(items: &[String]) -> String {
    fuzzy_of_bytes(items.join("\n").as_bytes())
}

fn meta_content(ctx: &ProcessContext) -> String {
    let m = &ctx.exe.meta;
    format!(
        "path={};inode={};size={};mode={:o};owner_uid={};owner_gid={};atime={};mtime={};ctime={};uid={};gid={};ppid={};user={}",
        ctx.exe_path,
        m.inode,
        m.size,
        m.mode,
        m.owner_uid,
        m.owner_gid,
        m.atime,
        m.mtime,
        m.ctime,
        ctx.uid,
        ctx.gid,
        ctx.ppid,
        ctx.user,
    )
}

fn script_meta_content(ctx: &ProcessContext) -> Option<String> {
    let py = ctx.python.as_ref()?;
    let m = &py.script.meta;
    Some(format!(
        "path={};inode={};size={};mode={:o};owner_uid={};owner_gid={};atime={};mtime={};ctime={};uid={};gid={};ppid={};user={}",
        py.script_path,
        m.inode,
        m.size,
        m.mode,
        m.owner_uid,
        m.owner_gid,
        m.atime,
        m.mtime,
        m.ctime,
        ctx.uid,
        ctx.gid,
        ctx.ppid,
        ctx.user,
    ))
}

/// Assemble all logical messages for one observation. Pure except for
/// statistics accounting. Public so tests and benches can inspect
/// collection output without a transport.
pub fn collect_messages(
    ctx: &ProcessContext,
    mode: PolicyMode,
    stats: &mut CollectorStats,
) -> Vec<(MessageHeader, String)> {
    let category = Category::of(&ctx.exe_path);
    match category {
        Category::System => stats.by_category[0] += 1,
        Category::User => stats.by_category[1] += 1,
        Category::Python => stats.by_category[2] += 1,
    }
    let policy = CollectionPolicy::for_category(category, mode);

    let header = |mtype: MessageType| MessageHeader {
        job_id: ctx.job_id,
        step_id: ctx.step_id,
        pid: ctx.pid,
        exe_hash: xxh3_128_hex(ctx.exe_path.as_bytes()),
        host: ctx.host.clone(),
        time: ctx.timestamp,
        layer: Layer::SelfExe,
        mtype,
    };

    let mut out: Vec<(MessageHeader, String)> = Vec::with_capacity(12);

    if policy.file_metadata {
        out.push((header(MessageType::Meta), meta_content(ctx)));
    }
    if policy.libraries {
        let list: Vec<String> = ctx.loaded_objects.to_vec();
        out.push((header(MessageType::Objects), list.join(";")));
        out.push((header(MessageType::ObjectsHash), fuzzy_of_list(&list)));
    }
    if policy.modules {
        let list: Vec<String> = ctx.loaded_modules.to_vec();
        out.push((header(MessageType::Modules), list.join(";")));
        out.push((header(MessageType::ModulesHash), fuzzy_of_list(&list)));
    }
    if policy.compilers {
        // `.comment` extraction can fail on malformed binaries — graceful
        // failure means the field is simply absent.
        match siren_elf::ElfFile::parse(&ctx.exe.data) {
            Ok(elf) => {
                let list = elf.comment_strings();
                out.push((header(MessageType::Compilers), list.join(";")));
                out.push((header(MessageType::CompilersHash), fuzzy_of_list(&list)));
            }
            Err(_) => stats.errors += 1,
        }
    }
    if policy.memory_map {
        let list: Vec<String> = ctx.memory_maps.to_vec();
        out.push((header(MessageType::Maps), list.join(";")));
        out.push((header(MessageType::MapsHash), fuzzy_of_list(&list)));
    }
    if policy.file_hash {
        stats.bytes_hashed += ctx.exe.data.len() as u64;
        out.push((header(MessageType::FileHash), fuzzy_of_bytes(&ctx.exe.data)));
    }
    if policy.strings_hash {
        let strings = printable_strings_joined(&ctx.exe.data, &StringsConfig::default());
        stats.bytes_hashed += strings.len() as u64;
        out.push((
            header(MessageType::StringsHash),
            fuzzy_of_bytes(strings.as_bytes()),
        ));
    }
    if policy.symbols_hash {
        match siren_elf::ElfFile::parse(&ctx.exe.data) {
            Ok(elf) => {
                let names: Vec<String> = elf.global_symbols().into_iter().map(|s| s.name).collect();
                stats.bytes_hashed += names.iter().map(|n| n.len() as u64 + 1).sum::<u64>();
                out.push((header(MessageType::SymbolsHash), fuzzy_of_list(&names)));
            }
            Err(_) => stats.errors += 1,
        }
    }

    // LAYER=SCRIPT: the Python input script, when present and the process
    // is a system-directory interpreter (Table 1's last column).
    if category == Category::Python {
        if let Some(py) = &ctx.python {
            let script_policy = CollectionPolicy::for_python_script();
            let sheader = |mtype: MessageType| MessageHeader {
                layer: Layer::Script,
                exe_hash: xxh3_128_hex(py.script_path.as_bytes()),
                ..header(mtype)
            };
            if script_policy.file_metadata {
                if let Some(content) = script_meta_content(ctx) {
                    out.push((sheader(MessageType::Meta), content));
                }
            }
            if script_policy.file_hash {
                stats.bytes_hashed += py.script.data.len() as u64;
                out.push((
                    sheader(MessageType::ScriptHash),
                    fuzzy_of_bytes(&py.script.data),
                ));
            }
        }
    }

    out
}

/// Convenience for tests: collect into [`Message`] datagrams without a
/// transport.
pub fn collect_datagrams(ctx: &ProcessContext, mode: PolicyMode) -> Vec<Message> {
    let mut stats = CollectorStats::default();
    collect_messages(ctx, mode, &mut stats)
        .into_iter()
        .flat_map(|(h, c)| chunk_message(&h, &c, DEFAULT_MAX_DATAGRAM))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_cluster::{FileMeta, ProcessContext, PythonContext, SimFile};
    use siren_elf::{Binding, ElfBuilder, ElfType, SymType};
    use std::sync::Arc;

    fn elf_exe() -> Vec<u8> {
        ElfBuilder::new(ElfType::Dyn)
            .text(&[0xAB; 4000])
            .rodata(b"solver v1.2\0usage: solver\0")
            .comment("GCC: (SUSE Linux) 13.2.1")
            .symbol("main", 0x10, 8, Binding::Global, SymType::Func)
            .symbol("solve_step", 0x20, 8, Binding::Global, SymType::Func)
            .build()
    }

    fn ctx(path: &str, data: Vec<u8>) -> ProcessContext {
        ProcessContext {
            user: "user_9".into(),
            uid: 1009,
            gid: 1009,
            job_id: 42,
            step_id: 1,
            slurm_procid: 0,
            host: "nid000099".into(),
            pid: 3141,
            ppid: 3000,
            timestamp: 1_733_900_000,
            exe_path: path.into(),
            exe: Arc::new(SimFile::new(data, 777, 1009, 1_700_000_000)),
            loaded_objects: Arc::new(vec![
                "/opt/siren/lib/siren.so".into(),
                "/lib64/libc.so.6".into(),
            ]),
            loaded_modules: Arc::new(vec!["PrgEnv-gnu/8.4.0".into()]),
            memory_maps: Arc::new(vec!["/lib64/libc.so.6".into()]),
            python: None,
            in_container: false,
        }
    }

    fn types_of(msgs: &[(MessageHeader, String)]) -> Vec<MessageType> {
        msgs.iter().map(|(h, _)| h.mtype).collect()
    }

    #[test]
    fn user_executable_emits_all_categories() {
        let c = ctx("/users/user_9/app/bin/solver", elf_exe());
        let mut stats = CollectorStats::default();
        let msgs = collect_messages(&c, PolicyMode::Selective, &mut stats);
        let types = types_of(&msgs);
        for t in [
            MessageType::Meta,
            MessageType::Objects,
            MessageType::ObjectsHash,
            MessageType::Modules,
            MessageType::ModulesHash,
            MessageType::Compilers,
            MessageType::CompilersHash,
            MessageType::Maps,
            MessageType::MapsHash,
            MessageType::FileHash,
            MessageType::StringsHash,
            MessageType::SymbolsHash,
        ] {
            assert!(types.contains(&t), "missing {t:?}");
        }
        assert!(stats.bytes_hashed > 0);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn system_executable_emits_only_meta_and_objects() {
        let c = ctx("/usr/bin/bash", elf_exe());
        let mut stats = CollectorStats::default();
        let msgs = collect_messages(&c, PolicyMode::Selective, &mut stats);
        let types = types_of(&msgs);
        assert_eq!(
            types,
            vec![
                MessageType::Meta,
                MessageType::Objects,
                MessageType::ObjectsHash
            ]
        );
        assert_eq!(stats.bytes_hashed, 0, "system binaries are never hashed");
    }

    #[test]
    fn collect_everything_hashes_system_binaries_too() {
        let c = ctx("/usr/bin/bash", elf_exe());
        let mut stats = CollectorStats::default();
        let msgs = collect_messages(&c, PolicyMode::CollectEverything, &mut stats);
        assert!(types_of(&msgs).contains(&MessageType::FileHash));
        assert!(stats.bytes_hashed > 0);
    }

    #[test]
    fn compilers_content_is_comment_strings() {
        let c = ctx("/users/user_9/app/bin/solver", elf_exe());
        let mut stats = CollectorStats::default();
        let msgs = collect_messages(&c, PolicyMode::Selective, &mut stats);
        let compilers = msgs
            .iter()
            .find(|(h, _)| h.mtype == MessageType::Compilers)
            .map(|(_, c)| c.clone())
            .unwrap();
        assert_eq!(compilers, "GCC: (SUSE Linux) 13.2.1");
    }

    #[test]
    fn malformed_binary_fails_gracefully() {
        let c = ctx(
            "/users/user_9/app/bin/solver",
            b"not an elf at all".to_vec(),
        );
        let mut stats = CollectorStats::default();
        let msgs = collect_messages(&c, PolicyMode::Selective, &mut stats);
        // Compilers + symbols extraction fail silently; the rest proceeds.
        assert_eq!(stats.errors, 2);
        let types = types_of(&msgs);
        assert!(types.contains(&MessageType::Meta));
        assert!(types.contains(&MessageType::FileHash));
        assert!(!types.contains(&MessageType::Compilers));
        assert!(!types.contains(&MessageType::SymbolsHash));
    }

    #[test]
    fn python_interpreter_emits_script_layer() {
        let mut c = ctx("/usr/bin/python3.6", elf_exe());
        c.python = Some(PythonContext {
            script_path: "/users/user_9/scripts/run.py".into(),
            script: Arc::new(SimFile {
                data: Arc::new(b"import numpy\nprint('hi')\n".to_vec()),
                meta: FileMeta {
                    inode: 1,
                    size: 25,
                    mode: 0o644,
                    owner_uid: 1009,
                    owner_gid: 1009,
                    atime: 0,
                    mtime: 0,
                    ctime: 0,
                },
            }),
        });
        let mut stats = CollectorStats::default();
        let msgs = collect_messages(&c, PolicyMode::Selective, &mut stats);
        let script_msgs: Vec<_> = msgs
            .iter()
            .filter(|(h, _)| h.layer == Layer::Script)
            .collect();
        assert_eq!(script_msgs.len(), 2); // META + SCRIPT_H
        assert!(script_msgs
            .iter()
            .any(|(h, _)| h.mtype == MessageType::ScriptHash));
        // Interpreter itself: no FILE_H (Table 1), but maps present.
        let self_types: Vec<MessageType> = msgs
            .iter()
            .filter(|(h, _)| h.layer == Layer::SelfExe)
            .map(|(h, _)| h.mtype)
            .collect();
        assert!(!self_types.contains(&MessageType::FileHash));
        assert!(self_types.contains(&MessageType::Maps));
    }

    #[test]
    fn exe_hash_distinguishes_paths_not_content() {
        let data = elf_exe();
        let a = ctx("/usr/bin/bash", data.clone());
        let b = ctx("/usr/bin/srun", data);
        let mut stats = CollectorStats::default();
        let ha = collect_messages(&a, PolicyMode::Selective, &mut stats)[0]
            .0
            .exe_hash
            .clone();
        let hb = collect_messages(&b, PolicyMode::Selective, &mut stats)[0]
            .0
            .exe_hash
            .clone();
        assert_ne!(ha, hb);
        assert_eq!(ha.len(), 32);
    }

    #[test]
    fn nonzero_rank_skipped_by_observe() {
        let (tx, rx) = siren_net::SimChannel::create(siren_net::SimConfig::perfect());
        let mut collector = Collector::new(&tx, PolicyMode::Selective);
        let mut c = ctx("/usr/bin/bash", elf_exe());
        c.slurm_procid = 3;
        collector.observe(&c);
        assert_eq!(collector.stats().skipped_nonzero_rank, 1);
        assert_eq!(collector.stats().observed, 0);
        assert_eq!(rx.queued(), 0);
    }

    #[test]
    fn container_processes_are_invisible() {
        let (tx, rx) = siren_net::SimChannel::create(siren_net::SimConfig::perfect());
        let mut collector = Collector::new(&tx, PolicyMode::Selective);
        let mut c = ctx("/users/user_9/app/bin/solver", elf_exe());
        c.in_container = true;
        collector.observe(&c);
        assert_eq!(collector.stats().invisible_container, 1);
        assert_eq!(collector.stats().observed, 0);
        assert_eq!(rx.queued(), 0, "no datagrams from inside containers");
    }

    #[test]
    fn long_object_lists_chunk_into_multiple_datagrams() {
        let mut c = ctx("/usr/bin/bash", elf_exe());
        let many: Vec<String> = (0..200)
            .map(|i| format!("/opt/very/long/library/path/lib_{i:04}.so.1"))
            .collect();
        c.loaded_objects = Arc::new(many);
        let datagrams = collect_datagrams(&c, PolicyMode::Selective);
        let obj_chunks = datagrams
            .iter()
            .filter(|m| m.header.mtype == MessageType::Objects)
            .count();
        assert!(obj_chunks > 1, "expected chunking, got {obj_chunks}");
    }
}
