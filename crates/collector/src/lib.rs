//! # siren-collector — the `siren.so` data-collection library, in Rust
//!
//! The paper's collector is a C shared object injected via `LD_PRELOAD`;
//! its constructor runs before `main()` and gathers process metadata,
//! environment information, ELF-derived data, and SSDeep fuzzy hashes,
//! then ships everything as chunked UDP messages. This crate reproduces
//! that collection logic over the simulated `/proc` view
//! ([`siren_cluster::ProcessContext`]):
//!
//! * [`categorize`] — the §3.1 process taxonomy: *system* (executable in
//!   a system directory), *user* (anywhere else), *python* (a Python
//!   interpreter in a system directory).
//! * [`policy`] — **Table 1** verbatim: which data category is collected
//!   for which process category (system executables get metadata +
//!   libraries only; user executables get everything; Python
//!   interpreters add the memory map; Python scripts get metadata + their
//!   own fuzzy hash).
//! * [`collect`] — record assembly and emission. Graceful failure is the
//!   prime directive: no collection problem may ever propagate into the
//!   hooked process, so every fallible step downgrades to a counted,
//!   silent error.

pub mod categorize;
pub mod collect;
pub mod policy;

pub use categorize::{Category, SYSTEM_DIRS};
pub use collect::{collect_messages, Collector, CollectorStats, SENTINEL_BURST};
pub use policy::{CollectionPolicy, PolicyMode};

#[cfg(test)]
mod tests {
    use super::*;
    use siren_cluster::{Campaign, CampaignConfig};
    use siren_net::{SimChannel, SimConfig};

    #[test]
    fn end_to_end_tiny_campaign_through_collector() {
        let campaign = Campaign::new(CampaignConfig {
            scale: 0.002,
            ..CampaignConfig::default()
        });
        let (tx, rx) = SimChannel::create(SimConfig::perfect());
        let mut collector = Collector::new(&tx, PolicyMode::Selective);
        campaign.run(|ctx| collector.observe(&ctx));
        let stats = collector.stats().clone();
        assert!(stats.observed > 0);
        assert!(stats.skipped_nonzero_rank > 0);
        assert_eq!(stats.errors, 0);

        let (msgs, decode_errors) = rx.drain_messages();
        assert_eq!(decode_errors, 0);
        assert_eq!(msgs.len() as u64, stats.datagrams_sent);
        assert!(!msgs.is_empty());
    }
}
