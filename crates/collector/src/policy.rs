//! The Table 1 collection-policy matrix.
//!
//! | Collected info | System exe | User exe | Python interp | Python script |
//! |---|---|---|---|---|
//! | File metadata | ✓ | ✓ | ✓ | ✓ |
//! | Libraries     | ✓ | ✓ | ✓ | ✗ |
//! | Modules       | ✗ | ✓ | ✗ | ✗ |
//! | Compilers     | ✗ | ✓ | ✗ | ✗ |
//! | Memory map    | ✗ | ✓ | ✓ | ✗ |
//! | File_H        | ✗ | ✓ | ✗ | ✓ |
//! | Strings_H     | ✗ | ✓ | ✗ | ✗ |
//! | Symbols_H     | ✗ | ✓ | ✗ | ✗ |
//!
//! The rationale is overhead: "it is unnecessary to repeatedly hash an
//! executable like bash from the /usr/bin/ system directory". The
//! `CollectEverything` mode disables the policy for the ablation bench
//! that quantifies exactly how much the selectivity saves.

use crate::categorize::Category;

/// Which data categories to collect for one process observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionPolicy {
    /// Executable file metadata (always on).
    pub file_metadata: bool,
    /// Loaded shared objects + their list hash.
    pub libraries: bool,
    /// Loaded modules + their list hash.
    pub modules: bool,
    /// Compiler identification strings + their list hash.
    pub compilers: bool,
    /// Memory-mapped regions + their list hash.
    pub memory_map: bool,
    /// SSDeep hash of the raw executable.
    pub file_hash: bool,
    /// SSDeep hash of the printable strings.
    pub strings_hash: bool,
    /// SSDeep hash of the global symbols.
    pub symbols_hash: bool,
}

/// Policy selection mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyMode {
    /// Table 1 selectivity (production behaviour).
    Selective,
    /// Collect every category for every process (ablation baseline).
    CollectEverything,
}

impl CollectionPolicy {
    /// Policy row for a process category under the given mode.
    pub fn for_category(cat: Category, mode: PolicyMode) -> Self {
        if mode == PolicyMode::CollectEverything {
            return Self {
                file_metadata: true,
                libraries: true,
                modules: true,
                compilers: true,
                memory_map: true,
                file_hash: true,
                strings_hash: true,
                symbols_hash: true,
            };
        }
        match cat {
            Category::System => Self {
                file_metadata: true,
                libraries: true,
                modules: false,
                compilers: false,
                memory_map: false,
                file_hash: false,
                strings_hash: false,
                symbols_hash: false,
            },
            Category::User => Self {
                file_metadata: true,
                libraries: true,
                modules: true,
                compilers: true,
                memory_map: true,
                file_hash: true,
                strings_hash: true,
                symbols_hash: true,
            },
            Category::Python => Self {
                file_metadata: true,
                libraries: true,
                modules: false,
                compilers: false,
                memory_map: true,
                file_hash: false,
                strings_hash: false,
                symbols_hash: false,
            },
        }
    }

    /// The Python-script (LAYER=SCRIPT) policy row: metadata plus the
    /// script's own fuzzy hash. Scripts are not compiled binaries, so
    /// libraries/compilers/symbols do not apply.
    pub fn for_python_script() -> Self {
        Self {
            file_metadata: true,
            libraries: false,
            modules: false,
            compilers: false,
            memory_map: false,
            file_hash: true,
            strings_hash: false,
            symbols_hash: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_system_row() {
        let p = CollectionPolicy::for_category(Category::System, PolicyMode::Selective);
        assert!(p.file_metadata && p.libraries);
        assert!(!p.modules && !p.compilers && !p.memory_map);
        assert!(!p.file_hash && !p.strings_hash && !p.symbols_hash);
    }

    #[test]
    fn table_1_user_row_collects_everything() {
        let p = CollectionPolicy::for_category(Category::User, PolicyMode::Selective);
        assert!(
            p.file_metadata
                && p.libraries
                && p.modules
                && p.compilers
                && p.memory_map
                && p.file_hash
                && p.strings_hash
                && p.symbols_hash
        );
    }

    #[test]
    fn table_1_python_interpreter_row() {
        let p = CollectionPolicy::for_category(Category::Python, PolicyMode::Selective);
        assert!(p.file_metadata && p.libraries && p.memory_map);
        assert!(!p.modules && !p.compilers);
        assert!(!p.file_hash && !p.strings_hash && !p.symbols_hash);
    }

    #[test]
    fn table_1_python_script_row() {
        let p = CollectionPolicy::for_python_script();
        assert!(p.file_metadata && p.file_hash);
        assert!(!p.libraries && !p.modules && !p.compilers && !p.memory_map);
        assert!(!p.strings_hash && !p.symbols_hash);
    }

    #[test]
    fn collect_everything_overrides() {
        for cat in [Category::System, Category::User, Category::Python] {
            let p = CollectionPolicy::for_category(cat, PolicyMode::CollectEverything);
            assert!(p.file_hash && p.strings_hash && p.symbols_hash && p.modules);
        }
    }
}
