//! Missing-field accounting: the data behind "approximately 0.02 % of the
//! jobs have missing fields that can be attributed to the loss of UDP
//! messages" (§3.1).
//!
//! Expected fields are derived from the process category (reconstructed
//! from the executable path, as the analysis layer does): system
//! executables should carry metadata + objects (+ objects hash), user
//! executables everything, Python interpreters metadata + objects + maps.
//! A record missing its metadata entirely is counted as missing one field
//! per expected category, since its path — and thus its category — is
//! unknowable; the conservative assumption is the largest expectation.

use crate::record::ProcessRecord;
use std::collections::BTreeMap;

/// Integrity summary over a consolidated record set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Distinct jobs observed.
    pub jobs_total: u64,
    /// Jobs with at least one missing field in some process record.
    pub jobs_with_missing: u64,
    /// Process records with at least one missing field.
    pub processes_with_missing: u64,
    /// Total records examined.
    pub processes_total: u64,
    /// Missing-field counts by field name (deterministic order).
    pub missing_by_field: BTreeMap<&'static str, u64>,
}

impl IntegrityReport {
    /// Fraction of jobs affected by loss (the paper's headline ~0.0002).
    pub fn job_loss_fraction(&self) -> f64 {
        if self.jobs_total == 0 {
            0.0
        } else {
            self.jobs_with_missing as f64 / self.jobs_total as f64
        }
    }
}

fn expected_fields(rec: &ProcessRecord) -> Vec<&'static str> {
    let Some(path) = rec.exe_path() else {
        // Metadata lost: category unknown; expect the superset.
        return vec!["meta", "objects", "objects_hash"];
    };
    let system_dirs = [
        "/etc/", "/dev/", "/usr/", "/bin/", "/boot/", "/lib/", "/opt/", "/sbin/", "/sys/",
        "/proc/", "/var/",
    ];
    let in_system = system_dirs.iter().any(|d| path.starts_with(d));
    if !in_system {
        vec![
            "meta",
            "objects",
            "objects_hash",
            "modules",
            "modules_hash",
            "compilers",
            "compilers_hash",
            "maps",
            "maps_hash",
            "file_hash",
            "strings_hash",
            "symbols_hash",
        ]
    } else if rec.is_python_interpreter() {
        vec!["meta", "objects", "objects_hash", "maps", "maps_hash"]
    } else {
        vec!["meta", "objects", "objects_hash"]
    }
}

fn has_field(rec: &ProcessRecord, field: &str) -> bool {
    match field {
        "meta" => !rec.meta.is_empty(),
        "objects" => rec.objects.is_some(),
        "objects_hash" => rec.objects_hash.is_some(),
        "modules" => rec.modules.is_some(),
        "modules_hash" => rec.modules_hash.is_some(),
        "compilers" => rec.compilers.is_some(),
        "compilers_hash" => rec.compilers_hash.is_some(),
        "maps" => rec.maps.is_some(),
        "maps_hash" => rec.maps_hash.is_some(),
        "file_hash" => rec.file_hash.is_some(),
        "strings_hash" => rec.strings_hash.is_some(),
        "symbols_hash" => rec.symbols_hash.is_some(),
        _ => unreachable!("unknown field {field}"),
    }
}

/// Compute the integrity report for a consolidated record set.
pub fn integrity_report(records: &[ProcessRecord]) -> IntegrityReport {
    let mut report = IntegrityReport {
        processes_total: records.len() as u64,
        ..Default::default()
    };
    let mut jobs = std::collections::HashSet::new();
    let mut jobs_missing = std::collections::HashSet::new();

    for rec in records {
        jobs.insert(rec.key.job_id);
        let mut missing_here = false;
        for field in expected_fields(rec) {
            if !has_field(rec, field) {
                *report.missing_by_field.entry(field).or_insert(0) += 1;
                missing_here = true;
            }
        }
        if missing_here {
            report.processes_with_missing += 1;
            jobs_missing.insert(rec.key.job_id);
        }
    }

    report.jobs_total = jobs.len() as u64;
    report.jobs_with_missing = jobs_missing.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::parse_kv;
    use siren_db::Record;
    use siren_wire::{Layer, MessageType};

    fn rec(job: u64, path: Option<&str>) -> ProcessRecord {
        let row = Record {
            job_id: job,
            step_id: 0,
            pid: 1,
            exe_hash: "h".into(),
            host: "n".into(),
            time: 1,
            layer: Layer::SelfExe,
            mtype: MessageType::Meta,
            content: String::new(),
        };
        let mut r = ProcessRecord::new(&row);
        if let Some(p) = path {
            r.meta = parse_kv(&format!("path={p};uid=1001;user=user_1"));
        }
        r
    }

    fn complete_system(job: u64) -> ProcessRecord {
        let mut r = rec(job, Some("/usr/bin/bash"));
        r.objects = Some(vec!["/l.so".into()]);
        r.objects_hash = Some("3:a:b".into());
        r
    }

    #[test]
    fn complete_records_report_clean() {
        let records = vec![complete_system(1), complete_system(2)];
        let report = integrity_report(&records);
        assert_eq!(report.jobs_total, 2);
        assert_eq!(report.jobs_with_missing, 0);
        assert_eq!(report.processes_with_missing, 0);
        assert_eq!(report.job_loss_fraction(), 0.0);
    }

    #[test]
    fn missing_objects_detected() {
        let mut broken = complete_system(1);
        broken.objects = None;
        let report = integrity_report(&[broken, complete_system(2)]);
        assert_eq!(report.jobs_with_missing, 1);
        assert_eq!(report.processes_with_missing, 1);
        assert_eq!(report.missing_by_field["objects"], 1);
        assert!((report.job_loss_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn user_records_expect_all_fields() {
        let mut r = rec(1, Some("/users/u/app"));
        r.objects = Some(vec![]);
        r.objects_hash = Some("3:a:b".into());
        // modules/compilers/maps/hashes all missing:
        let report = integrity_report(&[r]);
        assert!(report.missing_by_field.len() >= 8);
        assert_eq!(report.processes_with_missing, 1);
    }

    #[test]
    fn lost_metadata_counts_as_missing() {
        let r = rec(1, None);
        let report = integrity_report(&[r]);
        assert_eq!(report.processes_with_missing, 1);
        assert!(report.missing_by_field.contains_key("meta"));
    }

    #[test]
    fn empty_input() {
        let report = integrity_report(&[]);
        assert_eq!(report.jobs_total, 0);
        assert_eq!(report.job_loss_fraction(), 0.0);
    }
}
