//! # siren-consolidate — post-processing: messages → per-process records
//!
//! The paper (§3.1, "Post-processing and Analysis"):
//!
//! > Post-processing of UDP messages from the database includes the
//! > merging of multiple UDP message chunks into single data records per
//! > process. Information about Python scripts is merged into their
//! > parent (Python interpreter) rows. The result is a single database
//! > entry for each process.
//!
//! Chunk merging already happened at the receiver (`siren-wire`'s
//! reassembler); this crate performs the *semantic* consolidation:
//! grouping the per-type rows of one process observation into a
//! [`ProcessRecord`], attaching SCRIPT-layer rows to their interpreter
//! parent, extracting imported Python packages from memory maps, and
//! producing the missing-field [`IntegrityReport`] behind the paper's
//! "~0.02 % of jobs have missing fields" observation.

pub mod integrity;
pub mod record;

pub use integrity::{integrity_report, IntegrityReport};
pub use record::{parse_kv, parse_list, ProcessRecord, ScriptRecord};

use siren_db::{Database, Record};
use siren_wire::{Layer, MessageType, ProcessKey};
use std::collections::HashMap;

/// Consolidation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsolidateStats {
    /// SELF-layer rows consumed.
    pub self_rows: u64,
    /// SCRIPT-layer rows consumed.
    pub script_rows: u64,
    /// Scripts successfully merged into interpreter records.
    pub merged_scripts: u64,
    /// Scripts whose parent interpreter record was never seen (its
    /// messages were all lost).
    pub orphan_scripts: u64,
    /// Consolidated process records produced.
    pub processes: u64,
}

/// Result of consolidation.
#[derive(Debug)]
pub struct Consolidated {
    /// One record per observed process, deterministic order (job id,
    /// host, time, pid, exe hash).
    pub records: Vec<ProcessRecord>,
    /// Statistics.
    pub stats: ConsolidateStats,
}

/// Incremental consolidation state: feed rows with [`Consolidator::push_row`]
/// as they arrive (a streaming epoch, a WAL replay, a database scan) and
/// call [`Consolidator::finish`] once the input is complete. Feeding the
/// same row twice is idempotent — grouping is by process key and field
/// absorption overwrites in place — which is what lets a restarted
/// service re-ingest a partially-persisted epoch without duplicating
/// records.
#[derive(Debug, Default)]
pub struct Consolidator {
    stats: ConsolidateStats,
    by_key: HashMap<ProcessKey, ProcessRecord>,
    scripts: Vec<Record>,
}

impl Consolidator {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one database row into the state.
    pub fn push_row(&mut self, row: &Record) {
        match row.layer {
            Layer::SelfExe => {
                self.stats.self_rows += 1;
                let key = key_of(row);
                self.by_key
                    .entry(key)
                    .or_insert_with(|| ProcessRecord::new(row))
                    .absorb(row);
            }
            Layer::Script => {
                self.stats.script_rows += 1;
                self.scripts.push(row.clone());
            }
        }
    }

    /// Process records consolidated so far (before script merging).
    pub fn processes_seen(&self) -> usize {
        self.by_key.len()
    }

    /// Merge SCRIPT rows into their interpreter parents, sort, and emit.
    pub fn finish(self) -> Consolidated {
        let Self {
            mut stats,
            mut by_key,
            scripts,
        } = self;

        // Merge SCRIPT rows into their parent interpreter record. The
        // parent shares (job, step, pid, host, time) but has a different
        // exe_hash (the script's path hash), so matching ignores exe_hash.
        let mut parent_index: HashMap<(u64, u32, u32, String, u64), Vec<ProcessKey>> =
            HashMap::new();
        for key in by_key.keys() {
            parent_index
                .entry((key.job_id, key.step_id, key.pid, key.host.clone(), key.time))
                .or_default()
                .push(key.clone());
        }

        // Group script rows by their own key first (META + SCRIPT_H of
        // one script observation belong together).
        let mut script_groups: HashMap<ProcessKey, Vec<Record>> = HashMap::new();
        for row in scripts {
            script_groups.entry(key_of(&row)).or_default().push(row);
        }

        for (skey, rows) in script_groups {
            let parent_key = (
                skey.job_id,
                skey.step_id,
                skey.pid,
                skey.host.clone(),
                skey.time,
            );
            let matched = parent_index.get(&parent_key).and_then(|candidates| {
                candidates.iter().find(|k| {
                    by_key
                        .get(k)
                        .map(|r| r.is_python_interpreter())
                        .unwrap_or(false)
                })
            });
            match matched {
                Some(pk) => {
                    let parent = by_key.get_mut(pk).expect("key from index");
                    let mut script = ScriptRecord::default();
                    for row in &rows {
                        match row.mtype {
                            MessageType::Meta => {
                                let kv = parse_kv(&row.content);
                                script.path = kv.get("path").cloned();
                                script.meta = kv;
                            }
                            MessageType::ScriptHash => {
                                script.script_hash = Some(row.content.clone())
                            }
                            _ => {}
                        }
                    }
                    parent.script = Some(script);
                    stats.merged_scripts += 1;
                }
                None => stats.orphan_scripts += 1,
            }
        }

        let mut records: Vec<ProcessRecord> = by_key.into_values().collect();
        records.sort_by(record_order);
        stats.processes = records.len() as u64;

        Consolidated { records, stats }
    }
}

/// Consolidate a message database into per-process records (one-shot
/// wrapper over [`Consolidator`]).
pub fn consolidate(db: &Database) -> Consolidated {
    let mut consolidator = Consolidator::new();
    db.with_rows(|rows| {
        for row in rows {
            consolidator.push_row(row);
        }
    });
    consolidator.finish()
}

fn key_of(row: &Record) -> ProcessKey {
    ProcessKey {
        job_id: row.job_id,
        step_id: row.step_id,
        pid: row.pid,
        exe_hash: row.exe_hash.clone(),
        host: row.host.clone(),
        time: row.time,
        layer: row.layer,
    }
}

/// The canonical total order of consolidated records: `(job id, host,
/// time, pid, exe hash)`. [`consolidate`] sorts by it, and any
/// partitioned consolidation (the sharded ingest tier, fleet merges)
/// must merge by the *same* order to reproduce the serial output — use
/// this function rather than restating the key.
pub fn record_order(a: &ProcessRecord, b: &ProcessRecord) -> std::cmp::Ordering {
    (
        a.key.job_id,
        &a.key.host,
        a.key.time,
        a.key.pid,
        &a.key.exe_hash,
    )
        .cmp(&(
            b.key.job_id,
            &b.key.host,
            b.key.time,
            b.key.pid,
            &b.key.exe_hash,
        ))
}

/// Extract imported Python packages from an interpreter's memory-mapped
/// file list, given a known-package catalog (§4.4: "we overcome this
/// challenge by extracting the imported Python packages from the
/// memory-mapped files of the Python interpreter").
pub fn extract_python_imports<'a>(maps: &[String], catalog: &[&'a str]) -> Vec<&'a str> {
    catalog
        .iter()
        .filter(|pkg| {
            let dynload = format!("/_{pkg}.");
            let site = format!("site-packages/{pkg}/");
            maps.iter()
                .any(|m| m.contains(&dynload) || m.contains(&site))
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_db::Database;

    fn row(
        job: u64,
        pid: u32,
        exe_hash: &str,
        time: u64,
        layer: Layer,
        mtype: MessageType,
        content: &str,
    ) -> Record {
        Record {
            job_id: job,
            step_id: 0,
            pid,
            exe_hash: exe_hash.into(),
            host: "nid1".into(),
            time,
            layer,
            mtype,
            content: content.into(),
        }
    }

    fn meta(path: &str) -> String {
        format!("path={path};inode=1;size=10;mode=755;owner_uid=0;owner_gid=0;atime=1;mtime=1;ctime=1;uid=1004;gid=1004;ppid=7;user=user_4")
    }

    #[test]
    fn groups_rows_into_one_record_per_process() {
        let db = Database::in_memory();
        db.insert(row(
            1,
            10,
            "aa",
            5,
            Layer::SelfExe,
            MessageType::Meta,
            &meta("/usr/bin/bash"),
        ))
        .unwrap();
        db.insert(row(
            1,
            10,
            "aa",
            5,
            Layer::SelfExe,
            MessageType::Objects,
            "/l/a.so;/l/b.so",
        ))
        .unwrap();
        db.insert(row(
            1,
            10,
            "aa",
            5,
            Layer::SelfExe,
            MessageType::ObjectsHash,
            "3:x:y",
        ))
        .unwrap();
        // A different process, same pid+time but different exe hash
        // (exec() replacement) must remain a separate record.
        db.insert(row(
            1,
            10,
            "bb",
            5,
            Layer::SelfExe,
            MessageType::Meta,
            &meta("/usr/bin/srun"),
        ))
        .unwrap();

        let c = consolidate(&db);
        assert_eq!(c.records.len(), 2);
        let bash = c
            .records
            .iter()
            .find(|r| r.exe_path() == Some("/usr/bin/bash"))
            .unwrap();
        assert_eq!(bash.objects.as_ref().unwrap().len(), 2);
        assert_eq!(bash.objects_hash.as_deref(), Some("3:x:y"));
        assert_eq!(bash.user(), Some("user_4"));
    }

    #[test]
    fn scripts_merge_into_python_interpreter_parent() {
        let db = Database::in_memory();
        db.insert(row(
            2,
            20,
            "interp",
            9,
            Layer::SelfExe,
            MessageType::Meta,
            &meta("/usr/bin/python3.6"),
        ))
        .unwrap();
        db.insert(row(
            2,
            20,
            "script",
            9,
            Layer::Script,
            MessageType::Meta,
            &meta("/u/run.py"),
        ))
        .unwrap();
        db.insert(row(
            2,
            20,
            "script",
            9,
            Layer::Script,
            MessageType::ScriptHash,
            "3:s:h",
        ))
        .unwrap();

        let c = consolidate(&db);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.stats.merged_scripts, 1);
        assert_eq!(c.stats.orphan_scripts, 0);
        let script = c.records[0].script.as_ref().unwrap();
        assert_eq!(script.path.as_deref(), Some("/u/run.py"));
        assert_eq!(script.script_hash.as_deref(), Some("3:s:h"));
    }

    #[test]
    fn orphan_scripts_counted() {
        let db = Database::in_memory();
        db.insert(row(
            3,
            30,
            "script",
            9,
            Layer::Script,
            MessageType::ScriptHash,
            "3:s:h",
        ))
        .unwrap();
        let c = consolidate(&db);
        assert_eq!(c.stats.orphan_scripts, 1);
        assert_eq!(c.records.len(), 0);
    }

    #[test]
    fn scripts_do_not_merge_into_non_python_processes() {
        let db = Database::in_memory();
        db.insert(row(
            4,
            40,
            "bash",
            9,
            Layer::SelfExe,
            MessageType::Meta,
            &meta("/usr/bin/bash"),
        ))
        .unwrap();
        db.insert(row(
            4,
            40,
            "script",
            9,
            Layer::Script,
            MessageType::ScriptHash,
            "3:s:h",
        ))
        .unwrap();
        let c = consolidate(&db);
        assert_eq!(c.stats.orphan_scripts, 1);
        assert!(c.records[0].script.is_none());
    }

    #[test]
    fn python_import_extraction() {
        let maps = vec![
            "/usr/lib64/python3.6/lib-dynload/_heapq.cpython-36m.so".to_string(),
            "/usr/lib64/python3.6/site-packages/numpy/core/_impl.so".to_string(),
            "/lib64/libc.so.6".to_string(),
        ];
        let catalog = ["heapq", "numpy", "pandas"];
        assert_eq!(
            extract_python_imports(&maps, &catalog),
            vec!["heapq", "numpy"]
        );
        assert!(extract_python_imports(&[], &catalog).is_empty());
    }

    #[test]
    fn import_extraction_requires_exact_package_tokens() {
        // "pandas2" or "heapq_extra" style near-misses must not match.
        let maps = vec![
            "/usr/lib64/python3.6/site-packages/pandas2/x.so".to_string(),
            "/usr/lib64/python3.6/lib-dynload/_heapq_extra.cpython.so".to_string(),
        ];
        let catalog = ["heapq", "pandas"];
        assert!(extract_python_imports(&maps, &catalog).is_empty());
    }

    #[test]
    fn incremental_consolidator_equals_one_shot_and_is_idempotent() {
        let db = Database::in_memory();
        let rows = [
            row(
                2,
                20,
                "interp",
                9,
                Layer::SelfExe,
                MessageType::Meta,
                &meta("/usr/bin/python3.6"),
            ),
            row(
                2,
                20,
                "interp",
                9,
                Layer::SelfExe,
                MessageType::Objects,
                "/l/a.so;/l/b.so",
            ),
            row(
                2,
                20,
                "script",
                9,
                Layer::Script,
                MessageType::Meta,
                &meta("/u/run.py"),
            ),
            row(
                2,
                20,
                "script",
                9,
                Layer::Script,
                MessageType::ScriptHash,
                "3:s:h",
            ),
            row(
                1,
                10,
                "bash",
                5,
                Layer::SelfExe,
                MessageType::Meta,
                &meta("/usr/bin/bash"),
            ),
        ];
        for r in &rows {
            db.insert(r.clone()).unwrap();
        }
        let one_shot = consolidate(&db);

        // Incremental feed, rows pushed one at a time…
        let mut inc = Consolidator::new();
        for r in &rows {
            inc.push_row(r);
        }
        assert_eq!(inc.processes_seen(), 2);
        let incremental = inc.finish();
        assert_eq!(incremental.records, one_shot.records);
        assert_eq!(incremental.stats, one_shot.stats);

        // …and a double feed (a crash-recovery replay followed by a full
        // re-send) must land on the same records.
        let mut twice = Consolidator::new();
        for r in rows.iter().chain(rows.iter()) {
            twice.push_row(r);
        }
        let twice = twice.finish();
        assert_eq!(twice.records, one_shot.records);
        assert_eq!(twice.stats.processes, one_shot.stats.processes);
    }

    #[test]
    fn deterministic_record_order() {
        let db = Database::in_memory();
        for j in [5u64, 1, 3] {
            db.insert(row(
                j,
                1,
                "h",
                1,
                Layer::SelfExe,
                MessageType::Meta,
                &meta("/usr/bin/x"),
            ))
            .unwrap();
        }
        let c = consolidate(&db);
        let jobs: Vec<u64> = c.records.iter().map(|r| r.key.job_id).collect();
        assert_eq!(jobs, vec![1, 3, 5]);
    }
}
