//! The consolidated per-process record.

use siren_db::Record;
use siren_store::codec::{
    get_map, get_opt_list, get_opt_str, get_str, put_map, put_opt_list, put_opt_str, put_str, take,
};
use siren_wire::{Layer, MessageType, ProcessKey};
use std::collections::HashMap;

/// A merged SCRIPT-layer observation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScriptRecord {
    /// Script path.
    pub path: Option<String>,
    /// Parsed script file metadata.
    pub meta: HashMap<String, String>,
    /// `SCRIPT_H` — SSDeep hash of the script content.
    pub script_hash: Option<String>,
}

/// One process observation, fully consolidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessRecord {
    /// Identity (job, step, pid, exe-path hash, host, time, layer).
    pub key: ProcessKey,
    /// Parsed file metadata (`path`, `inode`, `size`, `uid`, `user`, …).
    pub meta: HashMap<String, String>,
    /// Loaded shared objects.
    pub objects: Option<Vec<String>>,
    /// Loaded modules.
    pub modules: Option<Vec<String>>,
    /// Compiler identification strings.
    pub compilers: Option<Vec<String>>,
    /// Memory-mapped file paths.
    pub maps: Option<Vec<String>>,
    /// `OBJECTS_H` (`OB_H`).
    pub objects_hash: Option<String>,
    /// `MODULES_H` (`MO_H`).
    pub modules_hash: Option<String>,
    /// `COMPILERS_H` (`CO_H`).
    pub compilers_hash: Option<String>,
    /// `MAPS_H`.
    pub maps_hash: Option<String>,
    /// `FILE_H` (`FI_H`).
    pub file_hash: Option<String>,
    /// `STRINGS_H` (`ST_H`).
    pub strings_hash: Option<String>,
    /// `SYMBOLS_H` (`SY_H`).
    pub symbols_hash: Option<String>,
    /// Merged Python script, when this is an interpreter process.
    pub script: Option<ScriptRecord>,
}

/// Parse a `k=v;k=v` content string.
pub fn parse_kv(content: &str) -> HashMap<String, String> {
    content
        .split(';')
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Parse a `;`-joined list, dropping empties.
pub fn parse_list(content: &str) -> Vec<String> {
    content
        .split(';')
        .filter(|s| !s.is_empty())
        .map(|s| s.to_string())
        .collect()
}

impl ProcessRecord {
    /// Empty record keyed like `row`.
    pub fn new(row: &Record) -> Self {
        Self {
            key: ProcessKey {
                job_id: row.job_id,
                step_id: row.step_id,
                pid: row.pid,
                exe_hash: row.exe_hash.clone(),
                host: row.host.clone(),
                time: row.time,
                layer: row.layer,
            },
            meta: HashMap::new(),
            objects: None,
            modules: None,
            compilers: None,
            maps: None,
            objects_hash: None,
            modules_hash: None,
            compilers_hash: None,
            maps_hash: None,
            file_hash: None,
            strings_hash: None,
            symbols_hash: None,
            script: None,
        }
    }

    /// Fold one database row into this record.
    pub fn absorb(&mut self, row: &Record) {
        match row.mtype {
            MessageType::Meta => self.meta = parse_kv(&row.content),
            MessageType::Objects => self.objects = Some(parse_list(&row.content)),
            MessageType::Modules => self.modules = Some(parse_list(&row.content)),
            MessageType::Compilers => self.compilers = Some(parse_list(&row.content)),
            MessageType::Maps => self.maps = Some(parse_list(&row.content)),
            MessageType::ObjectsHash => self.objects_hash = Some(row.content.clone()),
            MessageType::ModulesHash => self.modules_hash = Some(row.content.clone()),
            MessageType::CompilersHash => self.compilers_hash = Some(row.content.clone()),
            MessageType::MapsHash => self.maps_hash = Some(row.content.clone()),
            MessageType::FileHash => self.file_hash = Some(row.content.clone()),
            MessageType::StringsHash => self.strings_hash = Some(row.content.clone()),
            MessageType::SymbolsHash => self.symbols_hash = Some(row.content.clone()),
            // SCRIPT_H arrives on the SCRIPT layer and is handled by the
            // merging pass; ENV is reserved; END is transport control
            // that should never reach the database at all.
            MessageType::ScriptHash | MessageType::Env | MessageType::End => {}
        }
    }

    /// Encode to a self-contained binary payload (length-prefixed
    /// strings, little-endian integers) for the consolidated-record
    /// store. Maps are written in sorted key order so equal records
    /// encode to equal bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&self.key.job_id.to_le_bytes());
        out.extend_from_slice(&self.key.step_id.to_le_bytes());
        out.extend_from_slice(&self.key.pid.to_le_bytes());
        out.extend_from_slice(&self.key.time.to_le_bytes());
        out.push(match self.key.layer {
            Layer::SelfExe => 0,
            Layer::Script => 1,
        });
        put_str(&mut out, &self.key.exe_hash);
        put_str(&mut out, &self.key.host);
        put_map(&mut out, &self.meta);
        for list in [&self.objects, &self.modules, &self.compilers, &self.maps] {
            put_opt_list(&mut out, list);
        }
        for hash in [
            &self.objects_hash,
            &self.modules_hash,
            &self.compilers_hash,
            &self.maps_hash,
            &self.file_hash,
            &self.strings_hash,
            &self.symbols_hash,
        ] {
            put_opt_str(&mut out, hash);
        }
        match &self.script {
            None => out.push(0),
            Some(script) => {
                out.push(1);
                put_opt_str(&mut out, &script.path);
                put_map(&mut out, &script.meta);
                put_opt_str(&mut out, &script.script_hash);
            }
        }
        out
    }

    /// Decode a payload produced by [`ProcessRecord::encode`]. `None` on
    /// any structural inconsistency (never panics).
    pub fn decode(data: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let job_id = u64::from_le_bytes(take(data, &mut pos, 8)?.try_into().ok()?);
        let step_id = u32::from_le_bytes(take(data, &mut pos, 4)?.try_into().ok()?);
        let pid = u32::from_le_bytes(take(data, &mut pos, 4)?.try_into().ok()?);
        let time = u64::from_le_bytes(take(data, &mut pos, 8)?.try_into().ok()?);
        let layer = match take(data, &mut pos, 1)?[0] {
            0 => Layer::SelfExe,
            1 => Layer::Script,
            _ => return None,
        };
        let exe_hash = get_str(data, &mut pos)?;
        let host = get_str(data, &mut pos)?;
        let meta = get_map(data, &mut pos)?;
        let mut lists = [const { None }; 4];
        for slot in &mut lists {
            *slot = get_opt_list(data, &mut pos)?;
        }
        let [objects, modules, compilers, maps] = lists;
        let mut hashes = [const { None }; 7];
        for slot in &mut hashes {
            *slot = get_opt_str(data, &mut pos)?;
        }
        let [objects_hash, modules_hash, compilers_hash, maps_hash, file_hash, strings_hash, symbols_hash] =
            hashes;
        let script = match take(data, &mut pos, 1)?[0] {
            0 => None,
            1 => Some(ScriptRecord {
                path: get_opt_str(data, &mut pos)?,
                meta: get_map(data, &mut pos)?,
                script_hash: get_opt_str(data, &mut pos)?,
            }),
            _ => return None,
        };
        if pos != data.len() {
            return None; // trailing junk means a framing bug upstream
        }
        Some(Self {
            key: ProcessKey {
                job_id,
                step_id,
                pid,
                exe_hash,
                host,
                time,
                layer,
            },
            meta,
            objects,
            modules,
            compilers,
            maps,
            objects_hash,
            modules_hash,
            compilers_hash,
            maps_hash,
            file_hash,
            strings_hash,
            symbols_hash,
            script,
        })
    }

    /// Executable path (from metadata).
    pub fn exe_path(&self) -> Option<&str> {
        self.meta.get("path").map(|s| s.as_str())
    }

    /// Anonymized user name (from metadata).
    pub fn user(&self) -> Option<&str> {
        self.meta.get("user").map(|s| s.as_str())
    }

    /// Numeric uid (from metadata).
    pub fn uid(&self) -> Option<u32> {
        self.meta.get("uid").and_then(|s| s.parse().ok())
    }

    /// Executable file name (final path component).
    pub fn exe_name(&self) -> Option<&str> {
        self.exe_path().map(|p| p.rsplit('/').next().unwrap_or(p))
    }

    /// Is this record a Python interpreter process (by executable name)?
    pub fn is_python_interpreter(&self) -> bool {
        self.exe_name()
            .map(|n| {
                n.strip_prefix("python")
                    .map(|rest| {
                        rest.is_empty() || rest.chars().all(|c| c.is_ascii_digit() || c == '.')
                    })
                    .unwrap_or(false)
            })
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::Layer;

    fn base_row() -> Record {
        Record {
            job_id: 1,
            step_id: 0,
            pid: 2,
            exe_hash: "h".into(),
            host: "n".into(),
            time: 3,
            layer: Layer::SelfExe,
            mtype: MessageType::Meta,
            content: String::new(),
        }
    }

    #[test]
    fn parse_kv_basics() {
        let kv = parse_kv("a=1;b=two;c=;broken;d=4");
        assert_eq!(kv.get("a").unwrap(), "1");
        assert_eq!(kv.get("b").unwrap(), "two");
        assert_eq!(kv.get("c").unwrap(), "");
        assert!(!kv.contains_key("broken"));
        assert_eq!(kv.len(), 4);
    }

    #[test]
    fn parse_list_drops_empties() {
        assert_eq!(parse_list("a;b;;c"), vec!["a", "b", "c"]);
        assert!(parse_list("").is_empty());
    }

    #[test]
    fn absorb_each_type() {
        let mut rec = ProcessRecord::new(&base_row());
        let mut row = base_row();

        row.mtype = MessageType::Meta;
        row.content = "path=/usr/bin/x;uid=1001;user=user_1".into();
        rec.absorb(&row);
        assert_eq!(rec.exe_path(), Some("/usr/bin/x"));
        assert_eq!(rec.exe_name(), Some("x"));
        assert_eq!(rec.uid(), Some(1001));
        assert_eq!(rec.user(), Some("user_1"));

        row.mtype = MessageType::Objects;
        row.content = "/a.so;/b.so".into();
        rec.absorb(&row);
        assert_eq!(rec.objects.as_ref().unwrap().len(), 2);

        row.mtype = MessageType::FileHash;
        row.content = "3:abc:de".into();
        rec.absorb(&row);
        assert_eq!(rec.file_hash.as_deref(), Some("3:abc:de"));

        row.mtype = MessageType::Compilers;
        row.content = "GCC: (SUSE Linux) 13.2.1".into();
        rec.absorb(&row);
        assert_eq!(
            rec.compilers.as_ref().unwrap()[0],
            "GCC: (SUSE Linux) 13.2.1"
        );
    }

    #[test]
    fn codec_round_trips_minimal_and_full_records() {
        // Minimal: fresh record, everything None/empty.
        let minimal = ProcessRecord::new(&base_row());
        assert_eq!(ProcessRecord::decode(&minimal.encode()), Some(minimal));

        // Full: every field populated, including a merged script.
        let mut rec = ProcessRecord::new(&base_row());
        rec.meta = [("path", "/usr/bin/python3.10"), ("user", "user_7")]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        rec.objects = Some(vec!["/lib64/libc.so.6".into(), "/lib64/libm.so.6".into()]);
        rec.modules = Some(vec!["gcc/12.2".into()]);
        rec.compilers = Some(vec!["GCC: (SUSE) 13.2.1".into()]);
        rec.maps = Some(Vec::new());
        rec.objects_hash = Some("3:ab:cd".into());
        rec.modules_hash = Some("3:ef:gh".into());
        rec.compilers_hash = Some("3:ij:kl".into());
        rec.maps_hash = Some("3:mn:op".into());
        rec.file_hash = Some("6:qr:st".into());
        rec.strings_hash = Some("6:uv:wx".into());
        rec.symbols_hash = Some("6:yz:ab".into());
        rec.script = Some(ScriptRecord {
            path: Some("/u/run.py".into()),
            meta: [("inode".to_string(), "9".to_string())]
                .into_iter()
                .collect(),
            script_hash: Some("3:s:h".into()),
        });
        assert_eq!(ProcessRecord::decode(&rec.encode()), Some(rec.clone()));

        // Equal records encode identically (map order is canonicalized).
        let mut clone = rec.clone();
        clone.meta = rec.meta.clone().into_iter().collect();
        assert_eq!(clone.encode(), rec.encode());
    }

    #[test]
    fn codec_rejects_truncation_and_trailing_junk() {
        let mut rec = ProcessRecord::new(&base_row());
        rec.objects = Some(vec!["/a.so".into()]);
        rec.file_hash = Some("3:x:y".into());
        let enc = rec.encode();
        for cut in 0..enc.len() {
            assert_eq!(ProcessRecord::decode(&enc[..cut]), None, "cut {cut}");
        }
        let mut extra = enc.clone();
        extra.push(0);
        assert_eq!(ProcessRecord::decode(&extra), None);
    }

    #[test]
    fn python_interpreter_detection() {
        let mut rec = ProcessRecord::new(&base_row());
        let mut row = base_row();
        row.content = "path=/usr/bin/python3.10".into();
        rec.absorb(&row);
        assert!(rec.is_python_interpreter());

        row.content = "path=/usr/bin/bash".into();
        rec.absorb(&row);
        assert!(!rec.is_python_interpreter());

        // No metadata at all (META message lost): not an interpreter.
        let empty = ProcessRecord::new(&base_row());
        assert!(!empty.is_python_interpreter());
    }
}
