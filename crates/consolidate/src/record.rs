//! The consolidated per-process record.

use siren_db::Record;
use siren_wire::{MessageType, ProcessKey};
use std::collections::HashMap;

/// A merged SCRIPT-layer observation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScriptRecord {
    /// Script path.
    pub path: Option<String>,
    /// Parsed script file metadata.
    pub meta: HashMap<String, String>,
    /// `SCRIPT_H` — SSDeep hash of the script content.
    pub script_hash: Option<String>,
}

/// One process observation, fully consolidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessRecord {
    /// Identity (job, step, pid, exe-path hash, host, time, layer).
    pub key: ProcessKey,
    /// Parsed file metadata (`path`, `inode`, `size`, `uid`, `user`, …).
    pub meta: HashMap<String, String>,
    /// Loaded shared objects.
    pub objects: Option<Vec<String>>,
    /// Loaded modules.
    pub modules: Option<Vec<String>>,
    /// Compiler identification strings.
    pub compilers: Option<Vec<String>>,
    /// Memory-mapped file paths.
    pub maps: Option<Vec<String>>,
    /// `OBJECTS_H` (`OB_H`).
    pub objects_hash: Option<String>,
    /// `MODULES_H` (`MO_H`).
    pub modules_hash: Option<String>,
    /// `COMPILERS_H` (`CO_H`).
    pub compilers_hash: Option<String>,
    /// `MAPS_H`.
    pub maps_hash: Option<String>,
    /// `FILE_H` (`FI_H`).
    pub file_hash: Option<String>,
    /// `STRINGS_H` (`ST_H`).
    pub strings_hash: Option<String>,
    /// `SYMBOLS_H` (`SY_H`).
    pub symbols_hash: Option<String>,
    /// Merged Python script, when this is an interpreter process.
    pub script: Option<ScriptRecord>,
}

/// Parse a `k=v;k=v` content string.
pub fn parse_kv(content: &str) -> HashMap<String, String> {
    content
        .split(';')
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Parse a `;`-joined list, dropping empties.
pub fn parse_list(content: &str) -> Vec<String> {
    content
        .split(';')
        .filter(|s| !s.is_empty())
        .map(|s| s.to_string())
        .collect()
}

impl ProcessRecord {
    /// Empty record keyed like `row`.
    pub fn new(row: &Record) -> Self {
        Self {
            key: ProcessKey {
                job_id: row.job_id,
                step_id: row.step_id,
                pid: row.pid,
                exe_hash: row.exe_hash.clone(),
                host: row.host.clone(),
                time: row.time,
                layer: row.layer,
            },
            meta: HashMap::new(),
            objects: None,
            modules: None,
            compilers: None,
            maps: None,
            objects_hash: None,
            modules_hash: None,
            compilers_hash: None,
            maps_hash: None,
            file_hash: None,
            strings_hash: None,
            symbols_hash: None,
            script: None,
        }
    }

    /// Fold one database row into this record.
    pub fn absorb(&mut self, row: &Record) {
        match row.mtype {
            MessageType::Meta => self.meta = parse_kv(&row.content),
            MessageType::Objects => self.objects = Some(parse_list(&row.content)),
            MessageType::Modules => self.modules = Some(parse_list(&row.content)),
            MessageType::Compilers => self.compilers = Some(parse_list(&row.content)),
            MessageType::Maps => self.maps = Some(parse_list(&row.content)),
            MessageType::ObjectsHash => self.objects_hash = Some(row.content.clone()),
            MessageType::ModulesHash => self.modules_hash = Some(row.content.clone()),
            MessageType::CompilersHash => self.compilers_hash = Some(row.content.clone()),
            MessageType::MapsHash => self.maps_hash = Some(row.content.clone()),
            MessageType::FileHash => self.file_hash = Some(row.content.clone()),
            MessageType::StringsHash => self.strings_hash = Some(row.content.clone()),
            MessageType::SymbolsHash => self.symbols_hash = Some(row.content.clone()),
            // SCRIPT_H arrives on the SCRIPT layer and is handled by the
            // merging pass; ENV is reserved; END is transport control
            // that should never reach the database at all.
            MessageType::ScriptHash | MessageType::Env | MessageType::End => {}
        }
    }

    /// Executable path (from metadata).
    pub fn exe_path(&self) -> Option<&str> {
        self.meta.get("path").map(|s| s.as_str())
    }

    /// Anonymized user name (from metadata).
    pub fn user(&self) -> Option<&str> {
        self.meta.get("user").map(|s| s.as_str())
    }

    /// Numeric uid (from metadata).
    pub fn uid(&self) -> Option<u32> {
        self.meta.get("uid").and_then(|s| s.parse().ok())
    }

    /// Executable file name (final path component).
    pub fn exe_name(&self) -> Option<&str> {
        self.exe_path().map(|p| p.rsplit('/').next().unwrap_or(p))
    }

    /// Is this record a Python interpreter process (by executable name)?
    pub fn is_python_interpreter(&self) -> bool {
        self.exe_name()
            .map(|n| {
                n.strip_prefix("python")
                    .map(|rest| {
                        rest.is_empty() || rest.chars().all(|c| c.is_ascii_digit() || c == '.')
                    })
                    .unwrap_or(false)
            })
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::Layer;

    fn base_row() -> Record {
        Record {
            job_id: 1,
            step_id: 0,
            pid: 2,
            exe_hash: "h".into(),
            host: "n".into(),
            time: 3,
            layer: Layer::SelfExe,
            mtype: MessageType::Meta,
            content: String::new(),
        }
    }

    #[test]
    fn parse_kv_basics() {
        let kv = parse_kv("a=1;b=two;c=;broken;d=4");
        assert_eq!(kv.get("a").unwrap(), "1");
        assert_eq!(kv.get("b").unwrap(), "two");
        assert_eq!(kv.get("c").unwrap(), "");
        assert!(!kv.contains_key("broken"));
        assert_eq!(kv.len(), 4);
    }

    #[test]
    fn parse_list_drops_empties() {
        assert_eq!(parse_list("a;b;;c"), vec!["a", "b", "c"]);
        assert!(parse_list("").is_empty());
    }

    #[test]
    fn absorb_each_type() {
        let mut rec = ProcessRecord::new(&base_row());
        let mut row = base_row();

        row.mtype = MessageType::Meta;
        row.content = "path=/usr/bin/x;uid=1001;user=user_1".into();
        rec.absorb(&row);
        assert_eq!(rec.exe_path(), Some("/usr/bin/x"));
        assert_eq!(rec.exe_name(), Some("x"));
        assert_eq!(rec.uid(), Some(1001));
        assert_eq!(rec.user(), Some("user_1"));

        row.mtype = MessageType::Objects;
        row.content = "/a.so;/b.so".into();
        rec.absorb(&row);
        assert_eq!(rec.objects.as_ref().unwrap().len(), 2);

        row.mtype = MessageType::FileHash;
        row.content = "3:abc:de".into();
        rec.absorb(&row);
        assert_eq!(rec.file_hash.as_deref(), Some("3:abc:de"));

        row.mtype = MessageType::Compilers;
        row.content = "GCC: (SUSE Linux) 13.2.1".into();
        rec.absorb(&row);
        assert_eq!(
            rec.compilers.as_ref().unwrap()[0],
            "GCC: (SUSE Linux) 13.2.1"
        );
    }

    #[test]
    fn python_interpreter_detection() {
        let mut rec = ProcessRecord::new(&base_row());
        let mut row = base_row();
        row.content = "path=/usr/bin/python3.10".into();
        rec.absorb(&row);
        assert!(rec.is_python_interpreter());

        row.content = "path=/usr/bin/bash".into();
        rec.absorb(&row);
        assert!(!rec.is_python_interpreter());

        // No metadata at all (META message lost): not an interpreter.
        let empty = ProcessRecord::new(&base_row());
        assert!(!empty.is_python_interpreter());
    }
}
