//! Multi-cluster deployments: K independent clusters streaming into one
//! sharded ingest service.
//!
//! Each cluster runs its own campaign and collector on its own thread
//! (collection is per-node and embarrassingly parallel in reality) and
//! pushes decoded messages into the shared [`IngestService`] through a
//! cloneable [`IngestProducer`]. Job-keyed routing interleaves the
//! clusters' traffic across shard workers; because the fleet assigns
//! disjoint job and host namespaces, the consolidated output is exactly
//! the sorted union of what each cluster would produce alone — a
//! property the integration tests assert.

use siren_cluster::{Campaign, CampaignStats, FleetConfig};
use siren_collector::{Collector, CollectorStats, PolicyMode};
use siren_consolidate::{integrity_report, ConsolidateStats, IntegrityReport, ProcessRecord};
use siren_ingest::{IngestConfig, IngestProducer, IngestService, ShardStats};
use siren_net::{Sender, SimChannel, SimConfig};
use siren_service::{EpochSummary, SirenDaemon};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fleet deployment configuration.
#[derive(Debug, Clone)]
pub struct FleetDeploymentConfig {
    /// Cluster count and per-cluster campaign derivation.
    pub fleet: FleetConfig,
    /// Collection policy (shared by all clusters).
    pub policy: PolicyMode,
    /// Ingest tier shared by the whole fleet.
    pub ingest: IngestConfig,
    /// Channel perturbations for the epoch-mode transport
    /// ([`FleetDeployment::run_as_epochs`]); the concurrent in-process
    /// mode ([`FleetDeployment::run`]) is lossless by construction and
    /// ignores this.
    pub channel: SimConfig,
}

impl Default for FleetDeploymentConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            policy: PolicyMode::Selective,
            ingest: IngestConfig::default(),
            channel: SimConfig::perfect(),
        }
    }
}

/// Per-cluster outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Cluster index.
    pub cluster: usize,
    /// Workload statistics.
    pub campaign_stats: CampaignStats,
    /// Collection statistics.
    pub collector_stats: CollectorStats,
}

/// Everything a fleet run produces.
#[derive(Debug)]
pub struct FleetResult {
    /// Consolidated records of the whole fleet, in the canonical order.
    pub records: Vec<ProcessRecord>,
    /// Summed consolidation statistics.
    pub consolidate_stats: ConsolidateStats,
    /// Per-shard ingest telemetry.
    pub shard_stats: Vec<ShardStats>,
    /// Per-cluster campaign/collection outcomes, cluster order.
    pub clusters: Vec<ClusterOutcome>,
    /// Missing-field integrity report over the merged records.
    pub integrity: IntegrityReport,
    /// End-of-campaign sentinels observed (one burst per cluster).
    pub sentinels_seen: u64,
}

/// A collector transport that decodes datagrams and feeds them straight
/// into the ingest service — the in-process analogue of the sharded UDP
/// path, used where the fleet experiment wants losslessness.
struct ProducerSender {
    producer: IngestProducer,
    sent: AtomicU64,
}

impl Sender for ProducerSender {
    fn send(&self, datagram: &[u8]) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        // Graceful-failure doctrine: an undecodable datagram is dropped
        // silently, exactly as a UDP receiver would shed it.
        let _ = self.producer.push_datagram(datagram);
    }

    fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

/// A configured fleet deployment, ready to run.
pub struct FleetDeployment {
    cfg: FleetDeploymentConfig,
}

impl FleetDeployment {
    /// Create a fleet deployment.
    pub fn new(cfg: FleetDeploymentConfig) -> Self {
        Self { cfg }
    }

    /// Run every cluster concurrently into one ingest service and merge.
    pub fn run(self) -> FleetResult {
        let service = IngestService::spawn(self.cfg.ingest.clone()).expect("spawn ingest");
        let policy = self.cfg.policy;

        let mut outcomes: Vec<ClusterOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.cfg.fleet.clusters)
                .map(|k| {
                    let campaign_cfg = self.cfg.fleet.campaign_config(k);
                    let producer = service.producer();
                    scope.spawn(move || {
                        let campaign = Campaign::new(campaign_cfg);
                        let sender = ProducerSender {
                            producer,
                            sent: AtomicU64::new(0),
                        };
                        let mut collector =
                            Collector::new(&sender, policy).with_sender_id(k as u32);
                        let campaign_stats = campaign.run(|ctx| collector.observe(&ctx));
                        // Each sender announces its own end of campaign.
                        collector.end_campaign();
                        ClusterOutcome {
                            cluster: k,
                            campaign_stats,
                            collector_stats: collector.stats().clone(),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cluster thread"))
                .collect()
        });
        outcomes.sort_by_key(|o| o.cluster);

        let ingested = service.finish().expect("ingest finish");
        let integrity = integrity_report(&ingested.records);
        FleetResult {
            records: ingested.records,
            consolidate_stats: ingested.stats,
            shard_stats: ingested.shard_stats,
            clusters: outcomes,
            integrity,
            sentinels_seen: ingested.sentinels_seen,
        }
    }

    /// Run the fleet through a long-running service daemon, one cluster
    /// campaign per **epoch**: cluster `k`'s campaign streams through a
    /// simulated channel (with this config's perturbations) into
    /// `daemon`, its epoch-tagged sentinel burst closes and commits the
    /// epoch, and the next cluster begins the next one. The daemon
    /// persists every epoch, so the fleet's history survives restarts
    /// and is queryable across epochs afterwards.
    pub fn run_as_epochs(self, daemon: &mut SirenDaemon) -> std::io::Result<EpochFleetResult> {
        let mut epochs = Vec::with_capacity(self.cfg.fleet.clusters);
        let mut clusters = Vec::with_capacity(self.cfg.fleet.clusters);
        for k in 0..self.cfg.fleet.clusters {
            let epoch = daemon.begin_epoch()?;
            let campaign = Campaign::new(self.cfg.fleet.campaign_config(k));
            let (tx, rx) = SimChannel::create(self.cfg.channel);
            let mut collector = Collector::new(&tx, self.cfg.policy)
                .with_sender_id(k as u32)
                .with_epoch(epoch);
            let campaign_stats = campaign.run(|ctx| collector.observe(&ctx));
            collector.end_campaign();
            clusters.push(ClusterOutcome {
                cluster: k,
                campaign_stats,
                collector_stats: collector.stats().clone(),
            });

            let (messages, decode_errors) = rx.drain_messages();
            assert_eq!(decode_errors, 0, "sim channel never corrupts datagrams");
            // Channel reordering can deliver a payload datagram *after*
            // the first sentinel copy. Closing on that first copy would
            // push the straggler into a spurious next epoch, so deliver
            // every payload first and the sentinel burst last — the
            // runner knows the campaign boundary; only the wire doesn't.
            let (sentinels, payloads): (Vec<_>, Vec<_>) = messages
                .into_iter()
                .partition(|m| m.header.mtype == siren_wire::MessageType::End);
            let mut summary = None;
            for msg in payloads.into_iter().chain(sentinels) {
                if let Some(s) = daemon.push(msg)? {
                    summary = Some(s);
                }
            }
            // Injected loss can eat the whole sentinel burst; close on
            // the campaign boundary the runner already knows.
            let summary = match summary {
                Some(s) => s,
                None => daemon.close_epoch()?,
            };
            epochs.push(summary);
        }
        Ok(EpochFleetResult { epochs, clusters })
    }
}

/// Outcome of an epoch-mode fleet run ([`FleetDeployment::run_as_epochs`]).
/// The committed records stay inside the daemon — query them through
/// [`SirenDaemon::query`].
#[derive(Debug)]
pub struct EpochFleetResult {
    /// One commit receipt per cluster campaign, epoch order.
    pub epochs: Vec<EpochSummary>,
    /// Per-cluster campaign/collection outcomes, cluster order.
    pub clusters: Vec<ClusterOutcome>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Deployment, DeploymentConfig, IngestMode, TransportKind};
    use siren_cluster::CampaignConfig;

    fn tiny_fleet(clusters: usize, shards: usize) -> FleetDeploymentConfig {
        FleetDeploymentConfig {
            fleet: FleetConfig {
                clusters,
                base: CampaignConfig {
                    scale: 0.001,
                    ..CampaignConfig::default()
                },
                ..FleetConfig::default()
            },
            ingest: IngestConfig::with_shards_unclamped(shards),
            ..FleetDeploymentConfig::default()
        }
    }

    #[test]
    fn fleet_equals_union_of_serial_cluster_runs() {
        let cfg = tiny_fleet(2, 3);
        let fleet_records = FleetDeployment::new(cfg.clone()).run().records;

        // Reference: each cluster alone, through the serial pipeline.
        let mut expected: Vec<_> = (0..cfg.fleet.clusters)
            .flat_map(|k| {
                let dc = DeploymentConfig {
                    campaign: cfg.fleet.campaign_config(k),
                    transport: TransportKind::Simulated,
                    ingest: IngestMode::Serial,
                    ..DeploymentConfig::default()
                };
                Deployment::new(dc).run().records
            })
            .collect();
        expected.sort_by(siren_consolidate::record_order);

        assert_eq!(fleet_records.len(), expected.len());
        assert_eq!(
            fleet_records, expected,
            "fleet must equal union of solo runs"
        );
    }

    #[test]
    fn epoch_mode_fleet_commits_one_epoch_per_cluster() {
        use siren_service::{ServiceConfig, SirenDaemon};

        let dir = std::env::temp_dir().join(format!("siren-fleet-epochs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = tiny_fleet(2, 1);
        let (mut daemon, _) = SirenDaemon::open(ServiceConfig::at(&dir)).unwrap();
        let result = FleetDeployment::new(cfg.clone())
            .run_as_epochs(&mut daemon)
            .unwrap();
        assert_eq!(result.epochs.len(), 2);
        assert_eq!(result.epochs[0].epoch, 0);
        assert_eq!(result.epochs[1].epoch, 1);
        assert!(result
            .epochs
            .iter()
            .all(|e| e.epoch_tag_mismatches == 0 && e.senders_closed == 1));

        // Each epoch holds exactly its cluster's serial-pipeline records.
        let query = daemon.snapshot();
        assert_eq!(query.epochs(), vec![0, 1]);
        for k in 0..2 {
            let dc = DeploymentConfig {
                campaign: cfg.fleet.campaign_config(k),
                transport: TransportKind::Simulated,
                ingest: IngestMode::Serial,
                ..DeploymentConfig::default()
            };
            let solo = Deployment::new(dc).run().records;
            let epoch_records: Vec<_> =
                query.epoch_records(k as u64).into_iter().cloned().collect();
            assert_eq!(epoch_records, solo, "epoch {k} equals solo cluster run");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fleet_namespaces_and_sentinels() {
        let cfg = tiny_fleet(3, 2);
        let result = FleetDeployment::new(cfg.clone()).run();
        assert_eq!(result.clusters.len(), 3);
        // One sentinel burst per cluster sender.
        assert_eq!(
            result.sentinels_seen,
            (3 * siren_collector::SENTINEL_BURST) as u64
        );
        // Records from every cluster's job namespace are present.
        for k in 0..3 {
            let base = cfg.fleet.campaign_config(k).job_id_base;
            let stride = cfg.fleet.job_stride;
            assert!(
                result
                    .records
                    .iter()
                    .any(|r| (base..base + stride).contains(&r.key.job_id)),
                "no records from cluster {k}"
            );
        }
        // Integrity: lossless in-process transport loses nothing.
        assert_eq!(result.integrity.jobs_with_missing, 0);
        let total_procs: u64 = result
            .clusters
            .iter()
            .map(|c| c.campaign_stats.processes - c.campaign_stats.container_processes)
            .sum();
        assert_eq!(result.records.len() as u64, total_procs);
    }
}
