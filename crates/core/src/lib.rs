//! # siren-core — the SIREN framework, end to end
//!
//! This crate wires the full pipeline of the paper's Figure 1:
//!
//! ```text
//! workload simulator ──▶ siren.so collector ──▶ UDP (real or simulated)
//!        (siren-cluster)     (siren-collector)        (siren-net)
//!                                                        │
//!   analysis ◀── consolidation ◀── database ◀── receiver + reassembly
//! (siren-analysis)  (siren-consolidate)  (siren-db)     (siren-wire)
//! ```
//!
//! [`Deployment`] runs a complete opt-in campaign and returns the
//! consolidated per-process records plus statistics from every stage;
//! [`report`] renders the paper's tables and figures from those records.
//!
//! ## Quick start
//!
//! ```
//! use siren_core::{Deployment, DeploymentConfig};
//!
//! let mut cfg = DeploymentConfig::default();
//! cfg.campaign.scale = 0.002; // tiny demo campaign
//! let result = Deployment::new(cfg).run();
//! assert!(result.records.len() > 100);
//! println!("{}", siren_core::report::usage_report(&result.records));
//! ```

pub mod fleet;
pub mod pipeline;
pub mod report;

pub use fleet::{EpochFleetResult, FleetDeployment, FleetDeploymentConfig, FleetResult};
pub use pipeline::{Deployment, DeploymentConfig, DeploymentResult, IngestMode, TransportKind};

// Re-export the component crates under one roof so downstream users need
// a single dependency.
pub use siren_analysis as analysis;
pub use siren_cluster as cluster;
pub use siren_collector as collector;
pub use siren_consolidate as consolidate;
pub use siren_db as db;
pub use siren_elf as elf;
pub use siren_federation as federation;
pub use siren_fuzzy as fuzzy;
pub use siren_hash as hash;
pub use siren_ingest as ingest;
pub use siren_net as net;
pub use siren_obs as obs;
pub use siren_proto as proto;
pub use siren_service as service;
pub use siren_store as store;
pub use siren_text as text;
pub use siren_wire as wire;

use siren_consolidate::ProcessRecord;

/// Locate the UNKNOWN-case baseline for the Table-7 experiment: the
/// user-directory record with a nondescript `a.out` name carrying the
/// most fuzzy-hash columns (lost columns would weaken the baseline).
pub fn find_unknown_baseline(records: &[ProcessRecord]) -> Option<&ProcessRecord> {
    records
        .iter()
        .filter(|r| r.exe_name() == Some("a.out"))
        .max_by_key(|r| {
            [
                r.modules_hash.is_some(),
                r.compilers_hash.is_some(),
                r.objects_hash.is_some(),
                r.file_hash.is_some(),
                r.strings_hash.is_some(),
                r.symbols_hash.is_some(),
            ]
            .iter()
            .filter(|&&b| b)
            .count()
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_smoke() {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.002;
        let result = Deployment::new(cfg).run();
        assert!(result.records.len() > 100);
        assert_eq!(result.collector_stats.errors, 0);
        assert_eq!(
            result.reassembly_incomplete, 0,
            "perfect channel loses nothing"
        );
        assert!(find_unknown_baseline(&result.records).is_some());
    }
}
