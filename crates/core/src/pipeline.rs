//! The end-to-end deployment runner.

use siren_cluster::{Campaign, CampaignConfig, CampaignStats};
use siren_collector::{Collector, CollectorStats, PolicyMode};
use siren_consolidate::{
    consolidate, integrity_report, ConsolidateStats, IntegrityReport, ProcessRecord,
};
use siren_db::{Database, ReplayStats};
use siren_ingest::{IngestConfig, IngestMetrics, IngestService, ShardStats};
use siren_net::{ShardedUdpSender, SimChannel, SimConfig, UdpReceiver, UdpReceiverPool, UdpSender};
use siren_obs::{MetricsSnapshot, Registry};
use siren_wire::{
    parse_sentinel, CompleteMessage, Message, MessageType, Reassembler, DEFAULT_MAX_DATAGRAM,
};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Which transport carries the datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory simulated channel (deterministic; supports loss
    /// injection). The default for experiments.
    Simulated,
    /// Real UDP sockets over 127.0.0.1 (exercises the actual network
    /// stack; loss is whatever the loopback does under load).
    UdpLoopback,
}

/// How the receiver tier turns messages into consolidated records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One reassembler + one database on the caller's thread (the
    /// paper's single receiver process).
    Serial,
    /// The sharded ingest service: `n` worker threads, each owning a
    /// reassembler and a database partition, with parallel consolidation
    /// and a deterministic cross-shard merge. Output is identical to
    /// [`IngestMode::Serial`], record for record.
    Sharded(usize),
}

/// Batch size for the serial path's batched inserts (the sharded path
/// takes its own from [`IngestConfig`]).
const SERIAL_BATCH: usize = 256;

/// Full deployment configuration.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Workload parameters.
    pub campaign: CampaignConfig,
    /// Simulated-channel perturbations (ignored for UDP loopback).
    pub channel: SimConfig,
    /// Collection policy mode.
    pub policy: PolicyMode,
    /// Transport selection.
    pub transport: TransportKind,
    /// Receiver-tier selection.
    pub ingest: IngestMode,
    /// Clamp [`IngestMode::Sharded`] worker counts to the machine's
    /// `available_parallelism` (see [`IngestConfig::clamp_shards`]).
    /// Disable only for experiments that need an exact shard count.
    pub ingest_clamp: bool,
    /// Datagram size limit.
    pub max_datagram: usize,
    /// Optional WAL path for a persistent database. The sharded ingest
    /// tier appends `.shard<i>` per partition.
    pub db_path: Option<PathBuf>,
    /// How long a UDP drain waits in silence before concluding that
    /// every copy of the end-of-campaign sentinel was lost and giving
    /// up. The quiet counter resets on every received datagram, so an
    /// active campaign never trips it; this only bounds the
    /// all-sentinels-lost worst case.
    pub quiet_period: Duration,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            campaign: CampaignConfig::default(),
            channel: SimConfig::perfect(),
            policy: PolicyMode::Selective,
            transport: TransportKind::Simulated,
            ingest: IngestMode::Serial,
            ingest_clamp: true,
            max_datagram: DEFAULT_MAX_DATAGRAM,
            db_path: None,
            quiet_period: Duration::from_secs(10),
        }
    }
}

/// Everything a deployment run produces.
#[derive(Debug)]
pub struct DeploymentResult {
    /// Workload-generation statistics.
    pub campaign_stats: CampaignStats,
    /// Collector statistics.
    pub collector_stats: CollectorStats,
    /// Datagrams handed to the transport.
    pub datagrams_sent: u64,
    /// Datagrams dropped by injected loss (simulated transport) or lost
    /// in flight / shed under overload (UDP loopback).
    pub datagrams_dropped: u64,
    /// Datagrams delivered to the receiver.
    pub datagrams_delivered: u64,
    /// Logical messages fully reassembled.
    pub reassembly_complete: u64,
    /// Logical messages with lost chunks.
    pub reassembly_incomplete: u64,
    /// Duplicate chunks observed.
    pub reassembly_duplicates: u64,
    /// Rows stored in the database (all partitions).
    pub db_rows: u64,
    /// Consolidation statistics.
    pub consolidate_stats: ConsolidateStats,
    /// Consolidated per-process records — the analysis input.
    pub records: Vec<ProcessRecord>,
    /// Missing-field integrity report.
    pub integrity: IntegrityReport,
    /// Per-shard ingest telemetry (empty under [`IngestMode::Serial`]).
    pub shard_stats: Vec<ShardStats>,
    /// WAL replay on database open (all partitions): what a persistent
    /// deployment recovered from a previous run, including torn-tail
    /// bytes discarded. Zero for in-memory and fresh databases.
    pub replay: ReplayStats,
    /// The run's full metrics registry, snapshotted at finish: `net.*`
    /// transport counts plus everything the ingest tier recorded
    /// (`ingest.*` counters and latency histograms). Render with
    /// [`crate::report::telemetry_report`].
    pub metrics: MetricsSnapshot,
}

/// Stamp the transport-level counts into `registry` and snapshot it —
/// every deployment path ends here, so the telemetry always carries the
/// `net.*` series alongside whatever the ingest tier recorded.
fn seal_metrics(registry: &Registry, sent: u64, delivered: u64, dropped: u64) -> MetricsSnapshot {
    registry.counter("net.datagrams_sent").add(sent);
    registry.counter("net.datagrams_delivered").add(delivered);
    registry.counter("net.datagrams_dropped").add(dropped);
    registry.snapshot()
}

/// A configured deployment, ready to run.
pub struct Deployment {
    cfg: DeploymentConfig,
}

impl Deployment {
    /// Create a deployment.
    pub fn new(cfg: DeploymentConfig) -> Self {
        Self { cfg }
    }

    /// Run the full pipeline and consolidate the results.
    pub fn run(self) -> DeploymentResult {
        match (self.cfg.transport, self.cfg.ingest) {
            (TransportKind::Simulated, _) => self.run_simulated(),
            (TransportKind::UdpLoopback, IngestMode::Serial) => self.run_udp_serial(),
            (TransportKind::UdpLoopback, IngestMode::Sharded(shards)) => {
                self.run_udp_sharded(shards)
            }
        }
    }

    /// Offline ingest of an already-collected message vector, through
    /// whichever ingest mode the config selects.
    fn finish(
        cfg: &DeploymentConfig,
        campaign_stats: CampaignStats,
        collector_stats: CollectorStats,
        messages: Vec<Message>,
        datagrams_dropped: u64,
    ) -> DeploymentResult {
        match cfg.ingest {
            IngestMode::Serial => Self::finish_serial(
                cfg,
                campaign_stats,
                collector_stats,
                messages,
                datagrams_dropped,
            ),
            IngestMode::Sharded(shards) => Self::finish_sharded(
                cfg,
                campaign_stats,
                collector_stats,
                messages,
                datagrams_dropped,
                shards,
            ),
        }
    }

    fn finish_serial(
        cfg: &DeploymentConfig,
        campaign_stats: CampaignStats,
        collector_stats: CollectorStats,
        messages: Vec<Message>,
        datagrams_dropped: u64,
    ) -> DeploymentResult {
        let registry = Registry::new();
        let metrics = IngestMetrics::register(&registry);
        let mut reasm = Reassembler::new();
        let (db, replay) = match &cfg.db_path {
            Some(path) => Database::open(path).expect("open database WAL"),
            None => (Database::in_memory(), ReplayStats::default()),
        };
        metrics.replayed_records.add(replay.records);
        metrics.replay_tail_bytes.add(replay.corrupt_tail_bytes);

        // The serial path records the same `ingest.*` span points as the
        // sharded workers, so both modes render identically.
        let insert = |batch: Vec<CompleteMessage>| {
            let rows = batch.len() as u64;
            let start = std::time::Instant::now();
            db.insert_message_batch(batch)
                .expect("database batch insert");
            metrics.batch_insert_ns.record_duration(start.elapsed());
            metrics.batches.inc();
            metrics.rows_stored.add(rows);
        };
        let mut delivered = 0u64;
        let mut complete = 0u64;
        let mut batch: Vec<CompleteMessage> = Vec::with_capacity(SERIAL_BATCH);
        for msg in messages {
            if msg.header.mtype == MessageType::End {
                continue; // transport control, not data
            }
            delivered += 1;
            metrics.messages_received.inc();
            let push_start = std::time::Instant::now();
            let done = reasm.push(msg);
            metrics.reassembly_ns.record_duration(push_start.elapsed());
            if let Some(done) = done {
                complete += 1;
                metrics.reassembled.inc();
                batch.push(done);
                if batch.len() >= SERIAL_BATCH {
                    insert(std::mem::take(&mut batch));
                }
            }
        }
        let incomplete = reasm.drain_incomplete();
        let duplicates = reasm.duplicates;
        metrics.incomplete.add(incomplete.len() as u64);
        metrics.duplicates.add(duplicates);
        metrics.inconsistent.add(reasm.inconsistent);
        insert(batch);
        db.flush().expect("database flush");

        let consolidated = consolidate(&db);
        let integrity = integrity_report(&consolidated.records);
        let metrics = seal_metrics(
            &registry,
            collector_stats.datagrams_sent,
            delivered,
            datagrams_dropped,
        );

        DeploymentResult {
            campaign_stats,
            datagrams_sent: collector_stats.datagrams_sent,
            collector_stats,
            datagrams_dropped,
            datagrams_delivered: delivered,
            reassembly_complete: complete,
            reassembly_incomplete: incomplete.len() as u64,
            reassembly_duplicates: duplicates,
            db_rows: db.len() as u64,
            consolidate_stats: consolidated.stats,
            records: consolidated.records,
            integrity,
            shard_stats: Vec::new(),
            replay,
            metrics,
        }
    }

    fn finish_sharded(
        cfg: &DeploymentConfig,
        campaign_stats: CampaignStats,
        collector_stats: CollectorStats,
        messages: Vec<Message>,
        datagrams_dropped: u64,
        shards: usize,
    ) -> DeploymentResult {
        let registry = Registry::new();
        let mut service = IngestService::spawn(IngestConfig {
            shards,
            clamp_shards: cfg.ingest_clamp,
            wal_base: cfg.db_path.clone(),
            metrics: IngestMetrics::register(&registry),
            ..IngestConfig::default()
        })
        .expect("spawn ingest service");
        let mut delivered = 0u64;
        for msg in messages {
            if msg.header.mtype != MessageType::End {
                delivered += 1;
            }
            service.push(msg);
        }
        let ingested = service.finish().expect("ingest finish");
        let integrity = integrity_report(&ingested.records);
        let metrics = seal_metrics(
            &registry,
            collector_stats.datagrams_sent,
            delivered,
            datagrams_dropped,
        );

        DeploymentResult {
            campaign_stats,
            datagrams_sent: collector_stats.datagrams_sent,
            collector_stats,
            datagrams_dropped,
            datagrams_delivered: delivered,
            reassembly_complete: ingested.reassembly_complete(),
            reassembly_incomplete: ingested.reassembly_incomplete(),
            reassembly_duplicates: ingested.duplicates(),
            db_rows: ingested.db_rows(),
            consolidate_stats: ingested.stats,
            replay: ingested.replay_stats(),
            records: ingested.records,
            integrity,
            shard_stats: ingested.shard_stats,
            metrics,
        }
    }

    fn run_simulated(self) -> DeploymentResult {
        let campaign = Campaign::new(self.cfg.campaign.clone());
        let (tx, rx) = SimChannel::create(self.cfg.channel);
        let mut collector =
            Collector::new(&tx, self.cfg.policy).with_max_datagram(self.cfg.max_datagram);

        let campaign_stats = campaign.run(|ctx| collector.observe(&ctx));
        let collector_stats = collector.stats().clone();

        let (messages, decode_errors) = rx.drain_messages();
        assert_eq!(decode_errors, 0, "sim channel never corrupts datagrams");
        let dropped = rx.stats().dropped.load(Ordering::Relaxed);

        Self::finish(
            &self.cfg,
            campaign_stats,
            collector_stats,
            messages,
            dropped,
        )
    }

    fn run_udp_serial(self) -> DeploymentResult {
        let receiver = UdpReceiver::spawn(65_536).expect("bind loopback receiver");
        let sender = UdpSender::connect(receiver.local_addr()).expect("sender socket");
        let quiet_period = self.cfg.quiet_period;

        // Drain concurrently with the campaign: the receiver's bounded
        // channel holds 65k messages, and a campaign can emit more than
        // that — draining only afterwards would shed the tail of the
        // stream, including the END sentinel sent last.
        let drain = std::thread::Builder::new()
            .name("siren-drain".into())
            .spawn(move || {
                let mut messages = Vec::new();
                let sentinel =
                    drain_each_until_sentinel(&receiver, quiet_period, |m| messages.push(m));
                receiver.stop();
                (messages, sentinel)
            })
            .expect("spawn drain thread");

        let campaign = Campaign::new(self.cfg.campaign.clone());
        let mut collector =
            Collector::new(&sender, self.cfg.policy).with_max_datagram(self.cfg.max_datagram);
        let campaign_stats = campaign.run(|ctx| collector.observe(&ctx));
        // Announce end of campaign so the drain stops deterministically
        // on the sentinel instead of by timeout.
        collector.end_campaign();
        let collector_stats = collector.stats().clone();

        let (messages, sentinel) = drain.join().expect("drain thread");
        // The sentinel carries the sender's own datagram count — the
        // protocol-level way for a receiver to measure loss without
        // sharing memory with the sender. Fall back to the in-process
        // collector stats only if every sentinel copy was lost.
        let sent_claimed = sentinel
            .map(|(_, sent)| sent)
            .unwrap_or(collector_stats.datagrams_sent);
        let dropped = sent_claimed.saturating_sub(messages.len() as u64);

        Self::finish(
            &self.cfg,
            campaign_stats,
            collector_stats,
            messages,
            dropped,
        )
    }

    fn run_udp_sharded(self, shards: usize) -> DeploymentResult {
        // The receiver pool is one socket per worker, so the sender,
        // the pool, and the ingest service must all agree on the
        // *effective* (possibly hardware-clamped) shard count.
        let registry = Registry::new();
        let ingest_cfg = IngestConfig {
            shards,
            clamp_shards: self.cfg.ingest_clamp,
            wal_base: self.cfg.db_path.clone(),
            metrics: IngestMetrics::register(&registry),
            ..IngestConfig::default()
        };
        let shards = ingest_cfg.effective_shards();
        let quiet_period = self.cfg.quiet_period;
        let pool = UdpReceiverPool::spawn(shards, 65_536).expect("bind loopback receiver pool");
        let sender = ShardedUdpSender::connect(&pool.addrs()).expect("sharded sender");
        let service = IngestService::spawn(ingest_cfg).expect("spawn ingest service");

        // One drain thread per receiver socket, feeding its shard's
        // worker directly — the live (streaming) ingest topology.
        type DrainOutcome = (u64, Option<(u32, u64)>);
        let drains: Vec<std::thread::JoinHandle<DrainOutcome>> = pool
            .into_receivers()
            .into_iter()
            .enumerate()
            .map(|(shard, receiver)| {
                let handle = service.handle(shard);
                std::thread::Builder::new()
                    .name(format!("siren-drain-{shard}"))
                    .spawn(move || {
                        let mut delivered = 0u64;
                        let sentinel = drain_each_until_sentinel(&receiver, quiet_period, |msg| {
                            delivered += 1;
                            handle.push(msg);
                        });
                        receiver.stop();
                        (delivered, sentinel)
                    })
                    .expect("spawn drain thread")
            })
            .collect();

        let campaign = Campaign::new(self.cfg.campaign.clone());
        let mut collector =
            Collector::new(&sender, self.cfg.policy).with_max_datagram(self.cfg.max_datagram);
        let campaign_stats = campaign.run(|ctx| collector.observe(&ctx));
        // The sentinel broadcast stops every drain thread.
        collector.end_campaign();
        let collector_stats = collector.stats().clone();

        let outcomes: Vec<DrainOutcome> = drains
            .into_iter()
            .map(|d| d.join().expect("drain thread"))
            .collect();
        let delivered: u64 = outcomes.iter().map(|(n, _)| n).sum();
        // Every sentinel copy carries the same sender-side total; any one
        // of them is the authoritative wire-level count (see run_udp_serial).
        let sent_claimed = outcomes
            .iter()
            .find_map(|(_, sentinel)| sentinel.map(|(_, sent)| sent))
            .unwrap_or(collector_stats.datagrams_sent);
        let ingested = service.finish().expect("ingest finish");
        let integrity = integrity_report(&ingested.records);
        let dropped = sent_claimed.saturating_sub(delivered);
        let metrics = seal_metrics(
            &registry,
            collector_stats.datagrams_sent,
            delivered,
            dropped,
        );

        DeploymentResult {
            campaign_stats,
            datagrams_sent: collector_stats.datagrams_sent,
            collector_stats,
            datagrams_dropped: dropped,
            datagrams_delivered: delivered,
            reassembly_complete: ingested.reassembly_complete(),
            reassembly_incomplete: ingested.reassembly_incomplete(),
            reassembly_duplicates: ingested.duplicates(),
            db_rows: ingested.db_rows(),
            consolidate_stats: ingested.stats,
            replay: ingested.replay_stats(),
            records: ingested.records,
            integrity,
            shard_stats: ingested.shard_stats,
            metrics,
        }
    }
}

/// One poll tick of a UDP drain loop.
const DRAIN_TICK: Duration = Duration::from_millis(50);

/// Drain one UDP receiver until its sender's end-of-campaign sentinel
/// arrives (deterministic stop), falling back to the configured quiet
/// period only if every sentinel copy was lost. Yields payload messages
/// to `on_msg` and returns the parsed `(sender_id, datagrams_sent)`
/// claim of the first sentinel seen, if any.
fn drain_each_until_sentinel(
    receiver: &UdpReceiver,
    quiet_period: Duration,
    mut on_msg: impl FnMut(Message),
) -> Option<(u32, u64)> {
    // `quiet_period` of silence (counted in 50 ms ticks) before giving
    // up on the sentinel; the quiet counter resets on every received
    // datagram, so an active campaign never trips it.
    let quiet_limit = (quiet_period.as_millis() / DRAIN_TICK.as_millis()).max(1) as u32;
    let mut quiet = 0u32;
    let mut sentinel = None;
    while sentinel.is_none() && quiet < quiet_limit {
        match receiver.recv_timeout(DRAIN_TICK) {
            Some(m) if m.header.mtype == MessageType::End => sentinel = parse_sentinel(&m),
            Some(m) => {
                on_msg(m);
                quiet = 0;
            }
            None => quiet += 1,
        }
    }
    // Scoop any stragglers the reader thread had already queued (extra
    // sentinel copies are dropped here).
    while let Some(m) = receiver.try_recv() {
        if m.header.mtype != MessageType::End {
            on_msg(m);
        }
    }
    sentinel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(transport: TransportKind) -> DeploymentConfig {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.001;
        cfg.transport = transport;
        cfg
    }

    #[test]
    fn simulated_pipeline_is_lossless_by_default() {
        let r = Deployment::new(tiny(TransportKind::Simulated)).run();
        assert_eq!(r.datagrams_dropped, 0);
        assert_eq!(r.datagrams_sent, r.datagrams_delivered);
        assert_eq!(r.reassembly_incomplete, 0);
        assert_eq!(r.db_rows, r.reassembly_complete);
        assert_eq!(r.integrity.jobs_with_missing, 0);
        assert_eq!(r.records.len() as u64, r.consolidate_stats.processes);
        // Every rank-0, non-containerized observation must become exactly
        // one record; containers are the collector's documented blind spot.
        assert_eq!(
            r.records.len() as u64,
            r.campaign_stats.processes - r.campaign_stats.container_processes
        );
        assert_eq!(
            r.collector_stats.invisible_container,
            r.campaign_stats.container_processes
        );
    }

    #[test]
    fn sharded_ingest_equals_serial_on_lossless_channel() {
        let serial = Deployment::new(tiny(TransportKind::Simulated)).run();
        for shards in [1usize, 2, 8] {
            // Unclamped: the multi-shard merge is exercised even on a
            // single-core machine.
            let mut cfg = tiny(TransportKind::Simulated);
            cfg.ingest = IngestMode::Sharded(shards);
            cfg.ingest_clamp = false;
            let sharded = Deployment::new(cfg).run();
            assert_eq!(sharded.records, serial.records, "shards={shards}");
            assert_eq!(sharded.db_rows, serial.db_rows);
            assert_eq!(sharded.consolidate_stats, serial.consolidate_stats);
            assert_eq!(sharded.shard_stats.len(), shards);
        }
    }

    #[test]
    fn default_sharded_deployment_clamps_to_hardware() {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let requested = cores + 5;
        let mut cfg = tiny(TransportKind::Simulated);
        cfg.ingest = IngestMode::Sharded(requested);
        let r = Deployment::new(cfg).run();
        assert_eq!(r.shard_stats.len(), cores, "oversharding must clamp");
        assert!(r
            .shard_stats
            .iter()
            .all(|s| s.shards_requested == requested));
    }

    #[test]
    fn loss_injection_produces_missing_fields() {
        let mut cfg = tiny(TransportKind::Simulated);
        cfg.channel = SimConfig::with_loss(0.05, 99);
        let r = Deployment::new(cfg).run();
        assert!(r.datagrams_dropped > 0);
        assert!(r.reassembly_incomplete > 0 || r.integrity.processes_with_missing > 0);
        assert!(r.integrity.job_loss_fraction() > 0.0);
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let r = Deployment::new(tiny(TransportKind::Simulated)).run();
            (
                r.db_rows,
                r.records.len(),
                r.records.first().map(|x| x.key.clone()),
                r.records.last().map(|x| x.key.clone()),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn udp_loopback_pipeline_works() {
        let r = Deployment::new(tiny(TransportKind::UdpLoopback)).run();
        // Loopback may drop under burst, but the pipeline must deliver the
        // overwhelming majority and consolidate cleanly.
        assert!(r.datagrams_delivered > 0);
        let delivered_frac = r.datagrams_delivered as f64 / r.datagrams_sent as f64;
        assert!(
            delivered_frac > 0.5,
            "loopback delivered only {delivered_frac}"
        );
        assert!(!r.records.is_empty());
    }

    #[test]
    fn udp_loopback_sharded_pipeline_works() {
        let mut cfg = tiny(TransportKind::UdpLoopback);
        cfg.ingest = IngestMode::Sharded(2);
        cfg.ingest_clamp = false;
        let r = Deployment::new(cfg).run();
        assert!(r.datagrams_delivered > 0);
        let delivered_frac = r.datagrams_delivered as f64 / r.datagrams_sent as f64;
        assert!(
            delivered_frac > 0.5,
            "loopback delivered only {delivered_frac}"
        );
        assert!(!r.records.is_empty());
        assert_eq!(r.shard_stats.len(), 2);
        // Job-keyed routing: sharded output matches a serial re-ingest of
        // the same campaign when nothing is lost; under loopback loss we
        // can only assert structural sanity.
        assert_eq!(r.records.len() as u64, r.consolidate_stats.processes);
    }

    #[test]
    fn all_sentinels_lost_falls_back_to_quiet_period() {
        // A sender that never announces end-of-campaign: the drain must
        // deliver every payload message and give up after the configured
        // quiet period with no sentinel claim.
        let receiver = UdpReceiver::spawn(1024).expect("bind receiver");
        let sender = UdpSender::connect(receiver.local_addr()).expect("sender");
        use siren_net::Sender as _;
        for i in 0..20u64 {
            let msg = siren_wire::chunk_message(
                &siren_wire::MessageHeader {
                    job_id: i,
                    step_id: 0,
                    pid: i as u32,
                    exe_hash: format!("{i:08x}"),
                    host: "nid1".into(),
                    time: 1_700_000_000,
                    layer: siren_wire::Layer::SelfExe,
                    mtype: MessageType::Meta,
                },
                "path=/usr/bin/x",
                1200,
            );
            for m in msg {
                sender.send(&m.encode());
            }
        }
        let start = std::time::Instant::now();
        let quiet = Duration::from_millis(300);
        let mut delivered = 0u64;
        let sentinel = drain_each_until_sentinel(&receiver, quiet, |_m| delivered += 1);
        receiver.stop();
        assert_eq!(sentinel, None, "no sentinel was ever sent");
        assert_eq!(delivered, 20, "payloads must survive sentinel loss");
        let elapsed = start.elapsed();
        assert!(
            elapsed >= quiet,
            "gave up before the quiet period: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(8),
            "quiet fallback must honor the configured period, took {elapsed:?}"
        );
    }

    #[test]
    fn persistent_database_round_trips() {
        let dir = std::env::temp_dir().join(format!("siren-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.sirendb");
        let _ = std::fs::remove_file(&path);

        let mut cfg = tiny(TransportKind::Simulated);
        cfg.db_path = Some(path.clone());
        let r = Deployment::new(cfg.clone()).run();
        assert!(r.db_rows > 0);
        assert_eq!(
            r.replay,
            ReplayStats::default(),
            "fresh WAL replays nothing"
        );

        let (db, stats) = Database::open(&path).unwrap();
        assert_eq!(stats.records, r.db_rows);
        assert_eq!(db.len() as u64, r.db_rows);
        drop(db);

        // A second deployment over the same WAL surfaces the replay.
        let first_rows = r.db_rows;
        let r2 = Deployment::new(cfg).run();
        assert_eq!(r2.replay.records, first_rows);
        assert_eq!(r2.replay.corrupt_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_persistent_partitions_round_trip() {
        let dir = std::env::temp_dir().join(format!("siren-core-sh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("sharded.sirendb");
        for i in 0..3 {
            let _ = std::fs::remove_file(dir.join(format!("sharded.sirendb.shard{i}")));
        }

        let mut cfg = tiny(TransportKind::Simulated);
        cfg.ingest = IngestMode::Sharded(3);
        cfg.db_path = Some(base.clone());
        let r = Deployment::new(cfg).run();
        assert!(r.db_rows > 0);

        let mut replayed = 0u64;
        for i in 0..3 {
            let path = dir.join(format!("sharded.sirendb.shard{i}"));
            let (db, stats) = Database::open(&path).unwrap();
            assert_eq!(stats.corrupt_tail_bytes, 0);
            replayed += db.len() as u64;
            std::fs::remove_file(&path).unwrap();
        }
        assert_eq!(replayed, r.db_rows);
    }
}
