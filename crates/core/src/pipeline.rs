//! The end-to-end deployment runner.

use siren_cluster::{Campaign, CampaignConfig, CampaignStats};
use siren_collector::{Collector, CollectorStats, PolicyMode};
use siren_consolidate::{consolidate, integrity_report, ConsolidateStats, IntegrityReport, ProcessRecord};
use siren_db::Database;
use siren_net::{SimChannel, SimConfig, UdpReceiver, UdpSender};
use siren_wire::{Message, Reassembler, DEFAULT_MAX_DATAGRAM};
use std::path::PathBuf;
use std::sync::atomic::Ordering;

/// Which transport carries the datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-memory simulated channel (deterministic; supports loss
    /// injection). The default for experiments.
    Simulated,
    /// Real UDP sockets over 127.0.0.1 (exercises the actual network
    /// stack; loss is whatever the loopback does under load).
    UdpLoopback,
}

/// Full deployment configuration.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Workload parameters.
    pub campaign: CampaignConfig,
    /// Simulated-channel perturbations (ignored for UDP loopback).
    pub channel: SimConfig,
    /// Collection policy mode.
    pub policy: PolicyMode,
    /// Transport selection.
    pub transport: TransportKind,
    /// Datagram size limit.
    pub max_datagram: usize,
    /// Optional WAL path for a persistent database.
    pub db_path: Option<PathBuf>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            campaign: CampaignConfig::default(),
            channel: SimConfig::perfect(),
            policy: PolicyMode::Selective,
            transport: TransportKind::Simulated,
            max_datagram: DEFAULT_MAX_DATAGRAM,
            db_path: None,
        }
    }
}

/// Everything a deployment run produces.
#[derive(Debug)]
pub struct DeploymentResult {
    /// Workload-generation statistics.
    pub campaign_stats: CampaignStats,
    /// Collector statistics.
    pub collector_stats: CollectorStats,
    /// Datagrams handed to the transport.
    pub datagrams_sent: u64,
    /// Datagrams dropped by injected loss (simulated transport only).
    pub datagrams_dropped: u64,
    /// Datagrams delivered to the receiver.
    pub datagrams_delivered: u64,
    /// Logical messages fully reassembled.
    pub reassembly_complete: u64,
    /// Logical messages with lost chunks.
    pub reassembly_incomplete: u64,
    /// Duplicate chunks observed.
    pub reassembly_duplicates: u64,
    /// Rows stored in the database.
    pub db_rows: u64,
    /// Consolidation statistics.
    pub consolidate_stats: ConsolidateStats,
    /// Consolidated per-process records — the analysis input.
    pub records: Vec<ProcessRecord>,
    /// Missing-field integrity report.
    pub integrity: IntegrityReport,
}

/// A configured deployment, ready to run.
pub struct Deployment {
    cfg: DeploymentConfig,
}

impl Deployment {
    /// Create a deployment.
    pub fn new(cfg: DeploymentConfig) -> Self {
        Self { cfg }
    }

    /// Run the full pipeline and consolidate the results.
    pub fn run(self) -> DeploymentResult {
        match self.cfg.transport {
            TransportKind::Simulated => self.run_simulated(),
            TransportKind::UdpLoopback => self.run_udp(),
        }
    }

    fn finish(
        cfg: &DeploymentConfig,
        campaign_stats: CampaignStats,
        collector_stats: CollectorStats,
        messages: Vec<Message>,
        datagrams_dropped: u64,
    ) -> DeploymentResult {
        let datagrams_delivered = messages.len() as u64;

        let mut reasm = Reassembler::new();
        let db = match &cfg.db_path {
            Some(path) => Database::open(path).expect("open database WAL").0,
            None => Database::in_memory(),
        };

        let mut complete = 0u64;
        for msg in messages {
            if let Some(done) = reasm.push(msg) {
                complete += 1;
                db.insert_message(done).expect("database insert");
            }
        }
        let incomplete = reasm.drain_incomplete();
        let duplicates = reasm.duplicates;
        db.flush().expect("database flush");

        let consolidated = consolidate(&db);
        let integrity = integrity_report(&consolidated.records);

        DeploymentResult {
            campaign_stats,
            datagrams_sent: collector_stats.datagrams_sent,
            collector_stats,
            datagrams_dropped,
            datagrams_delivered,
            reassembly_complete: complete,
            reassembly_incomplete: incomplete.len() as u64,
            reassembly_duplicates: duplicates,
            db_rows: db.len() as u64,
            consolidate_stats: consolidated.stats,
            records: consolidated.records,
            integrity,
        }
    }

    fn run_simulated(self) -> DeploymentResult {
        let campaign = Campaign::new(self.cfg.campaign.clone());
        let (tx, rx) = SimChannel::create(self.cfg.channel);
        let mut collector =
            Collector::new(&tx, self.cfg.policy).with_max_datagram(self.cfg.max_datagram);

        let campaign_stats = campaign.run(|ctx| collector.observe(&ctx));
        let collector_stats = collector.stats().clone();

        let (messages, decode_errors) = rx.drain_messages();
        assert_eq!(decode_errors, 0, "sim channel never corrupts datagrams");
        let dropped = rx.stats().dropped.load(Ordering::Relaxed);

        Self::finish(&self.cfg, campaign_stats, collector_stats, messages, dropped)
    }

    fn run_udp(self) -> DeploymentResult {
        let receiver = UdpReceiver::spawn(65_536).expect("bind loopback receiver");
        let sender = UdpSender::connect(receiver.local_addr()).expect("sender socket");

        let campaign = Campaign::new(self.cfg.campaign.clone());
        let mut collector =
            Collector::new(&sender, self.cfg.policy).with_max_datagram(self.cfg.max_datagram);
        let campaign_stats = campaign.run(|ctx| collector.observe(&ctx));
        let collector_stats = collector.stats().clone();

        // Drain until the socket has been quiet for a grace period.
        let mut messages = Vec::new();
        let mut quiet = 0;
        while quiet < 10 {
            match receiver.recv_timeout(std::time::Duration::from_millis(50)) {
                Some(m) => {
                    messages.push(m);
                    quiet = 0;
                }
                None => quiet += 1,
            }
        }
        let stats = receiver.stop();
        let dropped = collector_stats.datagrams_sent.saturating_sub(stats.received);

        Self::finish(&self.cfg, campaign_stats, collector_stats, messages, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(transport: TransportKind) -> DeploymentConfig {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.001;
        cfg.transport = transport;
        cfg
    }

    #[test]
    fn simulated_pipeline_is_lossless_by_default() {
        let r = Deployment::new(tiny(TransportKind::Simulated)).run();
        assert_eq!(r.datagrams_dropped, 0);
        assert_eq!(r.datagrams_sent, r.datagrams_delivered);
        assert_eq!(r.reassembly_incomplete, 0);
        assert_eq!(r.db_rows, r.reassembly_complete);
        assert_eq!(r.integrity.jobs_with_missing, 0);
        assert_eq!(
            r.records.len() as u64,
            r.consolidate_stats.processes
        );
        // Every rank-0, non-containerized observation must become exactly
        // one record; containers are the collector's documented blind spot.
        assert_eq!(
            r.records.len() as u64,
            r.campaign_stats.processes - r.campaign_stats.container_processes
        );
        assert_eq!(
            r.collector_stats.invisible_container,
            r.campaign_stats.container_processes
        );
    }

    #[test]
    fn loss_injection_produces_missing_fields() {
        let mut cfg = tiny(TransportKind::Simulated);
        cfg.channel = SimConfig::with_loss(0.05, 99);
        let r = Deployment::new(cfg).run();
        assert!(r.datagrams_dropped > 0);
        assert!(r.reassembly_incomplete > 0 || r.integrity.processes_with_missing > 0);
        assert!(r.integrity.job_loss_fraction() > 0.0);
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let r = Deployment::new(tiny(TransportKind::Simulated)).run();
            (
                r.db_rows,
                r.records.len(),
                r.records.first().map(|x| x.key.clone()),
                r.records.last().map(|x| x.key.clone()),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn udp_loopback_pipeline_works() {
        let r = Deployment::new(tiny(TransportKind::UdpLoopback)).run();
        // Loopback may drop under burst, but the pipeline must deliver the
        // overwhelming majority and consolidate cleanly.
        assert!(r.datagrams_delivered > 0);
        let delivered_frac = r.datagrams_delivered as f64 / r.datagrams_sent as f64;
        assert!(delivered_frac > 0.5, "loopback delivered only {delivered_frac}");
        assert!(!r.records.is_empty());
    }

    #[test]
    fn persistent_database_round_trips() {
        let dir = std::env::temp_dir().join(format!("siren-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.sirendb");
        let _ = std::fs::remove_file(&path);

        let mut cfg = tiny(TransportKind::Simulated);
        cfg.db_path = Some(path.clone());
        let r = Deployment::new(cfg).run();
        assert!(r.db_rows > 0);

        let (db, stats) = Database::open(&path).unwrap();
        assert_eq!(stats.records, r.db_rows);
        assert_eq!(db.len() as u64, r.db_rows);
        std::fs::remove_file(&path).unwrap();
    }
}
