//! Paper-style report rendering over consolidated records.
//!
//! Each function regenerates one table/figure of the paper's §4 and
//! returns it as text; [`full_report`] concatenates all of them.

use siren_analysis as analysis;
use siren_analysis::Labeler;
use siren_consolidate::ProcessRecord;
use siren_text::SubstringDeriver;

/// Table 2.
pub fn usage_report(records: &[ProcessRecord]) -> String {
    analysis::usage::render_usage(&analysis::usage_table(records))
}

/// Table 3 (top 10 rows, like the paper).
pub fn system_report(records: &[ProcessRecord]) -> String {
    analysis::system_usage::render_system(&analysis::system_table(records), 10)
}

/// Table 4 (bash library variants).
pub fn bash_variants_report(records: &[ProcessRecord]) -> String {
    analysis::system_usage::render_library_variants(&analysis::library_variant_table(
        records,
        "/usr/bin/bash",
    ))
}

/// Table 5.
pub fn labels_report(records: &[ProcessRecord]) -> String {
    analysis::labels::render_labels(&analysis::label_table(records, &Labeler::default()))
}

/// Table 6.
pub fn compilers_report(records: &[ProcessRecord]) -> String {
    analysis::compilers::render_compilers(&analysis::compiler_table(records))
}

/// Table 7 — similarity search from the UNKNOWN baseline. Empty string
/// when no UNKNOWN instance exists in the records.
pub fn similarity_report(records: &[ProcessRecord]) -> String {
    let Some(baseline) = crate::find_unknown_baseline(records) else {
        return "Table 7: no UNKNOWN baseline present in this campaign\n".to_string();
    };
    let rows = analysis::similarity_search_table(records, baseline, &Labeler::default(), 10);
    analysis::similarity::render_similarity(&rows)
}

/// Table 8.
pub fn interpreters_report(records: &[ProcessRecord]) -> String {
    analysis::python_stats::render_interpreters(&analysis::interpreter_table(records))
}

/// Figure 2 (data series).
pub fn derived_libs_report(records: &[ProcessRecord]) -> String {
    analysis::derived_libs::render_derived_libs(&analysis::derived_library_stats(
        records,
        &SubstringDeriver::paper(),
    ))
}

/// Figure 3 (data series).
pub fn packages_report(records: &[ProcessRecord]) -> String {
    analysis::python_stats::render_packages(&analysis::package_stats(
        records,
        siren_cluster::python::PACKAGE_CATALOG,
    ))
}

/// Figure 4.
pub fn compiler_matrix_report(records: &[ProcessRecord]) -> String {
    analysis::compiler_matrix(records, &Labeler::default())
        .render("Figure 4: Compiler identification by software label")
}

/// Figure 5.
pub fn library_matrix_report(records: &[ProcessRecord]) -> String {
    analysis::library_matrix(records, &Labeler::default(), &SubstringDeriver::paper())
        .render("Figure 5: Loaded shared object usage by software label")
}

/// Ingest-tier telemetry for one deployment: transport loss, WAL replay
/// (what a persistent receiver recovered on startup, including torn-tail
/// bytes), and per-shard backpressure — the operational counters that
/// were previously measured but silently dropped from the report.
pub fn telemetry_report(result: &crate::DeploymentResult) -> String {
    let mut out = String::from("Deployment telemetry\n");
    out.push_str(&format!(
        "  datagrams: sent {}, delivered {}, dropped {}\n",
        result.datagrams_sent, result.datagrams_delivered, result.datagrams_dropped
    ));
    out.push_str(&format!(
        "  reassembly: complete {}, incomplete {}, duplicates {}\n",
        result.reassembly_complete, result.reassembly_incomplete, result.reassembly_duplicates
    ));
    out.push_str(&format!(
        "  wal replay: {} records recovered, {} torn-tail bytes discarded\n",
        result.replay.records, result.replay.corrupt_tail_bytes
    ));
    if result.shard_stats.is_empty() {
        out.push_str("  ingest: serial (single receiver thread)\n");
    } else {
        let requested = result
            .shard_stats
            .first()
            .map(|s| s.shards_requested)
            .unwrap_or(0);
        let effective = result.shard_stats.len();
        if requested != effective {
            out.push_str(&format!(
                "  ingest: {effective} shards (requested {requested}, clamped to available parallelism)\n"
            ));
        } else {
            out.push_str(&format!("  ingest: {effective} shards\n"));
        }
        for s in &result.shard_stats {
            out.push_str(&format!(
                "    shard {}: {} rows, {} batches, {} backpressure waits, {} replayed ({} torn bytes)\n",
                s.shard, s.db_rows, s.batches, s.backpressure_waits, s.replayed_records,
                s.replay_tail_bytes
            ));
        }
    }
    out
}

/// Operator-facing rendering of a daemon's `Status` answer: store
/// shape, ingest health, and the query-traffic counters protocol v2
/// exports (refused connections, open cursors, negotiated-version
/// histogram). Works on any [`siren_proto::StatusInfo`] — from
/// `SirenDaemon::status` in process or a `SirenClient::status` answer
/// over the wire.
pub fn query_telemetry_report(status: &siren_proto::StatusInfo) -> String {
    let mut out = String::from("Query telemetry\n");
    out.push_str(&format!(
        "  store: {} records across {} committed epochs{}\n",
        status.records,
        status.committed_epochs.len(),
        match status.open_epoch {
            Some(e) => format!(", epoch {e} ingesting"),
            None => String::new(),
        }
    ));
    out.push_str(&format!(
        "  ingest health: {} epoch-tag mismatches, {} quiet-period fallbacks\n",
        status.epoch_tag_mismatches, status.quiet_period_fallbacks
    ));
    out.push_str(&format!(
        "  connections refused (queue full): {}\n",
        status.queries_refused
    ));
    out.push_str(&format!("  open cursors: {}\n", status.open_cursors));
    if status.version_connections.is_empty() {
        out.push_str("  negotiated versions: none yet\n");
    } else {
        let hist: Vec<String> = status
            .version_connections
            .iter()
            .map(|(v, n)| format!("v{v}: {n}"))
            .collect();
        out.push_str(&format!("  negotiated versions: {}\n", hist.join(", ")));
    }
    out
}

/// All tables and figures, separated by blank lines.
pub fn full_report(records: &[ProcessRecord]) -> String {
    [
        usage_report(records),
        system_report(records),
        bash_variants_report(records),
        labels_report(records),
        compilers_report(records),
        similarity_report(records),
        interpreters_report(records),
        derived_libs_report(records),
        packages_report(records),
        compiler_matrix_report(records),
        library_matrix_report(records),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use crate::{Deployment, DeploymentConfig, IngestMode};

    #[test]
    fn telemetry_report_surfaces_replay_and_backpressure() {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.001;
        cfg.ingest = IngestMode::Sharded(2);
        cfg.ingest_clamp = false;
        let result = Deployment::new(cfg).run();
        let report = super::telemetry_report(&result);
        assert!(report.contains("wal replay: 0 records recovered"));
        assert!(report.contains("backpressure waits"));
        assert!(report.contains("ingest: 2 shards"));
        assert!(report.contains("shard 0:"));
        assert!(report.contains("shard 1:"));

        let mut serial_cfg = DeploymentConfig::default();
        serial_cfg.campaign.scale = 0.001;
        let serial = Deployment::new(serial_cfg).run();
        assert!(super::telemetry_report(&serial).contains("ingest: serial"));
    }

    #[test]
    fn query_telemetry_report_surfaces_v2_counters() {
        let status = siren_proto::StatusInfo {
            protocol_version: 2,
            committed_epochs: vec![0, 1, 2],
            records: 1234,
            open_epoch: Some(3),
            epoch_tag_mismatches: 1,
            quiet_period_fallbacks: 2,
            queries_refused: 7,
            open_cursors: 3,
            version_connections: vec![(1, 4), (2, 9)],
        };
        let report = super::query_telemetry_report(&status);
        assert!(report.contains("1234 records across 3 committed epochs"));
        assert!(report.contains("epoch 3 ingesting"));
        assert!(report.contains("connections refused (queue full): 7"));
        assert!(report.contains("open cursors: 3"));
        assert!(report.contains("negotiated versions: v1: 4, v2: 9"));

        let empty = super::query_telemetry_report(&siren_proto::StatusInfo::default());
        assert!(empty.contains("negotiated versions: none yet"));
    }

    #[test]
    fn full_report_renders_every_artifact() {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.002;
        let result = Deployment::new(cfg).run();
        let report = super::full_report(&result.records);
        for artifact in [
            "Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Table 8",
            "Figure 2", "Figure 3", "Figure 4", "Figure 5",
        ] {
            assert!(report.contains(artifact), "missing {artifact}");
        }
        // Spot-check structure: the campaign's users and softwares appear.
        assert!(report.contains("user_1"));
        assert!(report.contains("/usr/bin/bash"));
        assert!(report.contains("icon"));
        assert!(report.contains("python3."));
    }
}
