//! Paper-style report rendering over consolidated records.
//!
//! Each function regenerates one table/figure of the paper's §4 and
//! returns it as text; [`full_report`] concatenates all of them.

use siren_analysis as analysis;
use siren_analysis::Labeler;
use siren_consolidate::ProcessRecord;
use siren_obs::{MetricsSnapshot, SpanRecord, TraceTree};
use siren_text::SubstringDeriver;

/// Table 2.
pub fn usage_report(records: &[ProcessRecord]) -> String {
    analysis::usage::render_usage(&analysis::usage_table(records))
}

/// Table 3 (top 10 rows, like the paper).
pub fn system_report(records: &[ProcessRecord]) -> String {
    analysis::system_usage::render_system(&analysis::system_table(records), 10)
}

/// Table 4 (bash library variants).
pub fn bash_variants_report(records: &[ProcessRecord]) -> String {
    analysis::system_usage::render_library_variants(&analysis::library_variant_table(
        records,
        "/usr/bin/bash",
    ))
}

/// Table 5.
pub fn labels_report(records: &[ProcessRecord]) -> String {
    analysis::labels::render_labels(&analysis::label_table(records, &Labeler::default()))
}

/// Table 6.
pub fn compilers_report(records: &[ProcessRecord]) -> String {
    analysis::compilers::render_compilers(&analysis::compiler_table(records))
}

/// Table 7 — similarity search from the UNKNOWN baseline. Empty string
/// when no UNKNOWN instance exists in the records.
pub fn similarity_report(records: &[ProcessRecord]) -> String {
    let Some(baseline) = crate::find_unknown_baseline(records) else {
        return "Table 7: no UNKNOWN baseline present in this campaign\n".to_string();
    };
    let rows = analysis::similarity_search_table(records, baseline, &Labeler::default(), 10);
    analysis::similarity::render_similarity(&rows)
}

/// Table 8.
pub fn interpreters_report(records: &[ProcessRecord]) -> String {
    analysis::python_stats::render_interpreters(&analysis::interpreter_table(records))
}

/// Figure 2 (data series).
pub fn derived_libs_report(records: &[ProcessRecord]) -> String {
    analysis::derived_libs::render_derived_libs(&analysis::derived_library_stats(
        records,
        &SubstringDeriver::paper(),
    ))
}

/// Figure 3 (data series).
pub fn packages_report(records: &[ProcessRecord]) -> String {
    analysis::python_stats::render_packages(&analysis::package_stats(
        records,
        siren_cluster::python::PACKAGE_CATALOG,
    ))
}

/// Figure 4.
pub fn compiler_matrix_report(records: &[ProcessRecord]) -> String {
    analysis::compiler_matrix(records, &Labeler::default())
        .render("Figure 4: Compiler identification by software label")
}

/// Figure 5.
pub fn library_matrix_report(records: &[ProcessRecord]) -> String {
    analysis::library_matrix(records, &Labeler::default(), &SubstringDeriver::paper())
        .render("Figure 5: Loaded shared object usage by software label")
}

/// Format a nanosecond quantity with a human-scale unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// One latency histogram as `name p50=.. p99=.. max=.. (n=..)`, or
/// nothing when the series is absent or empty.
fn hist_line(out: &mut String, metrics: &MetricsSnapshot, label: &str, name: &str) {
    if let Some(h) = metrics.histogram(name) {
        if !h.is_empty() {
            out.push_str(&format!(
                "    {label}: p50={} p99={} max={} (n={})\n",
                fmt_ns(h.p50()),
                fmt_ns(h.p99()),
                fmt_ns(h.max),
                h.count
            ));
        }
    }
}

/// True when any counter under `prefix` was registered — the section
/// gate, so a snapshot renders only the tiers that actually ran.
fn has_series(metrics: &MetricsSnapshot, prefix: &str) -> bool {
    metrics.counters.iter().any(|(n, _)| n.starts_with(prefix))
        || metrics.gauges.iter().any(|(n, _)| n.starts_with(prefix))
        || metrics
            .histograms
            .iter()
            .any(|(n, _)| n.starts_with(prefix))
}

/// The unified telemetry renderer: every pipeline tier, one report,
/// driven entirely by a [`MetricsSnapshot`]. The same function renders
/// a [`crate::DeploymentResult::metrics`] snapshot (transport + ingest
/// series), a `SirenDaemon::metrics_snapshot`, and a
/// `SirenClient::metrics()` answer fetched over the wire — sections
/// whose series never registered are skipped, so each source shows
/// exactly the tiers it ran.
pub fn telemetry_report(metrics: &MetricsSnapshot) -> String {
    let c = |name: &str| metrics.counter(name);
    let mut out = String::from("Telemetry report\n");

    if has_series(metrics, "net.") {
        out.push_str(&format!(
            "  transport: {} datagrams sent, {} delivered, {} dropped\n",
            c("net.datagrams_sent"),
            c("net.datagrams_delivered"),
            c("net.datagrams_dropped")
        ));
    }
    if has_series(metrics, "ingest.") {
        out.push_str(&format!(
            "  ingest: {} messages received, {} reassembled ({} incomplete, {} duplicate chunks, {} inconsistent)\n",
            c("ingest.messages_received"),
            c("ingest.reassembled"),
            c("ingest.incomplete"),
            c("ingest.duplicates"),
            c("ingest.inconsistent")
        ));
        out.push_str(&format!(
            "  ingest: {} rows stored in {} batches, {} backpressure waits\n",
            c("ingest.rows_stored"),
            c("ingest.batches"),
            c("ingest.backpressure_waits")
        ));
        out.push_str(&format!(
            "  ingest replay: {} records recovered, {} torn-tail bytes discarded\n",
            c("ingest.replayed_records"),
            c("ingest.replay_tail_bytes")
        ));
        hist_line(&mut out, metrics, "reassembly", "ingest.reassembly_ns");
        hist_line(&mut out, metrics, "batch insert", "ingest.batch_insert_ns");
    }
    if has_series(metrics, "store.") {
        out.push_str(&format!(
            "  store: {} segments sealed, {} compaction passes ({} bytes rewritten)\n",
            c("store.segments_sealed"),
            c("store.compaction_passes"),
            c("store.compaction_bytes")
        ));
        hist_line(&mut out, metrics, "wal fsync", "store.wal_fsync_ns");
        hist_line(&mut out, metrics, "segment seal", "store.segment_seal_ns");
        hist_line(&mut out, metrics, "compaction", "store.compaction_ns");
    }
    if has_series(metrics, "service.") {
        out.push_str(&format!(
            "  service: {} epochs committed ({} records), {} background merges\n",
            c("service.epochs_committed"),
            c("service.records_committed"),
            c("service.snapshot_merges")
        ));
        out.push_str(&format!(
            "  ingest health: {} epoch-tag mismatches, {} quiet-period fallbacks\n",
            c("service.epoch_tag_mismatches"),
            c("service.quiet_period_fallbacks")
        ));
        hist_line(&mut out, metrics, "epoch commit", "service.commit_ns");
        hist_line(&mut out, metrics, "snapshot publish", "service.publish_ns");
        hist_line(&mut out, metrics, "layer merge", "service.merge_ns");
    }
    if has_series(metrics, "query.") {
        let (v1, v2) = (c("query.negotiated_v1"), c("query.negotiated_v2"));
        let versions = if v1 + v2 == 0 {
            "none yet".to_string()
        } else {
            [(1u16, v1), (2u16, v2)]
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|(v, n)| format!("v{v}: {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "  query: {} requests over {} connections ({} refused), negotiated versions: {versions}\n",
            c("query.requests"),
            c("query.connections_accepted"),
            c("query.connections_refused")
        ));
        out.push_str(&format!(
            "  query: {} neighbor plans fell back to full scans\n",
            c("query.fuzzy_scan_fallbacks")
        ));
        hist_line(&mut out, metrics, "queue wait", "query.queue_wait_ns");
        hist_line(&mut out, metrics, "execution", "query.exec_ns");
        hist_line(
            &mut out,
            metrics,
            "batch serialize",
            "query.batch_serialize_ns",
        );
    }
    if has_series(metrics, "cursor.") {
        let (open, high_water) = metrics
            .gauge("cursor.open")
            .map(|g| (g.value, g.high_water))
            .unwrap_or((0, 0));
        out.push_str(&format!(
            "  cursors: {open} open (high water {high_water}), {} hits, {} misses, evicted {} by capacity / {} by TTL\n",
            c("cursor.hits"),
            c("cursor.misses"),
            c("cursor.evicted_capacity"),
            c("cursor.evicted_ttl")
        ));
    }
    if has_series(metrics, "fed.") {
        let up = metrics.gauge("fed.backends_up").map_or(0, |g| g.value);
        let down = metrics.gauge("fed.backends_down").map_or(0, |g| g.value);
        out.push_str(&format!(
            "  federation: {up} backends up, {down} down; {} queries merged ({} rows), {} partial results\n",
            c("fed.queries"),
            c("fed.rows_merged"),
            c("fed.partial_results")
        ));
        out.push_str(&format!(
            "  federation: {} replica failovers, {} promotions; {} probes ({} failed)\n",
            c("fed.failovers"),
            c("fed.promotions"),
            c("fed.probes"),
            c("fed.probe_failures")
        ));
        hist_line(&mut out, metrics, "scatter-gather", "fed.merge_ns");
        for (name, _) in &metrics.histograms {
            if let Some(set) = name.strip_prefix("fed.probe_ns.") {
                hist_line(&mut out, metrics, &format!("probe {set}"), name);
            }
        }
    }
    if !metrics.slow_queries.is_empty() {
        out.push_str(&format!(
            "  slow queries ({} most recent):\n",
            metrics.slow_queries.len()
        ));
        for entry in &metrics.slow_queries {
            let trace = if entry.trace_id != 0 {
                format!(" trace={:016x}", entry.trace_id)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "    plan {:016x} [{}]: {} rows in {}{trace}\n",
                entry.fingerprint,
                entry.shape,
                entry.rows,
                fmt_ns(entry.total_ns)
            ));
        }
    }
    out
}

/// Flame-style text rendering of reassembled trace trees: one block per
/// trace, each span indented under its parent with its duration and its
/// start offset relative to the earliest span in the tree. Spans whose
/// parent fell off the flight-recorder ring render at top level, so a
/// partially overwritten trace still shows everything that survived.
pub fn trace_report(trees: &[TraceTree]) -> String {
    let mut out = String::new();
    for tree in trees {
        out.push_str(&format!(
            "trace {} — {} spans, {}\n",
            tree.trace,
            tree.spans.len(),
            fmt_ns(tree.duration_ns())
        ));
        let known: std::collections::HashSet<u64> = tree.spans.iter().map(|s| s.id.0).collect();
        let base = tree.spans.first().map(|s| s.start_ns).unwrap_or(0);
        for span in &tree.spans {
            let rooted = match span.parent {
                None => true,
                Some(parent) => !known.contains(&parent.0),
            };
            if rooted {
                render_span(&mut out, tree, span, 1, base);
            }
        }
    }
    out
}

/// One span line plus, recursively, its children (start-order, the
/// order [`TraceTree`] keeps them in).
fn render_span(out: &mut String, tree: &TraceTree, span: &SpanRecord, depth: usize, base: u64) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} {} (+{})",
        span.stage,
        fmt_ns(span.duration_ns),
        fmt_ns(span.start_ns.saturating_sub(base))
    ));
    for (key, value) in &span.annotations {
        out.push_str(&format!(" {key}={value}"));
    }
    out.push('\n');
    for child in &tree.spans {
        if child.parent == Some(span.id) {
            render_span(out, tree, child, depth + 1, base);
        }
    }
}

/// All tables and figures, separated by blank lines.
pub fn full_report(records: &[ProcessRecord]) -> String {
    [
        usage_report(records),
        system_report(records),
        bash_variants_report(records),
        labels_report(records),
        compilers_report(records),
        similarity_report(records),
        interpreters_report(records),
        derived_libs_report(records),
        packages_report(records),
        compiler_matrix_report(records),
        library_matrix_report(records),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use crate::{Deployment, DeploymentConfig, IngestMode};

    #[test]
    fn telemetry_report_covers_deployment_series() {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.001;
        cfg.ingest = IngestMode::Sharded(2);
        cfg.ingest_clamp = false;
        let result = Deployment::new(cfg).run();
        let report = super::telemetry_report(&result.metrics);
        assert!(report.contains("transport:"));
        assert!(report.contains("messages received"));
        assert!(report.contains("rows stored"));
        assert!(report.contains("replay: 0 records recovered"));
        assert!(report.contains("batch insert: p50="));
        // A deployment snapshot has no daemon-side series to render.
        assert!(!report.contains("query:"));
        assert!(!report.contains("cursors:"));

        // Serial and sharded render the same sections from the same
        // series names.
        let mut serial_cfg = DeploymentConfig::default();
        serial_cfg.campaign.scale = 0.001;
        let serial = Deployment::new(serial_cfg).run();
        let serial_report = super::telemetry_report(&serial.metrics);
        assert!(serial_report.contains("messages received"));
        assert!(serial_report.contains("reassembly: p50="));
        assert_eq!(
            serial.metrics.counter("ingest.rows_stored"),
            serial.db_rows,
            "registry and result must agree"
        );
    }

    #[test]
    fn telemetry_report_covers_service_series() {
        use siren_obs::{Registry, SlowQueryEntry};
        let registry = Registry::new();
        registry.counter("query.requests").add(9);
        registry.counter("query.connections_accepted").add(5);
        registry.counter("query.connections_refused").add(7);
        registry.counter("query.negotiated_v1").add(4);
        registry.counter("query.negotiated_v2").add(9);
        registry.counter("cursor.hits").add(2);
        registry.gauge("cursor.open").set(3);
        registry.histogram("query.exec_ns").record(1_500_000);
        registry.counter("service.epochs_committed").add(3);
        registry.counter("service.records_committed").add(1234);
        registry.slow_queries().push(SlowQueryEntry {
            fingerprint: 0xdead_beef,
            shape: "records/time_asc sel=job".into(),
            rows: 500,
            total_ns: 123_400_000,
            trace_id: 0xabcd,
        });
        let report = super::telemetry_report(&registry.snapshot());
        assert!(report.contains("9 requests over 5 connections (7 refused)"));
        assert!(report.contains("negotiated versions: v1: 4, v2: 9"));
        assert!(report.contains("3 open (high water 3)"));
        assert!(report.contains("execution: p50="));
        assert!(report.contains("3 epochs committed (1234 records)"));
        assert!(report.contains("slow queries (1 most recent):"));
        assert!(report.contains("plan 00000000deadbeef [records/time_asc sel=job]: 500 rows"));
        assert!(
            report.contains("trace=000000000000abcd"),
            "slow entries carry their trace id"
        );
        // No transport/ingest series registered: those sections vanish.
        assert!(!report.contains("transport:"));
        assert!(!report.contains("messages received"));

        let empty = super::telemetry_report(&Registry::new().snapshot());
        assert_eq!(empty, "Telemetry report\n");
    }

    #[test]
    fn telemetry_report_covers_federation_series() {
        use siren_obs::Registry;
        let registry = Registry::new();
        registry.counter("fed.queries").add(12);
        registry.counter("fed.rows_merged").add(3400);
        registry.counter("fed.partial_results").add(2);
        registry.counter("fed.failovers").add(1);
        registry.counter("fed.promotions").add(1);
        registry.counter("fed.probes").add(40);
        registry.counter("fed.probe_failures").add(3);
        registry.gauge("fed.backends_up").set(3);
        registry.gauge("fed.backends_down").set(1);
        registry.histogram("fed.merge_ns").record(2_000_000);
        registry.histogram("fed.probe_ns.shard-0").record(400_000);
        let report = super::telemetry_report(&registry.snapshot());
        assert!(report.contains("federation: 3 backends up, 1 down"));
        assert!(report.contains("12 queries merged (3400 rows), 2 partial results"));
        assert!(report.contains("1 replica failovers, 1 promotions; 40 probes (3 failed)"));
        assert!(report.contains("scatter-gather: p50="));
        assert!(report.contains("probe shard-0: p50="));
        // Router snapshots carry only fed.* series: no other section.
        assert!(!report.contains("query:"));
        assert!(!report.contains("  service:"));
    }

    #[test]
    fn trace_report_indents_children_under_parents() {
        use siren_obs::{TraceFilter, TraceStore};
        let store = TraceStore::default();
        let mut root = store.buffer().root("request.plan", None);
        root.annotate("shape", "records/time_asc");
        let exec = root.child("exec");
        let serialize = exec.child("serialize");
        serialize.finish();
        exec.finish();
        root.finish();

        let trees = store.traces(&TraceFilter::recent());
        let report = super::trace_report(&trees);
        assert!(report.contains("trace "), "header line present");
        assert!(report.contains("  request.plan"), "root at depth 1");
        assert!(report.contains("    exec"), "child indented under root");
        assert!(
            report.contains("      serialize"),
            "grandchild indented twice"
        );
        assert!(report.contains("shape=records/time_asc"));
        assert_eq!(super::trace_report(&[]), "");
    }

    #[test]
    fn full_report_renders_every_artifact() {
        let mut cfg = DeploymentConfig::default();
        cfg.campaign.scale = 0.002;
        let result = Deployment::new(cfg).run();
        let report = super::full_report(&result.records);
        for artifact in [
            "Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Table 8",
            "Figure 2", "Figure 3", "Figure 4", "Figure 5",
        ] {
            assert!(report.contains(artifact), "missing {artifact}");
        }
        // Spot-check structure: the campaign's users and softwares appear.
        assert!(report.contains("user_1"));
        assert!(report.contains("/usr/bin/bash"));
        assert!(report.contains("icon"));
        assert!(report.contains("python3."));
    }
}
