//! # siren-db — embedded message store
//!
//! The paper's receiver inserts UDP messages into an SQLite database whose
//! columns are exactly the UDP header fields plus CONTENT (§3.1). SQLite
//! is not among this project's allowed dependencies, so this crate
//! implements the storage layer the pipeline needs, from scratch:
//!
//! * [`Record`] — one row: `JOBID, STEPID, PID, HASH, HOST, TIME, LAYER,
//!   TYPE, CONTENT`.
//! * [`Database`] — a thin indexed cache over a pluggable
//!   [`StorageBackend`]: rows and secondary indexes (job id, message
//!   type) live in memory with a fluent [`Query`] filter API, while
//!   durability is delegated to the backend — volatile
//!   ([`Database::in_memory`]), one flat WAL ([`Database::open`], the
//!   seed's format, with checksummed records and corruption-tolerant
//!   replay), or a rotating/compacting segmented store
//!   ([`Database::open_segmented`]) for long-running service deployments.
//!
//! Concurrency model: many receiver threads may `insert` while analysis
//! threads run read snapshots; a `parking_lot::RwLock` arbitrates (writes
//! are append-only and cheap; reads take the lock shared).

pub mod log;
pub mod record;

pub use log::{ReplayStats, WalReader, WalWriter};
pub use record::Record;
pub use siren_store::{
    NullBackend, RecoveryStats, SegmentedBackend, SegmentedOptions, StorageBackend, WalBackend,
};

use parking_lot::RwLock;
use siren_wire::{CompleteMessage, Layer, MessageType};
use std::collections::HashMap;
use std::path::Path;

struct Inner {
    rows: Vec<Record>,
    by_job: HashMap<u64, Vec<usize>>,
    by_type: HashMap<&'static str, Vec<usize>>,
    backend: Box<dyn StorageBackend<Record>>,
}

/// The message database.
pub struct Database {
    inner: RwLock<Inner>,
}

impl Default for Database {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl Database {
    /// Volatile store (no persistence).
    pub fn in_memory() -> Self {
        Self::from_backend(Box::new(NullBackend), Vec::new())
    }

    /// Cache over an arbitrary backend, pre-seeded with the records the
    /// backend recovered. The seam every other constructor goes through.
    pub fn from_backend(backend: Box<dyn StorageBackend<Record>>, initial: Vec<Record>) -> Self {
        let mut inner = Inner {
            rows: Vec::with_capacity(initial.len()),
            by_job: HashMap::new(),
            by_type: HashMap::new(),
            backend,
        };
        for rec in initial {
            Self::index_and_push(&mut inner, rec);
        }
        Self {
            inner: RwLock::new(inner),
        }
    }

    /// Open (or create) a persistent store backed by a single flat
    /// write-ahead log at `path`. Existing records are replayed; a
    /// corrupt tail is truncated away and reported in [`ReplayStats`].
    pub fn open(path: &Path) -> std::io::Result<(Self, ReplayStats)> {
        let (backend, records, stats) = WalBackend::open(path)?;
        Ok((Self::from_backend(Box::new(backend), records), stats))
    }

    /// Open (or create) a persistent store backed by a segmented,
    /// compacting directory store at `dir` — the long-running-service
    /// shape: the WAL rotates into immutable checksummed segments and
    /// compaction folds segments into sorted runs in the background.
    pub fn open_segmented(
        dir: &Path,
        opts: SegmentedOptions,
    ) -> std::io::Result<(Self, RecoveryStats)> {
        let (backend, records, stats) = SegmentedBackend::open(dir, opts)?;
        Ok((Self::from_backend(Box::new(backend), records), stats))
    }

    /// The persistence backend's kind (`"null"`, `"wal"`, `"segmented"`,
    /// …) — for telemetry reports.
    pub fn backend_kind(&self) -> &'static str {
        self.inner.read().backend.kind()
    }

    fn index_and_push(inner: &mut Inner, rec: Record) {
        let idx = inner.rows.len();
        inner.by_job.entry(rec.job_id).or_default().push(idx);
        inner
            .by_type
            .entry(rec.mtype.as_str())
            .or_default()
            .push(idx);
        inner.rows.push(rec);
    }

    /// Insert one record (appending through the backend when persistent).
    pub fn insert(&self, rec: Record) -> std::io::Result<()> {
        let mut inner = self.inner.write();
        inner.backend.append_batch(std::slice::from_ref(&rec))?;
        Self::index_and_push(&mut inner, rec);
        Ok(())
    }

    /// Insert a reassembled wire message.
    pub fn insert_message(&self, msg: CompleteMessage) -> std::io::Result<()> {
        self.insert(Record::from(msg))
    }

    /// Insert many records under one lock acquisition and one WAL pass.
    ///
    /// The hot ingest path produces records far faster than per-record
    /// `insert` can take the write lock; batching amortizes the lock and
    /// lets the WAL writer buffer all frames before a single flush.
    pub fn insert_batch(&self, recs: Vec<Record>) -> std::io::Result<()> {
        if recs.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        inner.backend.append_batch(&recs)?;
        inner.backend.flush()?;
        for rec in recs {
            Self::index_and_push(&mut inner, rec);
        }
        Ok(())
    }

    /// Insert many reassembled wire messages as one batch.
    pub fn insert_message_batch(&self, msgs: Vec<CompleteMessage>) -> std::io::Result<()> {
        self.insert_batch(msgs.into_iter().map(Record::from).collect())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush buffered writes to the OS.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.write().backend.flush()
    }

    /// Flush and fsync to stable storage.
    pub fn sync(&self) -> std::io::Result<()> {
        self.inner.write().backend.sync()
    }

    /// Run `f` over a shared snapshot of all rows (no cloning).
    pub fn with_rows<R>(&self, f: impl FnOnce(&[Record]) -> R) -> R {
        let inner = self.inner.read();
        f(&inner.rows)
    }

    /// Distinct job ids present, sorted.
    pub fn job_ids(&self) -> Vec<u64> {
        let inner = self.inner.read();
        let mut ids: Vec<u64> = inner.by_job.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Rows for one job id (cloned).
    pub fn rows_for_job(&self, job_id: u64) -> Vec<Record> {
        let inner = self.inner.read();
        inner
            .by_job
            .get(&job_id)
            .map(|idxs| idxs.iter().map(|&i| inner.rows[i].clone()).collect())
            .unwrap_or_default()
    }

    /// Rows of one message type (cloned).
    pub fn rows_of_type(&self, mtype: MessageType) -> Vec<Record> {
        let inner = self.inner.read();
        inner
            .by_type
            .get(mtype.as_str())
            .map(|idxs| idxs.iter().map(|&i| inner.rows[i].clone()).collect())
            .unwrap_or_default()
    }

    /// Start a filter query.
    pub fn query(&self) -> Query<'_> {
        Query {
            db: self,
            job_id: None,
            mtype: None,
            layer: None,
            host: None,
            time_range: None,
        }
    }
}

/// Fluent row filter. All conditions are ANDed.
pub struct Query<'a> {
    db: &'a Database,
    job_id: Option<u64>,
    mtype: Option<MessageType>,
    layer: Option<Layer>,
    host: Option<String>,
    time_range: Option<(u64, u64)>,
}

impl Query<'_> {
    /// Restrict to one job.
    pub fn job(mut self, job_id: u64) -> Self {
        self.job_id = Some(job_id);
        self
    }

    /// Restrict to one message type.
    pub fn mtype(mut self, mtype: MessageType) -> Self {
        self.mtype = Some(mtype);
        self
    }

    /// Restrict to one layer.
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Restrict to one host.
    pub fn host(mut self, host: &str) -> Self {
        self.host = Some(host.to_string());
        self
    }

    /// Restrict to `start ..= end` collection timestamps.
    pub fn time_between(mut self, start: u64, end: u64) -> Self {
        self.time_range = Some((start, end));
        self
    }

    fn matches(&self, r: &Record) -> bool {
        if let Some(j) = self.job_id {
            if r.job_id != j {
                return false;
            }
        }
        if let Some(t) = self.mtype {
            if r.mtype != t {
                return false;
            }
        }
        if let Some(l) = self.layer {
            if r.layer != l {
                return false;
            }
        }
        if let Some(h) = &self.host {
            if &r.host != h {
                return false;
            }
        }
        if let Some((lo, hi)) = self.time_range {
            if r.time < lo || r.time > hi {
                return false;
            }
        }
        true
    }

    /// Collect matching rows (cloned).
    pub fn collect(self) -> Vec<Record> {
        let inner = self.db.inner.read();
        // Use the narrowest applicable index.
        if let Some(j) = self.job_id {
            return inner
                .by_job
                .get(&j)
                .map(|idxs| {
                    idxs.iter()
                        .map(|&i| &inner.rows[i])
                        .filter(|r| self.matches(r))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
        }
        if let Some(t) = self.mtype {
            return inner
                .by_type
                .get(t.as_str())
                .map(|idxs| {
                    idxs.iter()
                        .map(|&i| &inner.rows[i])
                        .filter(|r| self.matches(r))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
        }
        inner
            .rows
            .iter()
            .filter(|r| self.matches(r))
            .cloned()
            .collect()
    }

    /// Count matching rows without cloning.
    pub fn count(self) -> usize {
        let inner = self.db.inner.read();
        inner.rows.iter().filter(|r| self.matches(r)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::{Layer, MessageType};

    fn rec(job: u64, pid: u32, mtype: MessageType, content: &str) -> Record {
        Record {
            job_id: job,
            step_id: 0,
            pid,
            exe_hash: format!("{pid:032x}"),
            host: format!("nid{:06}", job % 100),
            time: 1_700_000_000 + job,
            layer: Layer::SelfExe,
            mtype,
            content: content.to_string(),
        }
    }

    #[test]
    fn insert_and_len() {
        let db = Database::in_memory();
        assert!(db.is_empty());
        db.insert(rec(1, 10, MessageType::Meta, "m")).unwrap();
        db.insert(rec(1, 11, MessageType::Objects, "o")).unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn insert_batch_matches_serial_inserts_and_persists() {
        let serial = Database::in_memory();
        let batched = Database::in_memory();
        let recs: Vec<Record> = (0..100)
            .map(|i| rec(i % 7, i as u32, MessageType::Objects, &format!("c{i}")))
            .collect();
        for r in recs.clone() {
            serial.insert(r).unwrap();
        }
        batched.insert_batch(recs).unwrap();
        assert_eq!(serial.len(), batched.len());
        serial.with_rows(|a| batched.with_rows(|b| assert_eq!(a, b)));
        assert_eq!(serial.job_ids(), batched.job_ids());
        assert_eq!(
            serial.query().mtype(MessageType::Objects).count(),
            batched.query().mtype(MessageType::Objects).count()
        );

        // Batches hit the WAL exactly like serial inserts.
        let dir = std::env::temp_dir().join(format!("siren-db-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batch.sirendb");
        let _ = std::fs::remove_file(&path);
        {
            let (db, _) = Database::open(&path).unwrap();
            db.insert_batch(
                (0..50)
                    .map(|i| rec(i, i as u32, MessageType::Meta, "m"))
                    .collect(),
            )
            .unwrap();
        }
        let (db, stats) = Database::open(&path).unwrap();
        assert_eq!(stats.records, 50);
        assert_eq!(db.len(), 50);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn query_by_job_and_type() {
        let db = Database::in_memory();
        for j in 0..10 {
            db.insert(rec(j, 1, MessageType::Meta, "meta")).unwrap();
            db.insert(rec(j, 1, MessageType::Objects, "objs")).unwrap();
        }
        assert_eq!(db.query().job(3).collect().len(), 2);
        assert_eq!(db.query().mtype(MessageType::Meta).collect().len(), 10);
        assert_eq!(
            db.query()
                .job(3)
                .mtype(MessageType::Objects)
                .collect()
                .len(),
            1
        );
        assert_eq!(db.query().job(99).collect().len(), 0);
        assert_eq!(db.query().count(), 20);
    }

    #[test]
    fn query_time_and_host() {
        let db = Database::in_memory();
        for j in 0..10 {
            db.insert(rec(j, 1, MessageType::Meta, "x")).unwrap();
        }
        let hits = db
            .query()
            .time_between(1_700_000_002, 1_700_000_004)
            .collect();
        assert_eq!(hits.len(), 3);
        let host_hits = db.query().host("nid000007").collect();
        assert_eq!(host_hits.len(), 1);
    }

    #[test]
    fn job_ids_sorted_distinct() {
        let db = Database::in_memory();
        for j in [5u64, 1, 5, 3] {
            db.insert(rec(j, 1, MessageType::Meta, "")).unwrap();
        }
        assert_eq!(db.job_ids(), vec![1, 3, 5]);
    }

    #[test]
    fn rows_of_type_uses_index() {
        let db = Database::in_memory();
        db.insert(rec(1, 1, MessageType::FileHash, "3:abc:de"))
            .unwrap();
        db.insert(rec(1, 1, MessageType::Meta, "")).unwrap();
        let rows = db.rows_of_type(MessageType::FileHash);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].content, "3:abc:de");
    }

    #[test]
    fn persistence_round_trip() {
        let dir = std::env::temp_dir().join(format!("siren-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-roundtrip.sirendb");
        let _ = std::fs::remove_file(&path);

        {
            let (db, stats) = Database::open(&path).unwrap();
            assert_eq!(stats.records, 0);
            for j in 0..50 {
                db.insert(rec(j, j as u32, MessageType::Objects, &format!("lib{j}")))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        {
            let (db, stats) = Database::open(&path).unwrap();
            assert_eq!(stats.records, 50);
            assert_eq!(stats.corrupt_tail_bytes, 0);
            assert_eq!(db.len(), 50);
            assert_eq!(db.query().job(7).collect()[0].content, "lib7");
            // And appending after replay still works.
            db.insert(rec(100, 1, MessageType::Meta, "post-replay"))
                .unwrap();
            db.flush().unwrap();
        }
        {
            let (db, _) = Database::open(&path).unwrap();
            assert_eq!(db.len(), 51);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_tail_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("siren-db-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-corrupt.sirendb");
        let _ = std::fs::remove_file(&path);

        {
            let (db, _) = Database::open(&path).unwrap();
            for j in 0..10 {
                db.insert(rec(j, 1, MessageType::Meta, "ok")).unwrap();
            }
            db.flush().unwrap();
        }
        // Simulate a torn write: append garbage.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let (db, stats) = Database::open(&path).unwrap();
        assert_eq!(db.len(), 10);
        assert!(stats.corrupt_tail_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn segmented_backend_round_trips_and_compacts() {
        let dir = std::env::temp_dir().join(format!("siren-db-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let opts = SegmentedOptions {
            rotate_bytes: 2048,
            compact_min_files: 2,
            background_compaction: true,
        };
        {
            let (db, stats) = Database::open_segmented(&dir, opts).unwrap();
            assert_eq!(stats.records_loaded, 0);
            assert_eq!(db.backend_kind(), "segmented");
            db.insert_batch(
                (0..500)
                    .map(|i| rec(i % 13, i as u32, MessageType::Objects, &format!("c{i}")))
                    .collect(),
            )
            .unwrap();
            db.sync().unwrap();
        }
        let (db, stats) = Database::open_segmented(&dir, opts).unwrap();
        assert_eq!(stats.records_loaded, 500);
        assert_eq!(stats.wal_tail_bytes_discarded, 0);
        assert_eq!(db.len(), 500);
        // Indexes are rebuilt over the recovered rows regardless of the
        // physical order compaction produced.
        assert_eq!(db.job_ids(), (0..13).collect::<Vec<u64>>());
        assert_eq!(db.query().job(7).count(), db.rows_for_job(7).len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let db = std::sync::Arc::new(Database::in_memory());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = std::sync::Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    db.insert(rec(t * 1000 + i, 1, MessageType::Meta, "c"))
                        .unwrap();
                }
            }));
        }
        for _ in 0..4 {
            let db = std::sync::Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _ = db.with_rows(|rows| rows.len());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 2000);
    }
}
