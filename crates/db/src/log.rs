//! Write-ahead log for [`Record`]s — a typed view of `siren-store`'s
//! generic checksummed framing (the implementation lived here before the
//! storage subsystem was extracted; the on-disk format is unchanged).
//!
//! Frame format, repeated to end of file:
//!
//! ```text
//! [0xD8 magic][len: u32 LE][payload: len bytes][checksum: u64 LE]
//! ```
//!
//! The checksum is FNV-1a/64 over the payload. Replay stops at the first
//! frame that is truncated, mis-magicked, or checksum-mismatched, and
//! reports how many tail bytes were discarded — a crash mid-append must
//! cost at most the final record.

use crate::record::Record;

pub use siren_store::{ReplayStats, FRAME_MAGIC};

/// Appending writer for record frames.
pub type WalWriter = siren_store::WalWriter<Record>;

/// Replaying reader for record frames.
pub type WalReader = siren_store::WalReader<Record>;

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::{Layer, MessageType};

    fn rec(i: u64) -> Record {
        Record {
            job_id: i,
            step_id: 0,
            pid: i as u32,
            exe_hash: format!("{i:x}"),
            host: "h".into(),
            time: i,
            layer: Layer::SelfExe,
            mtype: MessageType::Meta,
            content: format!("content-{i}"),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("siren-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_replay_round_trip() {
        let path = temp_path("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::append_to(&path).unwrap();
            for i in 0..100 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(stats.records, 100);
        assert_eq!(stats.corrupt_tail_bytes, 0);
        assert_eq!(records[42], rec(42));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_replays_empty() {
        let path = temp_path("empty.wal");
        std::fs::write(&path, b"").unwrap();
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert!(records.is_empty());
        assert_eq!(stats, ReplayStats::default());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bitflip_in_payload_detected() {
        let path = temp_path("bitflip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::append_to(&path).unwrap();
            for i in 0..10 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the file (inside some record).
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert!(records.len() < 10, "corruption must stop replay");
        assert!(stats.corrupt_tail_bytes > 0);
        // Replayed prefix must be intact.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_frame_tolerated() {
        let path = temp_path("torn.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::append_to(&path).unwrap();
            for i in 0..5 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert_eq!(records.len(), 4);
        assert!(stats.corrupt_tail_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversize_length_field_treated_as_corruption() {
        let path = temp_path("oversize.wal");
        let mut frame = vec![FRAME_MAGIC];
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(b"junk");
        std::fs::write(&path, &frame).unwrap();
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert!(records.is_empty());
        assert_eq!(stats.corrupt_tail_bytes, frame.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }
}
