//! Write-ahead log: checksummed, corruption-tolerant record framing.
//!
//! Frame format, repeated to end of file:
//!
//! ```text
//! [0xD8 magic][len: u32 LE][payload: len bytes][checksum: u64 LE]
//! ```
//!
//! The checksum is FNV-1a/64 over the payload. Replay stops at the first
//! frame that is truncated, mis-magicked, or checksum-mismatched, and
//! reports how many tail bytes were discarded — a crash mid-append must
//! cost at most the final record.

use crate::record::Record;
use bytes::{Buf, BufMut, BytesMut};
use siren_hash::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

const FRAME_MAGIC: u8 = 0xD8;
/// Upper bound on a sane payload; anything larger is treated as corruption.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Statistics from a WAL replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records successfully replayed.
    pub records: u64,
    /// Bytes discarded from a corrupt or torn tail.
    pub corrupt_tail_bytes: u64,
}

/// Appending writer.
#[derive(Debug)]
pub struct WalWriter {
    out: BufWriter<File>,
}

impl WalWriter {
    /// Open `path` for appending (creating it if needed).
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            out: BufWriter::new(file),
        })
    }

    /// Append one record frame.
    pub fn append(&mut self, rec: &Record) -> std::io::Result<()> {
        let payload = rec.encode();
        let mut frame = BytesMut::with_capacity(payload.len() + 13);
        frame.put_u8(FRAME_MAGIC);
        frame.put_u32_le(payload.len() as u32);
        frame.put_slice(&payload);
        frame.put_u64_le(fnv1a64(&payload));
        self.out.write_all(&frame)
    }

    /// Flush buffered frames to the OS.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Replaying reader.
#[derive(Debug)]
pub struct WalReader {
    data: Vec<u8>,
}

impl WalReader {
    /// Read the whole log into memory (logs are bounded by campaign size;
    /// the paper's full deployment produced a few GB of messages, scaled
    /// down by our simulation factor).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(Self { data })
    }

    /// Replay all intact frames; stop at the first corruption.
    pub fn replay(&self) -> std::io::Result<(Vec<Record>, ReplayStats)> {
        let mut records = Vec::new();
        let mut buf = &self.data[..];
        let total = buf.len() as u64;

        loop {
            if buf.remaining() == 0 {
                break;
            }
            let frame_start_remaining = buf.remaining();
            if buf.remaining() < 1 + 4 {
                let n = records_len(&records);
                return Ok((
                    records,
                    ReplayStats {
                        records: n,
                        corrupt_tail_bytes: frame_start_remaining as u64,
                    },
                ));
            }
            let magic = buf.get_u8();
            let len = buf.get_u32_le();
            if magic != FRAME_MAGIC || len > MAX_PAYLOAD || buf.remaining() < len as usize + 8 {
                let n = records_len(&records);
                return Ok((
                    records,
                    ReplayStats {
                        records: n,
                        corrupt_tail_bytes: frame_start_remaining as u64,
                    },
                ));
            }
            let payload = &buf.chunk()[..len as usize];
            let stored_sum_pos = len as usize;
            let stored_sum = u64::from_le_bytes(
                buf.chunk()[stored_sum_pos..stored_sum_pos + 8]
                    .try_into()
                    .unwrap(),
            );
            if fnv1a64(payload) != stored_sum {
                let n = records_len(&records);
                return Ok((
                    records,
                    ReplayStats {
                        records: n,
                        corrupt_tail_bytes: frame_start_remaining as u64,
                    },
                ));
            }
            match Record::decode(payload) {
                Some(rec) => records.push(rec),
                None => {
                    let n = records_len(&records);
                    return Ok((
                        records,
                        ReplayStats {
                            records: n,
                            corrupt_tail_bytes: frame_start_remaining as u64,
                        },
                    ));
                }
            }
            buf.advance(len as usize + 8);
        }

        let _ = total;
        let n = records_len(&records);
        Ok((
            records,
            ReplayStats {
                records: n,
                corrupt_tail_bytes: 0,
            },
        ))
    }
}

fn records_len(records: &[Record]) -> u64 {
    records.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::{Layer, MessageType};

    fn rec(i: u64) -> Record {
        Record {
            job_id: i,
            step_id: 0,
            pid: i as u32,
            exe_hash: format!("{i:x}"),
            host: "h".into(),
            time: i,
            layer: Layer::SelfExe,
            mtype: MessageType::Meta,
            content: format!("content-{i}"),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("siren-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_replay_round_trip() {
        let path = temp_path("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::append_to(&path).unwrap();
            for i in 0..100 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(stats.records, 100);
        assert_eq!(stats.corrupt_tail_bytes, 0);
        assert_eq!(records[42], rec(42));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_replays_empty() {
        let path = temp_path("empty.wal");
        std::fs::write(&path, b"").unwrap();
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert!(records.is_empty());
        assert_eq!(stats, ReplayStats::default());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bitflip_in_payload_detected() {
        let path = temp_path("bitflip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::append_to(&path).unwrap();
            for i in 0..10 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the file (inside some record).
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert!(records.len() < 10, "corruption must stop replay");
        assert!(stats.corrupt_tail_bytes > 0);
        // Replayed prefix must be intact.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_frame_tolerated() {
        let path = temp_path("torn.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = WalWriter::append_to(&path).unwrap();
            for i in 0..5 {
                w.append(&rec(i)).unwrap();
            }
            w.flush().unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 4]).unwrap();
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert_eq!(records.len(), 4);
        assert!(stats.corrupt_tail_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversize_length_field_treated_as_corruption() {
        let path = temp_path("oversize.wal");
        let mut frame = vec![FRAME_MAGIC];
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(b"junk");
        std::fs::write(&path, &frame).unwrap();
        let (records, stats) = WalReader::open(&path).unwrap().replay().unwrap();
        assert!(records.is_empty());
        assert_eq!(stats.corrupt_tail_bytes, frame.len() as u64);
        std::fs::remove_file(&path).unwrap();
    }
}
