//! The row type: one reassembled message, flattened to columns.

use siren_wire::{CompleteMessage, Layer, MessageType};

/// One database row. Columns mirror the paper's SQLite schema: "JOBID,
/// STEPID, PID, HASH, HOST, TIME, LAYER, TYPE, and CONTENT".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// `SLURM_JOB_ID`.
    pub job_id: u64,
    /// `SLURM_STEP_ID`.
    pub step_id: u32,
    /// Process id.
    pub pid: u32,
    /// Executable-path hash (XXH3-128 hex).
    pub exe_hash: String,
    /// Node hostname.
    pub host: String,
    /// Collection timestamp (UNIX seconds).
    pub time: u64,
    /// SELF or SCRIPT.
    pub layer: Layer,
    /// Information category.
    pub mtype: MessageType,
    /// Reassembled content.
    pub content: String,
}

impl From<CompleteMessage> for Record {
    fn from(msg: CompleteMessage) -> Self {
        Self {
            job_id: msg.header.job_id,
            step_id: msg.header.step_id,
            pid: msg.header.pid,
            exe_hash: msg.header.exe_hash,
            host: msg.header.host,
            time: msg.header.time,
            layer: msg.header.layer,
            mtype: msg.header.mtype,
            content: msg.content,
        }
    }
}

impl Record {
    /// Encode to the WAL's binary payload (length-prefixed strings,
    /// little-endian integers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 4
                + 4
                + 8
                + 1
                + 1
                + 2
                + self.exe_hash.len()
                + 2
                + self.host.len()
                + 4
                + self.content.len(),
        );
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.extend_from_slice(&self.step_id.to_le_bytes());
        out.extend_from_slice(&self.pid.to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.push(match self.layer {
            Layer::SelfExe => 0,
            Layer::Script => 1,
        });
        out.push(type_tag(self.mtype));
        out.extend_from_slice(&(self.exe_hash.len() as u16).to_le_bytes());
        out.extend_from_slice(self.exe_hash.as_bytes());
        out.extend_from_slice(&(self.host.len() as u16).to_le_bytes());
        out.extend_from_slice(self.host.as_bytes());
        out.extend_from_slice(&(self.content.len() as u32).to_le_bytes());
        out.extend_from_slice(self.content.as_bytes());
        out
    }

    /// Decode a WAL payload. `None` on any structural inconsistency.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = data.get(*pos..*pos + n)?;
            *pos += n;
            Some(slice)
        };

        let job_id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let step_id = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let pid = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let time = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let layer = match take(&mut pos, 1)?[0] {
            0 => Layer::SelfExe,
            1 => Layer::Script,
            _ => return None,
        };
        let mtype = type_from_tag(take(&mut pos, 1)?[0])?;
        let hash_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let exe_hash = String::from_utf8(take(&mut pos, hash_len)?.to_vec()).ok()?;
        let host_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let host = String::from_utf8(take(&mut pos, host_len)?.to_vec()).ok()?;
        let content_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let content = String::from_utf8(take(&mut pos, content_len)?.to_vec()).ok()?;

        if pos != data.len() {
            return None; // trailing junk means a framing bug upstream
        }

        Some(Self {
            job_id,
            step_id,
            pid,
            exe_hash,
            host,
            time,
            layer,
            mtype,
            content,
        })
    }
}

/// Storage integration: the WAL payload codec doubles as the [`Persist`]
/// codec, and the consolidation key `(job, host, time, pid, exe hash)`
/// — extended with the remaining columns for totality — is the order
/// compaction sorts segmented-store runs by.
///
/// [`Persist`]: siren_store::Persist
impl siren_store::Persist for Record {
    fn encode(&self) -> Vec<u8> {
        Record::encode(self)
    }

    fn decode(data: &[u8]) -> Option<Self> {
        Record::decode(data)
    }

    fn order(a: &Self, b: &Self) -> std::cmp::Ordering {
        (
            a.job_id,
            &a.host,
            a.time,
            a.pid,
            &a.exe_hash,
            a.step_id,
            layer_tag(a.layer),
            type_tag(a.mtype),
            &a.content,
        )
            .cmp(&(
                b.job_id,
                &b.host,
                b.time,
                b.pid,
                &b.exe_hash,
                b.step_id,
                layer_tag(b.layer),
                type_tag(b.mtype),
                &b.content,
            ))
    }
}

fn layer_tag(layer: Layer) -> u8 {
    match layer {
        Layer::SelfExe => 0,
        Layer::Script => 1,
    }
}

fn type_tag(t: MessageType) -> u8 {
    MessageType::ALL
        .iter()
        .position(|&x| x == t)
        .expect("every MessageType is in ALL") as u8
}

fn type_from_tag(tag: u8) -> Option<MessageType> {
    MessageType::ALL.get(tag as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::MessageHeader;

    fn sample() -> Record {
        Record {
            job_id: u64::MAX - 5,
            step_id: 3,
            pid: 123_456,
            exe_hash: "deadbeefcafebabe".into(),
            host: "nid001234".into(),
            time: 1_733_912_345,
            layer: Layer::Script,
            mtype: MessageType::ScriptHash,
            content: "3:AbCdEf:Gh".into(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        assert_eq!(Record::decode(&r.encode()), Some(r));
    }

    #[test]
    fn round_trip_all_types_and_layers() {
        for t in MessageType::ALL {
            for layer in [Layer::SelfExe, Layer::Script] {
                let mut r = sample();
                r.mtype = t;
                r.layer = layer;
                assert_eq!(Record::decode(&r.encode()), Some(r));
            }
        }
    }

    #[test]
    fn round_trip_empty_strings() {
        let mut r = sample();
        r.exe_hash.clear();
        r.host.clear();
        r.content.clear();
        assert_eq!(Record::decode(&r.encode()), Some(r));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_junk() {
        let enc = sample().encode();
        for cut in [0, 1, 8, 20, enc.len() - 1] {
            assert_eq!(Record::decode(&enc[..cut]), None, "cut {cut}");
        }
        let mut extra = enc.clone();
        extra.push(0);
        assert_eq!(Record::decode(&extra), None);
    }

    #[test]
    fn from_complete_message() {
        let msg = CompleteMessage {
            header: MessageHeader {
                job_id: 9,
                step_id: 1,
                pid: 44,
                exe_hash: "ab".into(),
                host: "n".into(),
                time: 7,
                layer: Layer::SelfExe,
                mtype: MessageType::Modules,
            },
            content: "gcc/12.2;cray-mpich/8.1".into(),
        };
        let r = Record::from(msg);
        assert_eq!(r.job_id, 9);
        assert_eq!(r.mtype, MessageType::Modules);
        assert_eq!(r.content, "gcc/12.2;cray-mpich/8.1");
    }
}
