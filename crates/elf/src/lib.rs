//! # siren-elf — minimal ELF64 reader and writer
//!
//! The SIREN collector extracts three things from executables with
//! `libelf`: compiler identification strings from the `.comment` section,
//! the global-scope symbol table (the `nm`-like `Symbols_H` input), and —
//! for completeness of the simulation — the `DT_NEEDED` shared-library
//! list. This crate provides:
//!
//! * [`read`] — a defensive, never-panicking ELF64 parser
//!   ([`read::ElfFile`]) exposing exactly those extractions.
//! * [`write`] — an ELF64 **builder** ([`write::ElfBuilder`]) used by the
//!   workload simulator to synthesize structurally valid executables with
//!   controlled `.text` payloads, `.comment` compiler strings, symbol
//!   tables, and `DT_NEEDED` entries. This replaces the real LAMMPS /
//!   GROMACS / icon binaries the paper observed on LUMI: the fuzzy-hash
//!   experiments need *families of similar binaries*, and the builder is
//!   what lets the simulator create variant binaries whose byte-level
//!   overlap is controlled.
//!
//! Round-trip property tests (`writer → reader`) live in the crate tests.

pub mod read;
pub mod types;
pub mod write;

pub use read::{ElfError, ElfFile, SectionInfo, SymbolInfo};
pub use types::{Binding, ElfType, Machine, SymType};
pub use write::ElfBuilder;

/// Quick magic-number check without full parsing (the collector's fast
/// path to skip non-ELF files such as scripts).
pub fn is_elf(data: &[u8]) -> bool {
    data.len() >= 4 && data[0] == 0x7F && &data[1..4] == b"ELF"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_elf_detects_magic() {
        assert!(!is_elf(b""));
        assert!(!is_elf(b"#!/bin/bash"));
        assert!(!is_elf(&[0x7F, b'E', b'L']));
        assert!(is_elf(&[0x7F, b'E', b'L', b'F', 0, 0]));
    }

    #[test]
    fn built_binary_is_elf() {
        let bin = ElfBuilder::new(ElfType::Exec).text(b"\x90\x90").build();
        assert!(is_elf(&bin));
    }
}
