//! Defensive ELF64 parser.
//!
//! The collector feeds arbitrary executable bytes through this parser (the
//! simulated equivalent of `libelf` over `/proc/self/exe`), so every read
//! is bounds-checked and malformed input yields an [`ElfError`], never a
//! panic. The API exposes precisely the extractions SIREN performs:
//! `.comment` compiler strings, the global symbol table, section data, and
//! `DT_NEEDED` library names.

use crate::types::{dt, sht, Binding, ElfType, Machine, SymType, EHDR_SIZE, SHDR_SIZE, SYM_SIZE};

/// Parse errors. Each variant names the structural check that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// Input shorter than the ELF file header.
    Truncated,
    /// Missing `\x7fELF` magic.
    BadMagic,
    /// Not ELFCLASS64.
    Not64Bit,
    /// Not little-endian.
    NotLittleEndian,
    /// Unknown `e_type`.
    BadType(u16),
    /// Unknown `e_machine`.
    BadMachine(u16),
    /// Section header table extends past the end of the file.
    SectionTableOutOfBounds,
    /// A section's payload extends past the end of the file.
    SectionDataOutOfBounds(usize),
    /// `e_shstrndx` does not reference a valid string table.
    BadShstrndx,
    /// Symbol table malformed (entry size / string references).
    BadSymtab,
    /// Dynamic section malformed.
    BadDynamic,
}

impl std::fmt::Display for ElfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElfError::Truncated => write!(f, "input shorter than ELF header"),
            ElfError::BadMagic => write!(f, "missing ELF magic"),
            ElfError::Not64Bit => write!(f, "not an ELF64 file"),
            ElfError::NotLittleEndian => write!(f, "not little-endian"),
            ElfError::BadType(v) => write!(f, "unknown e_type {v}"),
            ElfError::BadMachine(v) => write!(f, "unknown e_machine {v:#x}"),
            ElfError::SectionTableOutOfBounds => write!(f, "section header table out of bounds"),
            ElfError::SectionDataOutOfBounds(i) => write!(f, "section {i} data out of bounds"),
            ElfError::BadShstrndx => write!(f, "invalid section name string table index"),
            ElfError::BadSymtab => write!(f, "malformed symbol table"),
            ElfError::BadDynamic => write!(f, "malformed dynamic section"),
        }
    }
}

impl std::error::Error for ElfError {}

/// One parsed section header plus its resolved name.
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section name (resolved through `.shstrtab`).
    pub name: String,
    /// `sh_type` value.
    pub sh_type: u32,
    /// Payload offset in the file.
    pub offset: usize,
    /// Payload size in bytes.
    pub size: usize,
    /// `sh_link` (e.g. symtab → strtab).
    pub link: u32,
    /// `sh_entsize`.
    pub entsize: u64,
}

/// One parsed symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolInfo {
    /// Symbol name (resolved through the linked string table).
    pub name: String,
    /// `st_value`.
    pub value: u64,
    /// `st_size`.
    pub size: u64,
    /// Binding (local / global / weak).
    pub binding: Binding,
    /// Symbol type (func / object / none).
    pub sym_type: SymType,
}

/// A parsed ELF64 file (borrowing the input bytes).
#[derive(Debug)]
pub struct ElfFile<'a> {
    data: &'a [u8],
    elf_type: ElfType,
    machine: Machine,
    entry: u64,
    sections: Vec<SectionInfo>,
}

fn read_u16(d: &[u8], off: usize) -> Option<u16> {
    d.get(off..off + 2)
        .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
}

fn read_u32(d: &[u8], off: usize) -> Option<u32> {
    d.get(off..off + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}

fn read_u64(d: &[u8], off: usize) -> Option<u64> {
    d.get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

/// Extract the NUL-terminated string at `off` in a string table.
fn strtab_get(tab: &[u8], off: usize) -> Option<String> {
    let rest = tab.get(off..)?;
    let end = rest.iter().position(|&b| b == 0)?;
    Some(String::from_utf8_lossy(&rest[..end]).into_owned())
}

impl<'a> ElfFile<'a> {
    /// Parse an ELF64 little-endian image.
    pub fn parse(data: &'a [u8]) -> Result<Self, ElfError> {
        if data.len() < EHDR_SIZE {
            return Err(ElfError::Truncated);
        }
        if !crate::is_elf(data) {
            return Err(ElfError::BadMagic);
        }
        if data[4] != 2 {
            return Err(ElfError::Not64Bit);
        }
        if data[5] != 1 {
            return Err(ElfError::NotLittleEndian);
        }

        let e_type_raw = read_u16(data, 16).ok_or(ElfError::Truncated)?;
        let elf_type = ElfType::from_u16(e_type_raw).ok_or(ElfError::BadType(e_type_raw))?;
        let e_machine_raw = read_u16(data, 18).ok_or(ElfError::Truncated)?;
        let machine =
            Machine::from_u16(e_machine_raw).ok_or(ElfError::BadMachine(e_machine_raw))?;
        let entry = read_u64(data, 24).ok_or(ElfError::Truncated)?;
        let shoff = read_u64(data, 40).ok_or(ElfError::Truncated)? as usize;
        let shentsize = read_u16(data, 58).ok_or(ElfError::Truncated)? as usize;
        let shnum = read_u16(data, 60).ok_or(ElfError::Truncated)? as usize;
        let shstrndx = read_u16(data, 62).ok_or(ElfError::Truncated)? as usize;

        if shnum == 0 {
            return Ok(Self {
                data,
                elf_type,
                machine,
                entry,
                sections: Vec::new(),
            });
        }
        if shentsize < SHDR_SIZE {
            return Err(ElfError::SectionTableOutOfBounds);
        }
        let table_end = shoff
            .checked_add(
                shnum
                    .checked_mul(shentsize)
                    .ok_or(ElfError::SectionTableOutOfBounds)?,
            )
            .ok_or(ElfError::SectionTableOutOfBounds)?;
        if table_end > data.len() {
            return Err(ElfError::SectionTableOutOfBounds);
        }

        // First pass: raw headers.
        struct RawShdr {
            name_off: u32,
            sh_type: u32,
            offset: usize,
            size: usize,
            link: u32,
            entsize: u64,
        }
        let mut raw = Vec::with_capacity(shnum);
        for i in 0..shnum {
            let base = shoff + i * shentsize;
            raw.push(RawShdr {
                name_off: read_u32(data, base).ok_or(ElfError::Truncated)?,
                sh_type: read_u32(data, base + 4).ok_or(ElfError::Truncated)?,
                offset: read_u64(data, base + 24).ok_or(ElfError::Truncated)? as usize,
                size: read_u64(data, base + 32).ok_or(ElfError::Truncated)? as usize,
                link: read_u32(data, base + 40).ok_or(ElfError::Truncated)?,
                entsize: read_u64(data, base + 56).ok_or(ElfError::Truncated)?,
            });
        }

        // Bounds-check payloads (NOBITS sections occupy no file space).
        for (i, r) in raw.iter().enumerate() {
            if r.sh_type != sht::NULL && r.sh_type != sht::NOBITS {
                let end = r
                    .offset
                    .checked_add(r.size)
                    .ok_or(ElfError::SectionDataOutOfBounds(i))?;
                if end > data.len() {
                    return Err(ElfError::SectionDataOutOfBounds(i));
                }
            }
        }

        // Resolve names through .shstrtab.
        let shstr = raw.get(shstrndx).ok_or(ElfError::BadShstrndx)?;
        if shstr.sh_type != sht::STRTAB {
            return Err(ElfError::BadShstrndx);
        }
        let shstrtab = &data[shstr.offset..shstr.offset + shstr.size];

        let sections = raw
            .iter()
            .map(|r| SectionInfo {
                name: strtab_get(shstrtab, r.name_off as usize).unwrap_or_default(),
                sh_type: r.sh_type,
                offset: r.offset,
                size: r.size,
                link: r.link,
                entsize: r.entsize,
            })
            .collect();

        Ok(Self {
            data,
            elf_type,
            machine,
            entry,
            sections,
        })
    }

    /// File type.
    pub fn elf_type(&self) -> ElfType {
        self.elf_type
    }

    /// Target machine.
    pub fn machine(&self) -> Machine {
        self.machine
    }

    /// Entry point address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// All parsed sections (including the NULL section at index 0).
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Names of all non-NULL sections.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections
            .iter()
            .filter(|s| s.sh_type != sht::NULL)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Payload of the first section with this name.
    pub fn section_data(&self, name: &str) -> Option<&'a [u8]> {
        let s = self
            .sections
            .iter()
            .find(|s| s.name == name && s.sh_type != sht::NULL)?;
        if s.sh_type == sht::NOBITS {
            return Some(&[]);
        }
        self.data.get(s.offset..s.offset + s.size)
    }

    /// Compiler identification strings from `.comment` (NUL-separated).
    ///
    /// This is the input to Table 6 / Figure 4: "most compilers leave an
    /// identification string in the `.comment` section".
    pub fn comment_strings(&self) -> Vec<String> {
        let Some(data) = self.section_data(".comment") else {
            return Vec::new();
        };
        data.split(|&b| b == 0)
            .filter(|chunk| !chunk.is_empty())
            .map(|chunk| String::from_utf8_lossy(chunk).into_owned())
            .collect()
    }

    /// All symbols from `.symtab` (excluding the NULL entry).
    pub fn all_symbols(&self) -> Vec<SymbolInfo> {
        self.symbols_from(".symtab").unwrap_or_default()
    }

    /// Externally visible symbols (GLOBAL or WEAK binding): "the global
    /// scope of ELF symbols refers to externally visible functions and
    /// variables defined without the `static` keyword" (§3.1). This is the
    /// `nm`-like input to `Symbols_H`.
    pub fn global_symbols(&self) -> Vec<SymbolInfo> {
        self.all_symbols()
            .into_iter()
            .filter(|s| matches!(s.binding, Binding::Global | Binding::Weak))
            .collect()
    }

    fn symbols_from(&self, section: &str) -> Result<Vec<SymbolInfo>, ElfError> {
        let Some(info) = self
            .sections
            .iter()
            .find(|s| s.name == section && (s.sh_type == sht::SYMTAB || s.sh_type == sht::DYNSYM))
        else {
            return Ok(Vec::new());
        };
        let data = self
            .data
            .get(info.offset..info.offset + info.size)
            .ok_or(ElfError::BadSymtab)?;
        if info.entsize as usize != SYM_SIZE || data.len() % SYM_SIZE != 0 {
            return Err(ElfError::BadSymtab);
        }
        let strtab_info = self
            .sections
            .get(info.link as usize)
            .ok_or(ElfError::BadSymtab)?;
        let strtab = self
            .data
            .get(strtab_info.offset..strtab_info.offset + strtab_info.size)
            .ok_or(ElfError::BadSymtab)?;

        let mut out = Vec::with_capacity(data.len() / SYM_SIZE);
        for entry in data.chunks_exact(SYM_SIZE).skip(1) {
            let name_off = u32::from_le_bytes(entry[0..4].try_into().unwrap()) as usize;
            let st_info = entry[4];
            let value = u64::from_le_bytes(entry[8..16].try_into().unwrap());
            let size = u64::from_le_bytes(entry[16..24].try_into().unwrap());
            let binding = Binding::from_u8(st_info >> 4).ok_or(ElfError::BadSymtab)?;
            let sym_type = SymType::from_u8(st_info & 0x0F).unwrap_or(SymType::NoType);
            let name = strtab_get(strtab, name_off).ok_or(ElfError::BadSymtab)?;
            out.push(SymbolInfo {
                name,
                value,
                size,
                binding,
                sym_type,
            });
        }
        Ok(out)
    }

    /// `DT_NEEDED` shared-library names from `.dynamic` + `.dynstr`.
    pub fn needed_libraries(&self) -> Vec<String> {
        self.needed_libraries_checked().unwrap_or_default()
    }

    fn needed_libraries_checked(&self) -> Result<Vec<String>, ElfError> {
        let Some(dyn_info) = self.sections.iter().find(|s| s.sh_type == sht::DYNAMIC) else {
            return Ok(Vec::new());
        };
        let dyn_data = self
            .data
            .get(dyn_info.offset..dyn_info.offset + dyn_info.size)
            .ok_or(ElfError::BadDynamic)?;
        let strtab_info = self
            .sections
            .get(dyn_info.link as usize)
            .ok_or(ElfError::BadDynamic)?;
        let strtab = self
            .data
            .get(strtab_info.offset..strtab_info.offset + strtab_info.size)
            .ok_or(ElfError::BadDynamic)?;

        let mut out = Vec::new();
        for entry in dyn_data.chunks_exact(16) {
            let tag = i64::from_le_bytes(entry[0..8].try_into().unwrap());
            let val = u64::from_le_bytes(entry[8..16].try_into().unwrap());
            match tag {
                dt::NULL => break,
                dt::NEEDED => {
                    out.push(strtab_get(strtab, val as usize).ok_or(ElfError::BadDynamic)?);
                }
                _ => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::ElfBuilder;

    #[test]
    fn rejects_garbage() {
        assert_eq!(ElfFile::parse(b"").unwrap_err(), ElfError::Truncated);
        assert_eq!(ElfFile::parse(&[0u8; 100]).unwrap_err(), ElfError::BadMagic);
        let mut bad = vec![0x7F, b'E', b'L', b'F'];
        bad.resize(EHDR_SIZE, 0);
        bad[4] = 1; // 32-bit
        assert_eq!(ElfFile::parse(&bad).unwrap_err(), ElfError::Not64Bit);
        bad[4] = 2;
        bad[5] = 2; // big-endian
        assert_eq!(ElfFile::parse(&bad).unwrap_err(), ElfError::NotLittleEndian);
    }

    #[test]
    fn rejects_truncated_section_table() {
        let mut bin = ElfBuilder::new(ElfType::Exec).text(b"abc").build();
        bin.truncate(bin.len() - 10);
        assert!(matches!(
            ElfFile::parse(&bin),
            Err(ElfError::SectionTableOutOfBounds)
        ));
    }

    #[test]
    fn rejects_corrupt_section_offsets() {
        let bin = ElfBuilder::new(ElfType::Exec).text(b"abcdef").build();
        let f = ElfFile::parse(&bin).unwrap();
        // Find .text header and corrupt its size to exceed the file.
        let shoff = u64::from_le_bytes(bin[40..48].try_into().unwrap()) as usize;
        let text_idx = f.sections().iter().position(|s| s.name == ".text").unwrap();
        let mut corrupt = bin.clone();
        let size_field = shoff + text_idx * SHDR_SIZE + 32;
        corrupt[size_field..size_field + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            ElfFile::parse(&corrupt),
            Err(ElfError::SectionDataOutOfBounds(_))
        ));
    }

    #[test]
    fn missing_sections_yield_empty_extractions() {
        let bin = ElfBuilder::new(ElfType::Exec).text(b"x").build();
        let f = ElfFile::parse(&bin).unwrap();
        assert!(f.comment_strings().is_empty());
        assert!(f.all_symbols().is_empty());
        assert!(f.needed_libraries().is_empty());
        assert!(f.section_data(".nonexistent").is_none());
    }

    #[test]
    fn section_names_listed() {
        let bin = ElfBuilder::new(ElfType::Dyn)
            .text(b"t")
            .comment("GCC")
            .build();
        let f = ElfFile::parse(&bin).unwrap();
        let names = f.section_names();
        assert!(names.contains(&".text"));
        assert!(names.contains(&".comment"));
        assert!(names.contains(&".shstrtab"));
    }

    #[test]
    fn never_panics_on_mutated_input() {
        // Bit-flip fuzzing over a valid binary: the parser must return
        // Ok or Err, never panic or overflow.
        let bin = ElfBuilder::new(ElfType::Dyn)
            .text(&[0xAB; 64])
            .comment("GCC: (SUSE) 13")
            .symbol("f", 1, 2, Binding::Global, SymType::Func)
            .needed("libm.so.6")
            .build();
        for i in 0..bin.len() {
            for bit in [0x01u8, 0x80] {
                let mut mutated = bin.clone();
                mutated[i] ^= bit;
                let _ = ElfFile::parse(&mutated).map(|f| {
                    let _ = f.comment_strings();
                    let _ = f.all_symbols();
                    let _ = f.needed_libraries();
                    let _ = f.section_names();
                });
            }
        }
    }
}
