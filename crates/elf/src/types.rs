//! ELF64 constants and shared enums (the subset SIREN needs).

/// `e_type` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElfType {
    /// Relocatable object (`ET_REL`).
    Rel,
    /// Static executable (`ET_EXEC`).
    Exec,
    /// Position-independent executable / shared object (`ET_DYN`).
    Dyn,
}

impl ElfType {
    /// Encode to the on-disk `e_type` value.
    pub fn to_u16(self) -> u16 {
        match self {
            ElfType::Rel => 1,
            ElfType::Exec => 2,
            ElfType::Dyn => 3,
        }
    }

    /// Decode from the on-disk value.
    pub fn from_u16(v: u16) -> Option<Self> {
        match v {
            1 => Some(ElfType::Rel),
            2 => Some(ElfType::Exec),
            3 => Some(ElfType::Dyn),
            _ => None,
        }
    }
}

/// `e_machine` values (only what the simulator emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// AMD x86-64 (`EM_X86_64`) — LUMI's CPU partition.
    X86_64,
    /// AArch64 (`EM_AARCH64`).
    Aarch64,
}

impl Machine {
    /// Encode to the on-disk `e_machine` value.
    pub fn to_u16(self) -> u16 {
        match self {
            Machine::X86_64 => 0x3E,
            Machine::Aarch64 => 0xB7,
        }
    }

    /// Decode from the on-disk value.
    pub fn from_u16(v: u16) -> Option<Self> {
        match v {
            0x3E => Some(Machine::X86_64),
            0xB7 => Some(Machine::Aarch64),
            _ => None,
        }
    }
}

/// Symbol binding (upper nibble of `st_info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binding {
    /// `STB_LOCAL` — not visible outside the object (C `static`).
    Local,
    /// `STB_GLOBAL` — externally visible; these form the "global scope ELF
    /// symbols" that SIREN fuzzy-hashes for `Symbols_H`.
    Global,
    /// `STB_WEAK`.
    Weak,
}

impl Binding {
    /// Encode to the `st_info` upper nibble.
    pub fn to_u8(self) -> u8 {
        match self {
            Binding::Local => 0,
            Binding::Global => 1,
            Binding::Weak => 2,
        }
    }

    /// Decode from the `st_info` upper nibble.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Binding::Local),
            1 => Some(Binding::Global),
            2 => Some(Binding::Weak),
            _ => None,
        }
    }
}

/// Symbol type (lower nibble of `st_info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymType {
    /// `STT_NOTYPE`.
    NoType,
    /// `STT_OBJECT` — data (variables).
    Object,
    /// `STT_FUNC` — functions.
    Func,
}

impl SymType {
    /// Encode to the `st_info` lower nibble.
    pub fn to_u8(self) -> u8 {
        match self {
            SymType::NoType => 0,
            SymType::Object => 1,
            SymType::Func => 2,
        }
    }

    /// Decode from the `st_info` lower nibble.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(SymType::NoType),
            1 => Some(SymType::Object),
            2 => Some(SymType::Func),
            _ => None,
        }
    }
}

/// Section header types (`sh_type`).
pub mod sht {
    /// Inactive header.
    pub const NULL: u32 = 0;
    /// Program-defined contents.
    pub const PROGBITS: u32 = 1;
    /// Full symbol table.
    pub const SYMTAB: u32 = 2;
    /// String table.
    pub const STRTAB: u32 = 3;
    /// Dynamic linking information.
    pub const DYNAMIC: u32 = 6;
    /// Zero-initialized space (not stored).
    pub const NOBITS: u32 = 8;
    /// Dynamic-linking symbol table.
    pub const DYNSYM: u32 = 11;
}

/// Dynamic-section tags (`d_tag`).
pub mod dt {
    /// End of dynamic array.
    pub const NULL: i64 = 0;
    /// Offset (into `.dynstr`) of a needed library name.
    pub const NEEDED: i64 = 1;
    /// Address of the dynamic string table.
    pub const STRTAB: i64 = 5;
}

/// Size of the ELF64 file header.
pub const EHDR_SIZE: usize = 64;
/// Size of one ELF64 section header.
pub const SHDR_SIZE: usize = 64;
/// Size of one ELF64 symbol-table entry.
pub const SYM_SIZE: usize = 24;
/// Size of one ELF64 dynamic entry.
pub const DYN_SIZE: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_round_trips() {
        for t in [ElfType::Rel, ElfType::Exec, ElfType::Dyn] {
            assert_eq!(ElfType::from_u16(t.to_u16()), Some(t));
        }
        for m in [Machine::X86_64, Machine::Aarch64] {
            assert_eq!(Machine::from_u16(m.to_u16()), Some(m));
        }
        for b in [Binding::Local, Binding::Global, Binding::Weak] {
            assert_eq!(Binding::from_u8(b.to_u8()), Some(b));
        }
        for s in [SymType::NoType, SymType::Object, SymType::Func] {
            assert_eq!(SymType::from_u8(s.to_u8()), Some(s));
        }
    }

    #[test]
    fn unknown_values_rejected() {
        assert_eq!(ElfType::from_u16(99), None);
        assert_eq!(Machine::from_u16(1), None);
        assert_eq!(Binding::from_u8(9), None);
        assert_eq!(SymType::from_u8(9), None);
    }
}
