//! ELF64 builder: synthesizes structurally valid executables.
//!
//! The workload simulator uses this to fabricate the application corpus:
//! each synthetic binary carries a controlled `.text` payload (whose bytes
//! drive `FILE_H` similarity), `.rodata` literals (driving `Strings_H`),
//! a symbol table (driving `Symbols_H`), `.comment` compiler strings
//! (Table 6 / Figure 4), and `DT_NEEDED` entries (Figure 2 / Figure 5).
//!
//! Layout produced: file header, section payloads in insertion order
//! (8-byte aligned), then `.shstrtab`, then the section header table.
//! No program headers are emitted — SIREN only ever *reads* executables,
//! it never loads them.

use crate::types::{
    dt, sht, Binding, ElfType, Machine, SymType, DYN_SIZE, EHDR_SIZE, SHDR_SIZE, SYM_SIZE,
};

/// A symbol queued for the `.symtab`.
#[derive(Debug, Clone)]
struct PendingSymbol {
    name: String,
    value: u64,
    size: u64,
    binding: Binding,
    sym_type: SymType,
}

/// One custom section queued for emission.
#[derive(Debug, Clone)]
struct PendingSection {
    name: String,
    sh_type: u32,
    data: Vec<u8>,
    entsize: u64,
    link_name: Option<String>,
    info: u32,
}

/// Builder for a synthetic ELF64 binary.
///
/// ```
/// use siren_elf::{ElfBuilder, ElfType, Binding, SymType};
/// let bin = ElfBuilder::new(ElfType::Dyn)
///     .text(b"\x55\x48\x89\xe5\xc3")
///     .comment("GCC: (SUSE Linux) 13.2.1")
///     .symbol("main", 0x1000, 32, Binding::Global, SymType::Func)
///     .needed("libm.so.6")
///     .build();
/// let parsed = siren_elf::ElfFile::parse(&bin).unwrap();
/// assert_eq!(parsed.comment_strings(), vec!["GCC: (SUSE Linux) 13.2.1"]);
/// ```
#[derive(Debug, Clone)]
pub struct ElfBuilder {
    elf_type: ElfType,
    machine: Machine,
    entry: u64,
    text: Vec<u8>,
    rodata: Vec<u8>,
    comments: Vec<String>,
    symbols: Vec<PendingSymbol>,
    needed: Vec<String>,
    extra_sections: Vec<PendingSection>,
}

impl ElfBuilder {
    /// Start building a binary of the given type (x86-64 by default).
    pub fn new(elf_type: ElfType) -> Self {
        Self {
            elf_type,
            machine: Machine::X86_64,
            entry: 0x40_1000,
            text: Vec::new(),
            rodata: Vec::new(),
            comments: Vec::new(),
            symbols: Vec::new(),
            needed: Vec::new(),
            extra_sections: Vec::new(),
        }
    }

    /// Set the target machine.
    pub fn machine(mut self, m: Machine) -> Self {
        self.machine = m;
        self
    }

    /// Set the entry point address.
    pub fn entry(mut self, e: u64) -> Self {
        self.entry = e;
        self
    }

    /// Set (replace) the `.text` payload.
    pub fn text(mut self, bytes: &[u8]) -> Self {
        self.text = bytes.to_vec();
        self
    }

    /// Append to the `.text` payload.
    pub fn append_text(mut self, bytes: &[u8]) -> Self {
        self.text.extend_from_slice(bytes);
        self
    }

    /// Set (replace) the `.rodata` payload.
    pub fn rodata(mut self, bytes: &[u8]) -> Self {
        self.rodata = bytes.to_vec();
        self
    }

    /// Add one compiler identification string to `.comment`.
    pub fn comment(mut self, s: &str) -> Self {
        self.comments.push(s.to_string());
        self
    }

    /// Add a symbol to `.symtab`.
    pub fn symbol(
        mut self,
        name: &str,
        value: u64,
        size: u64,
        binding: Binding,
        sym_type: SymType,
    ) -> Self {
        self.symbols.push(PendingSymbol {
            name: name.to_string(),
            value,
            size,
            binding,
            sym_type,
        });
        self
    }

    /// Add a `DT_NEEDED` shared-library dependency.
    pub fn needed(mut self, soname: &str) -> Self {
        self.needed.push(soname.to_string());
        self
    }

    /// Add an arbitrary PROGBITS section (escape hatch for tests).
    pub fn raw_section(mut self, name: &str, data: &[u8]) -> Self {
        self.extra_sections.push(PendingSection {
            name: name.to_string(),
            sh_type: sht::PROGBITS,
            data: data.to_vec(),
            entsize: 0,
            link_name: None,
            info: 0,
        });
        self
    }

    /// Serialize to bytes.
    pub fn build(&self) -> Vec<u8> {
        let mut sections: Vec<PendingSection> = Vec::new();

        if !self.text.is_empty() {
            sections.push(PendingSection {
                name: ".text".into(),
                sh_type: sht::PROGBITS,
                data: self.text.clone(),
                entsize: 0,
                link_name: None,
                info: 0,
            });
        }
        if !self.rodata.is_empty() {
            sections.push(PendingSection {
                name: ".rodata".into(),
                sh_type: sht::PROGBITS,
                data: self.rodata.clone(),
                entsize: 0,
                link_name: None,
                info: 0,
            });
        }
        if !self.comments.is_empty() {
            // NUL-separated, NUL-terminated, as compilers emit it.
            let mut data = Vec::new();
            for c in &self.comments {
                data.extend_from_slice(c.as_bytes());
                data.push(0);
            }
            sections.push(PendingSection {
                name: ".comment".into(),
                sh_type: sht::PROGBITS,
                data,
                entsize: 1,
                link_name: None,
                info: 0,
            });
        }

        if !self.symbols.is_empty() {
            // Locals must precede globals; sh_info is the index of the
            // first non-local symbol.
            let mut ordered: Vec<&PendingSymbol> = self.symbols.iter().collect();
            ordered.sort_by_key(|s| (s.binding != Binding::Local) as u8);
            let first_global = 1 + ordered
                .iter()
                .take_while(|s| s.binding == Binding::Local)
                .count() as u32;

            let mut strtab = vec![0u8]; // index 0 is the empty string
            let mut symtab = vec![0u8; SYM_SIZE]; // index 0 is the NULL symbol
            for sym in ordered {
                let name_off = strtab.len() as u32;
                strtab.extend_from_slice(sym.name.as_bytes());
                strtab.push(0);
                let mut e = [0u8; SYM_SIZE];
                e[0..4].copy_from_slice(&name_off.to_le_bytes());
                e[4] = (sym.binding.to_u8() << 4) | sym.sym_type.to_u8();
                e[5] = 0; // st_other
                e[6..8].copy_from_slice(&1u16.to_le_bytes()); // st_shndx: .text
                e[8..16].copy_from_slice(&sym.value.to_le_bytes());
                e[16..24].copy_from_slice(&sym.size.to_le_bytes());
                symtab.extend_from_slice(&e);
            }
            sections.push(PendingSection {
                name: ".symtab".into(),
                sh_type: sht::SYMTAB,
                data: symtab,
                entsize: SYM_SIZE as u64,
                link_name: Some(".strtab".into()),
                info: first_global,
            });
            sections.push(PendingSection {
                name: ".strtab".into(),
                sh_type: sht::STRTAB,
                data: strtab,
                entsize: 0,
                link_name: None,
                info: 0,
            });
        }

        if !self.needed.is_empty() {
            let mut dynstr = vec![0u8];
            let mut dynamic = Vec::new();
            for so in &self.needed {
                let off = dynstr.len() as u64;
                dynstr.extend_from_slice(so.as_bytes());
                dynstr.push(0);
                dynamic.extend_from_slice(&dt::NEEDED.to_le_bytes());
                dynamic.extend_from_slice(&off.to_le_bytes());
            }
            dynamic.extend_from_slice(&dt::STRTAB.to_le_bytes());
            dynamic.extend_from_slice(&0u64.to_le_bytes());
            dynamic.extend_from_slice(&dt::NULL.to_le_bytes());
            dynamic.extend_from_slice(&0u64.to_le_bytes());
            sections.push(PendingSection {
                name: ".dynstr".into(),
                sh_type: sht::STRTAB,
                data: dynstr,
                entsize: 0,
                link_name: None,
                info: 0,
            });
            sections.push(PendingSection {
                name: ".dynamic".into(),
                sh_type: sht::DYNAMIC,
                data: dynamic,
                entsize: DYN_SIZE as u64,
                link_name: Some(".dynstr".into()),
                info: 0,
            });
        }

        sections.extend(self.extra_sections.iter().cloned());

        // --- layout ---------------------------------------------------
        // Section name string table (.shstrtab), including itself.
        let mut shstrtab = vec![0u8];
        let mut name_offsets: Vec<u32> = Vec::with_capacity(sections.len() + 1);
        for s in &sections {
            name_offsets.push(shstrtab.len() as u32);
            shstrtab.extend_from_slice(s.name.as_bytes());
            shstrtab.push(0);
        }
        let shstrtab_name_off = shstrtab.len() as u32;
        shstrtab.extend_from_slice(b".shstrtab\0");

        // Section indices: 0 = NULL, 1.. = sections, last = .shstrtab.
        let shstrndx = sections.len() as u16 + 1;
        let shnum = sections.len() as u16 + 2;

        let index_of = |name: &str| -> u32 {
            sections
                .iter()
                .position(|s| s.name == name)
                .map(|i| i as u32 + 1)
                .unwrap_or(0)
        };

        // Data offsets, 8-aligned, starting after the file header.
        let mut offset = EHDR_SIZE;
        let mut data_offsets = Vec::with_capacity(sections.len());
        for s in &sections {
            offset = (offset + 7) & !7;
            data_offsets.push(offset);
            offset += s.data.len();
        }
        offset = (offset + 7) & !7;
        let shstrtab_off = offset;
        offset += shstrtab.len();
        offset = (offset + 7) & !7;
        let shoff = offset;

        let total = shoff + shnum as usize * SHDR_SIZE;
        let mut out = vec![0u8; total];

        // --- file header ----------------------------------------------
        out[0..4].copy_from_slice(&[0x7F, b'E', b'L', b'F']);
        out[4] = 2; // ELFCLASS64
        out[5] = 1; // ELFDATA2LSB
        out[6] = 1; // EV_CURRENT
        out[7] = 0; // ELFOSABI_NONE
        out[16..18].copy_from_slice(&self.elf_type.to_u16().to_le_bytes());
        out[18..20].copy_from_slice(&self.machine.to_u16().to_le_bytes());
        out[20..24].copy_from_slice(&1u32.to_le_bytes());
        out[24..32].copy_from_slice(&self.entry.to_le_bytes());
        // e_phoff = 0 (no program headers)
        out[40..48].copy_from_slice(&(shoff as u64).to_le_bytes());
        // e_flags = 0
        out[52..54].copy_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out[54..56].copy_from_slice(&56u16.to_le_bytes()); // e_phentsize
                                                           // e_phnum = 0
        out[58..60].copy_from_slice(&(SHDR_SIZE as u16).to_le_bytes());
        out[60..62].copy_from_slice(&shnum.to_le_bytes());
        out[62..64].copy_from_slice(&shstrndx.to_le_bytes());

        // --- section payloads -------------------------------------------
        for (s, &off) in sections.iter().zip(&data_offsets) {
            out[off..off + s.data.len()].copy_from_slice(&s.data);
        }
        out[shstrtab_off..shstrtab_off + shstrtab.len()].copy_from_slice(&shstrtab);

        // --- section headers ---------------------------------------------
        let mut write_shdr = |idx: usize,
                              name: u32,
                              sh_type: u32,
                              off: usize,
                              size: usize,
                              link: u32,
                              info: u32,
                              entsize: u64| {
            let base = shoff + idx * SHDR_SIZE;
            let h = &mut out[base..base + SHDR_SIZE];
            h[0..4].copy_from_slice(&name.to_le_bytes());
            h[4..8].copy_from_slice(&sh_type.to_le_bytes());
            // sh_flags and sh_addr left 0: SIREN never maps these files.
            h[24..32].copy_from_slice(&(off as u64).to_le_bytes());
            h[32..40].copy_from_slice(&(size as u64).to_le_bytes());
            h[40..44].copy_from_slice(&link.to_le_bytes());
            h[44..48].copy_from_slice(&info.to_le_bytes());
            h[48..56].copy_from_slice(&1u64.to_le_bytes()); // sh_addralign
            h[56..64].copy_from_slice(&entsize.to_le_bytes());
        };

        // Index 0: the NULL header (all zeros — already zeroed).
        for (i, s) in sections.iter().enumerate() {
            let link = s.link_name.as_deref().map(&index_of).unwrap_or(0);
            write_shdr(
                i + 1,
                name_offsets[i],
                s.sh_type,
                data_offsets[i],
                s.data.len(),
                link,
                s.info,
                s.entsize,
            );
        }
        write_shdr(
            shstrndx as usize,
            shstrtab_name_off,
            sht::STRTAB,
            shstrtab_off,
            shstrtab.len(),
            0,
            0,
            0,
        );

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::ElfFile;

    #[test]
    fn minimal_binary_parses() {
        let bin = ElfBuilder::new(ElfType::Exec).text(b"\xc3").build();
        let f = ElfFile::parse(&bin).unwrap();
        assert_eq!(f.elf_type(), ElfType::Exec);
        assert_eq!(f.section_data(".text").unwrap(), b"\xc3");
    }

    #[test]
    fn empty_builder_still_valid() {
        let bin = ElfBuilder::new(ElfType::Dyn).build();
        let f = ElfFile::parse(&bin).unwrap();
        assert_eq!(f.elf_type(), ElfType::Dyn);
        assert!(f.comment_strings().is_empty());
        assert!(f.global_symbols().is_empty());
        assert!(f.needed_libraries().is_empty());
    }

    #[test]
    fn comment_round_trip_multiple() {
        let bin = ElfBuilder::new(ElfType::Dyn)
            .comment("GCC: (SUSE Linux) 13.2.1")
            .comment("clang version 17.0.0 (Cray)")
            .build();
        let f = ElfFile::parse(&bin).unwrap();
        assert_eq!(
            f.comment_strings(),
            vec!["GCC: (SUSE Linux) 13.2.1", "clang version 17.0.0 (Cray)"]
        );
    }

    #[test]
    fn symbols_round_trip_with_binding_split() {
        let bin = ElfBuilder::new(ElfType::Dyn)
            .text(b"code")
            .symbol("helper", 0x10, 8, Binding::Local, SymType::Func)
            .symbol("main", 0x20, 64, Binding::Global, SymType::Func)
            .symbol("g_table", 0x100, 256, Binding::Global, SymType::Object)
            .symbol("weak_hook", 0x40, 4, Binding::Weak, SymType::Func)
            .build();
        let f = ElfFile::parse(&bin).unwrap();
        let all = f.all_symbols();
        assert_eq!(all.len(), 4);
        let globals = f.global_symbols();
        let names: Vec<&str> = globals.iter().map(|s| s.name.as_str()).collect();
        // Global scope = GLOBAL + WEAK (externally visible), not LOCAL.
        assert!(names.contains(&"main"));
        assert!(names.contains(&"g_table"));
        assert!(names.contains(&"weak_hook"));
        assert!(!names.contains(&"helper"));
        let main = globals.iter().find(|s| s.name == "main").unwrap();
        assert_eq!(main.value, 0x20);
        assert_eq!(main.size, 64);
        assert_eq!(main.sym_type, SymType::Func);
    }

    #[test]
    fn needed_libraries_round_trip() {
        let bin = ElfBuilder::new(ElfType::Dyn)
            .needed("libm.so.6")
            .needed("libmpi_cray.so.12")
            .needed("libsci_cray.so.6")
            .build();
        let f = ElfFile::parse(&bin).unwrap();
        assert_eq!(
            f.needed_libraries(),
            vec!["libm.so.6", "libmpi_cray.so.12", "libsci_cray.so.6"]
        );
    }

    #[test]
    fn raw_section_round_trip() {
        let bin = ElfBuilder::new(ElfType::Dyn)
            .raw_section(".note.siren", b"custom-payload")
            .build();
        let f = ElfFile::parse(&bin).unwrap();
        assert_eq!(f.section_data(".note.siren").unwrap(), b"custom-payload");
    }

    #[test]
    fn full_featured_binary() {
        let bin = ElfBuilder::new(ElfType::Dyn)
            .machine(Machine::X86_64)
            .entry(0x1040)
            .text(&[0x90; 512])
            .rodata(b"version 2.1\0help text\0")
            .comment("GCC: (HPE) 12.2.0")
            .symbol("solver_init", 0x1040, 128, Binding::Global, SymType::Func)
            .symbol("internal", 0x10C0, 32, Binding::Local, SymType::Func)
            .needed("libc.so.6")
            .build();
        let f = ElfFile::parse(&bin).unwrap();
        assert_eq!(f.machine(), Machine::X86_64);
        assert_eq!(f.entry(), 0x1040);
        assert_eq!(
            f.section_data(".rodata").unwrap(),
            b"version 2.1\0help text\0"
        );
        assert_eq!(f.global_symbols().len(), 1);
        assert_eq!(f.needed_libraries(), vec!["libc.so.6"]);
    }

    #[test]
    fn deterministic_output() {
        let build = || {
            ElfBuilder::new(ElfType::Dyn)
                .text(b"abc")
                .comment("GCC")
                .symbol("f", 1, 2, Binding::Global, SymType::Func)
                .build()
        };
        assert_eq!(build(), build());
    }
}
