//! Fleet topology: which daemons exist, how the corpus is partitioned
//! across them, and the policies (probing, retry, promotion) the
//! router applies to keep reads flowing.

use siren_proto::RetryPolicy;
use std::net::SocketAddr;
use std::time::Duration;

/// One shard group of the fleet: a leader daemon owning a disjoint
/// slice of the corpus, plus zero or more epoch-shipping followers
/// (PR-9 replicas) the router may read from when the leader is dark.
#[derive(Debug, Clone)]
pub struct ReplicaSet {
    /// Stable name used in warnings, metrics, and logs (e.g.
    /// `"shard-0"`). Must be unique within the fleet.
    pub name: String,
    /// The leader daemon's query address.
    pub leader: SocketAddr,
    /// Follower query addresses, in configured preference order.
    pub followers: Vec<SocketAddr>,
    /// Host claims: the exact hosts whose records this set owns.
    /// Empty = the set may hold records of any host (no host-based
    /// pruning).
    pub hosts: Vec<String>,
    /// Epoch claim: the inclusive epoch range this set owns. `None` =
    /// all epochs. Claims are declarative config, never inferred from
    /// live status — pruning must not depend on stale health data.
    pub epochs: Option<(u64, u64)>,
}

impl ReplicaSet {
    /// A set with no followers and no claims.
    pub fn solo(name: impl Into<String>, leader: SocketAddr) -> Self {
        Self {
            name: name.into(),
            leader,
            followers: Vec::new(),
            hosts: Vec::new(),
            epochs: None,
        }
    }

    /// Every member address, leader first.
    pub fn members(&self) -> impl Iterator<Item = SocketAddr> + '_ {
        std::iter::once(self.leader).chain(self.followers.iter().copied())
    }
}

/// The fleet a [`Router`] fronts: an ordered list of replica sets
/// (order is the shard index when `job_hash_sharded`), plus the
/// shared health/retry policies.
///
/// [`Router`]: crate::Router
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The shard groups. When `job_hash_sharded`, set `i` owns job
    /// shard `i` under `siren_wire::ShardRouter` — the same xxh64
    /// partition the sharded ingest tier uses.
    pub sets: Vec<ReplicaSet>,
    /// True when the sets partition jobs by ingest's job-hash shard
    /// function, letting the router prune by an exact-job selection.
    pub job_hash_sharded: bool,
    /// How often the background health checker probes each backend.
    pub probe_interval: Duration,
    /// How long a leader must stay dark before the checker repoints
    /// the set at a caught-up follower (automated promotion).
    pub promote_after: Duration,
    /// Dial/retry policy shared by probes and query fan-out.
    pub retry: RetryPolicy,
    /// Per-operation I/O timeout on backend connections.
    pub connect_timeout: Duration,
    /// A follower lagging more than this many epochs is not considered
    /// fresh enough to serve reads or take a promotion.
    pub max_lag_epochs: u64,
}

impl FleetConfig {
    /// A fleet of solo job-hash shards at `leaders`, under default
    /// policies.
    pub fn sharded(leaders: impl IntoIterator<Item = SocketAddr>) -> Self {
        let sets = leaders
            .into_iter()
            .enumerate()
            .map(|(i, addr)| ReplicaSet::solo(format!("shard-{i}"), addr))
            .collect();
        Self {
            sets,
            job_hash_sharded: true,
            probe_interval: Duration::from_millis(500),
            promote_after: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            connect_timeout: Duration::from_secs(5),
            max_lag_epochs: 0,
        }
    }

    /// Reject structurally invalid fleets: no sets, duplicate or empty
    /// set names, duplicate member addresses, inverted epoch claims.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets.is_empty() {
            return Err("fleet has no replica sets".into());
        }
        let mut names = std::collections::HashSet::new();
        let mut addrs = std::collections::HashSet::new();
        for set in &self.sets {
            if set.name.is_empty() {
                return Err("replica set with an empty name".into());
            }
            if !names.insert(set.name.as_str()) {
                return Err(format!("duplicate replica set name {:?}", set.name));
            }
            for member in set.members() {
                if !addrs.insert(member) {
                    return Err(format!(
                        "address {member} appears in more than one backend slot"
                    ));
                }
            }
            if let Some((lo, hi)) = set.epochs {
                if lo > hi {
                    return Err(format!(
                        "set {:?} has an inverted epoch claim ({lo}, {hi})",
                        set.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn validate_accepts_a_plain_sharded_fleet() {
        let cfg = FleetConfig::sharded([addr(7001), addr(7002)]);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.sets[0].name, "shard-0");
        assert_eq!(cfg.sets[1].name, "shard-1");
    }

    #[test]
    fn validate_rejects_duplicates_and_inversions() {
        assert!(FleetConfig::sharded([]).validate().is_err());

        let mut dup_name = FleetConfig::sharded([addr(7001), addr(7002)]);
        dup_name.sets[1].name = "shard-0".into();
        assert!(dup_name.validate().is_err());

        let dup_addr = FleetConfig::sharded([addr(7001), addr(7001)]);
        assert!(dup_addr.validate().is_err());

        let mut inverted = FleetConfig::sharded([addr(7001)]);
        inverted.sets[0].epochs = Some((9, 3));
        assert!(inverted.validate().is_err());
    }
}
