//! The runnable face of the router: a wire-protocol server on its own
//! port, so unmodified `SirenClient`s (and `MuxClient`s) federate
//! transparently — they dial the router exactly as they would dial one
//! daemon.
//!
//! The accept loop parks on the reactor's [`Poller`] (the same
//! notify-to-wake shutdown idiom as the UDP ingest tier); each accepted
//! connection is served by a dedicated thread with **blocking** I/O,
//! because answering one federated plan blocks on backend fan-out
//! anyway — an event-driven request loop would buy nothing while the
//! merge waits on upstream sockets. Plans are answered as one whole
//! reply (batches, optional warning, `StreamEnd { cursor: None }`); no
//! cursor is ever parked, so `FetchCursor`/`CloseCursor` draw
//! `UnknownCursor`, which clients already handle.
//!
//! The router negotiates **v2..=v3** — protocol v1 cannot carry plans
//! or warnings, and silently downgrading federation to v1 one-shots
//! would mean silently partial answers. A v1-only client gets the
//! standard typed `UnsupportedVersion { 2, 3 }` refusal.

use crate::router::{Router, RouterError};
use siren_proto::{
    decode_hello, decode_stream_frame, encode_hello_ack, encode_stream_frame, negotiate,
    read_frame, write_frame, FrameError, PlanRow, QueryError, QueryPlan, QueryRequest,
    QueryResponse, RowBatch, MAX_BATCH_ROWS,
};
use siren_reactor::{Event, Interest, Poller};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Lowest protocol version the router serves (plans need v2).
const ROUTER_VERSION_MIN: u16 = 2;
/// Poller key of the accept socket.
const LISTENER_KEY: usize = 0;
/// Read timeout granularity on served connections, so shutdown is
/// noticed promptly even mid-request.
const CONN_TICK: Duration = Duration::from_millis(100);

/// A wire-protocol server wrapping a [`Router`]. Dropping it (or
/// calling [`RouterDaemon::shutdown`]) stops the accept loop, wakes
/// the poller, and joins every connection thread.
pub struct RouterDaemon {
    local_addr: SocketAddr,
    poller: Arc<Poller>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterDaemon {
    /// Bind `addr` and start serving `router` over the wire protocol.
    pub fn spawn(router: Router, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Arc::new(Poller::new()?);
        poller.add(listener.as_raw_fd(), LISTENER_KEY, Interest::READ)?;
        let stop = Arc::new(AtomicBool::new(false));

        let thread_poller = Arc::clone(&poller);
        let thread_stop = Arc::clone(&stop);
        let router = Arc::new(router);
        let accept_thread = std::thread::Builder::new()
            .name("siren-fed-accept".into())
            .spawn(move || {
                accept_loop(listener, thread_poller, thread_stop, router);
            })?;
        Ok(Self {
            local_addr,
            poller,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients dial — one router port fronting the fleet.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, sever the accept loop, and join it. Connection
    /// threads notice the stop flag within one read tick.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.poller.notify();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterDaemon {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    poller: Arc<Poller>,
    stop: Arc<AtomicBool>,
    router: Arc<Router>,
) {
    let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut events: Vec<Event> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        events.clear();
        if poller.wait(&mut events, None).is_err() {
            break;
        }
        loop {
            match listener.accept() {
                Ok((socket, _)) => {
                    let conn_router = Arc::clone(&router);
                    let conn_stop = Arc::clone(&stop);
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("siren-fed-conn".into())
                        .spawn(move || {
                            let _ = serve_conn(socket, conn_router, conn_stop);
                        })
                    {
                        let mut held = conns.lock();
                        // Reap finished threads so the list stays small
                        // on long-lived routers.
                        held.retain(|h| !h.is_finished());
                        held.push(handle);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
    let _ = poller.delete(listener.as_raw_fd());
    for handle in conns.lock().drain(..) {
        let _ = handle.join();
    }
}

/// Wait for the next frame, ticking the read timeout between frames
/// so the stop flag is honored while idle; once bytes are arriving,
/// read the whole frame under a generous deadline. `Ok(None)` = clean
/// EOF, stop, or an unrecoverable framing violation (drop the
/// connection — resync is impossible on a byte stream).
fn read_frame_ticked(socket: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(None);
        }
        // Peek, don't read: the frame decoder must see every byte.
        match socket.peek(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    socket.set_read_timeout(Some(Duration::from_secs(30)))?;
    let result = read_frame(socket);
    socket.set_read_timeout(Some(CONN_TICK))?;
    match result {
        Ok(payload) => Ok(Some(payload)),
        Err(FrameError::Closed) => Ok(None),
        Err(FrameError::Io(e)) => Err(e),
        Err(_) => Ok(None),
    }
}

fn serve_conn(mut socket: TcpStream, router: Arc<Router>, stop: Arc<AtomicBool>) -> io::Result<()> {
    socket.set_nodelay(true)?;
    socket.set_read_timeout(Some(CONN_TICK))?;
    socket.set_write_timeout(Some(Duration::from_secs(30)))?;

    // Hello exchange: same negotiation as a daemon, floored at v2.
    let Some(hello) = read_frame_ticked(&mut socket, &stop)? else {
        return Ok(());
    };
    let Some((client_min, client_max)) = decode_hello(&hello) else {
        let err = QueryResponse::Error(QueryError::Malformed("bad hello".into()));
        return write_frame(&mut socket, &err.encode_versioned(ROUTER_VERSION_MIN));
    };
    let version = match negotiate(client_min, client_max) {
        Ok(version) if version >= ROUTER_VERSION_MIN => version,
        _ => {
            let err = QueryResponse::Error(QueryError::UnsupportedVersion {
                server_min: ROUTER_VERSION_MIN,
                server_max: siren_proto::PROTOCOL_VERSION,
            });
            return write_frame(&mut socket, &err.encode_versioned(ROUTER_VERSION_MIN));
        }
    };
    write_frame(&mut socket, &encode_hello_ack(version))?;

    // Request loop. Requests are served in arrival order; on v3 each
    // reply is enveloped under the request's stream id, which is all a
    // MuxClient needs to route it (frames of one reply stay
    // contiguous).
    while let Some(payload) = read_frame_ticked(&mut socket, &stop)? {
        let (stream_id, body): (u32, Vec<u8>) = if version >= 3 {
            match decode_stream_frame(&payload) {
                Ok(frame) => (frame.stream_id, frame.body),
                Err(_) => {
                    let err = QueryResponse::Error(QueryError::Malformed(
                        "undecodable stream envelope".into(),
                    ));
                    write_versioned(&mut socket, version, 0, &err)?;
                    return Ok(());
                }
            }
        } else {
            (0, payload)
        };
        let (request, trace) = match QueryRequest::decode_traced(&body, version) {
            Ok(decoded) => decoded,
            Err(err) => {
                write_versioned(&mut socket, version, stream_id, &QueryResponse::Error(err))?;
                continue;
            }
        };
        match request {
            QueryRequest::Plan(plan) => {
                serve_plan(&mut socket, version, stream_id, &router, plan, trace)?;
            }
            QueryRequest::Status => {
                let response = match router.status() {
                    Ok(status) => QueryResponse::Status(status),
                    Err(err) => QueryResponse::Error(QueryError::Internal(err.to_string())),
                };
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
            QueryRequest::Metrics => {
                let response = QueryResponse::Metrics(router.registry().snapshot());
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
            QueryRequest::Traces(filter) => {
                let response = QueryResponse::Traces(router.traces().traces(&filter));
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
            QueryRequest::ByJob { job_id } => {
                let plan = QueryPlan::records().filter(siren_proto::Selection::all().job(job_id));
                let response = one_shot(&router, plan, trace, |rows| {
                    QueryResponse::Rows(rows.into_iter().filter_map(PlanRow::into_record).collect())
                });
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
            QueryRequest::Neighbors { hash, k, min_score } => {
                let plan = QueryPlan::neighbors(hash, min_score).limit(k.into());
                let response = one_shot(&router, plan, trace, |rows| {
                    QueryResponse::Neighbors(
                        rows.into_iter()
                            .filter_map(PlanRow::into_neighbor)
                            .collect(),
                    )
                });
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
            QueryRequest::LibraryUsage { .. } => {
                // Per-library host counts are distinct-counts: not
                // summable across job shards. Refusing typed beats
                // answering wrong.
                let response = QueryResponse::Error(QueryError::Internal(
                    "library usage is not federatable (per-library host counts \
                     do not sum across shards); query a shard directly"
                        .into(),
                ));
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
            QueryRequest::FetchCursor { cursor } | QueryRequest::CloseCursor { cursor } => {
                // The router answers plans whole; it never parks a
                // cursor, so any cursor id is unknown by construction.
                let response = QueryResponse::Error(QueryError::UnknownCursor(cursor));
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
            QueryRequest::SubscribeEpochs { .. } => {
                let response = QueryResponse::Error(QueryError::Internal(
                    "epoch subscription is not served by a federation router; \
                     replicate from a shard leader directly"
                        .into(),
                ));
                write_versioned(&mut socket, version, stream_id, &response)?;
            }
        }
    }
    Ok(())
}

/// Answer a one-shot request through the plan path. One-shot replies
/// have nowhere to carry a warning, so a partial result is refused
/// typed rather than returned silently incomplete.
fn one_shot(
    router: &Router,
    plan: QueryPlan,
    trace: Option<siren_proto::TraceId>,
    wrap: impl FnOnce(Vec<PlanRow>) -> QueryResponse,
) -> QueryResponse {
    match router.query_traced(plan, trace) {
        Ok(stream) => {
            let (rows, warning) = stream.collect_rows_warned();
            match warning {
                None => wrap(rows),
                Some(warning) => QueryResponse::Error(QueryError::Internal(warning.to_string())),
            }
        }
        Err(err) => QueryResponse::Error(router_error(err)),
    }
}

fn router_error(err: RouterError) -> QueryError {
    match err {
        RouterError::Plan(err) => err,
        other => QueryError::Internal(other.to_string()),
    }
}

fn serve_plan(
    socket: &mut TcpStream,
    version: u16,
    stream_id: u32,
    router: &Router,
    plan: QueryPlan,
    trace: Option<siren_proto::TraceId>,
) -> io::Result<()> {
    let batch_rows = plan.batch_rows.clamp(1, MAX_BATCH_ROWS) as usize;
    let source = plan.source.clone();
    let mut stream = match router.query_traced(plan, trace) {
        Ok(stream) => stream,
        Err(err) => {
            let response = QueryResponse::Error(router_error(err));
            return write_versioned(socket, version, stream_id, &response);
        }
    };
    let mut rows: Vec<PlanRow> = Vec::with_capacity(batch_rows);
    loop {
        let row = stream.next();
        let done = row.is_none();
        if let Some(row) = row {
            rows.push(row);
        }
        if rows.len() >= batch_rows || (done && !rows.is_empty()) {
            let batch = rows_to_batch(&source, std::mem::take(&mut rows));
            write_versioned(socket, version, stream_id, &QueryResponse::Batch(batch))?;
        }
        if done {
            break;
        }
    }
    if let Some(warning) = stream.warning() {
        write_versioned(socket, version, stream_id, &QueryResponse::Warning(warning))?;
    }
    write_versioned(
        socket,
        version,
        stream_id,
        &QueryResponse::StreamEnd { cursor: None },
    )
}

/// Regroup merged rows into a wire batch of the plan's row kind.
fn rows_to_batch(source: &siren_proto::PlanSource, rows: Vec<PlanRow>) -> RowBatch {
    match source {
        siren_proto::PlanSource::Records => {
            RowBatch::Records(rows.into_iter().filter_map(PlanRow::into_record).collect())
        }
        siren_proto::PlanSource::UsageTable => {
            RowBatch::Usage(rows.into_iter().filter_map(PlanRow::into_usage).collect())
        }
        siren_proto::PlanSource::Neighbors { .. } => RowBatch::Neighbors(
            rows.into_iter()
                .filter_map(PlanRow::into_neighbor)
                .collect(),
        ),
    }
}

fn write_versioned(
    socket: &mut TcpStream,
    version: u16,
    stream_id: u32,
    response: &QueryResponse,
) -> io::Result<()> {
    let body = response.encode_versioned(version);
    if version >= 3 {
        // Raw envelope (no compression): protocol-legal under any
        // client's accept flag, and batches are already bounded.
        let enveloped = encode_stream_frame(stream_id, &body, false, None);
        write_frame(socket, &enveloped)
    } else {
        write_frame(socket, &body)
    }
}
