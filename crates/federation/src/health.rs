//! Background backend probing, replica freshness tracking, and
//! automated follower promotion.
//!
//! A [`HealthChecker`] thread sweeps the fleet every `probe_interval`:
//! each member answers a `Status` request (dialed under the shared
//! [`RetryPolicy`]'s timeout, one attempt per sweep — the sweep cadence
//! *is* the retry loop), and the v3 `StatusInfo` replication counters
//! give each follower's epoch lag. The router consults the resulting
//! [`FleetHealth`] to order read candidates — active leader first,
//! then caught-up followers, freshest first — and feeds its own dial
//! outcomes back in, so a query-path failure marks a backend down
//! without waiting for the next sweep.
//!
//! When a set's active leader stays dark past `promote_after`, the
//! checker repoints the set at its freshest caught-up follower
//! (`fed.promotions`) and invokes the promotion hook, through which an
//! operator (or the failover test) detaches the follower's replicator
//! so it starts serving as a leader — the ROADMAP's follower→leader
//! item, automated.
//!
//! [`RetryPolicy`]: siren_proto::RetryPolicy

use crate::config::FleetConfig;
use crate::metrics::RouterMetrics;
use parking_lot::Mutex;
use siren_obs::Timer;
use siren_proto::SirenClient;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The promotion hook: `(set name, old leader, new leader)`.
pub type PromotionHook = Arc<dyn Fn(&str, SocketAddr, SocketAddr) + Send + Sync>;

#[derive(Debug, Clone, Copy)]
struct MemberState {
    addr: SocketAddr,
    /// Last observed reachability (optimistic before the first probe).
    up: bool,
    /// Epochs behind its leader, from the v3 replication counters.
    lag_epochs: u64,
}

#[derive(Debug)]
struct SetState {
    /// Who currently serves as this set's leader — starts at the
    /// configured leader, repointed by promotion.
    active_leader: SocketAddr,
    /// When the active leader was first seen dark, if it still is.
    leader_dark_since: Option<Instant>,
    /// All members (configured leader + followers), config order.
    members: Vec<MemberState>,
}

/// Shared, continuously refreshed view of backend reachability and
/// replica freshness. The query path reads candidate orderings from
/// it and reports its own dial/stream failures into it.
pub struct FleetHealth {
    cfg: FleetConfig,
    sets: Mutex<Vec<SetState>>,
    hook: Mutex<Option<PromotionHook>>,
}

impl std::fmt::Debug for FleetHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetHealth")
            .field("sets", &self.sets.lock().len())
            .finish()
    }
}

impl FleetHealth {
    pub(crate) fn new(cfg: FleetConfig) -> Self {
        let sets = cfg
            .sets
            .iter()
            .map(|set| SetState {
                active_leader: set.leader,
                leader_dark_since: None,
                members: set
                    .members()
                    .map(|addr| MemberState {
                        addr,
                        up: true,
                        lag_epochs: 0,
                    })
                    .collect(),
            })
            .collect();
        Self {
            cfg,
            sets: Mutex::new(sets),
            hook: Mutex::new(None),
        }
    }

    /// Install the promotion hook, replacing any previous one.
    pub fn set_promotion_hook(&self, hook: PromotionHook) {
        *self.hook.lock() = Some(hook);
    }

    /// The address currently serving as `set`'s leader.
    pub fn active_leader(&self, set: usize) -> SocketAddr {
        self.sets.lock()[set].active_leader
    }

    /// Read candidates for `set`, best first: the active leader (when
    /// not known dark), then reachable followers within the freshness
    /// bound ordered by lag, then every remaining member as a last
    /// resort — the query path probes them in this order and fails the
    /// set only when all are exhausted.
    pub fn candidates(&self, set: usize) -> Vec<SocketAddr> {
        let sets = self.sets.lock();
        let state = &sets[set];
        let mut out = Vec::with_capacity(state.members.len());
        let leader_up = state
            .members
            .iter()
            .find(|m| m.addr == state.active_leader)
            .is_none_or(|m| m.up);
        if leader_up {
            out.push(state.active_leader);
        }
        let mut fresh: Vec<&MemberState> = state
            .members
            .iter()
            .filter(|m| {
                m.addr != state.active_leader && m.up && m.lag_epochs <= self.cfg.max_lag_epochs
            })
            .collect();
        fresh.sort_by_key(|m| m.lag_epochs);
        out.extend(fresh.iter().map(|m| m.addr));
        for member in &state.members {
            if !out.contains(&member.addr) {
                out.push(member.addr);
            }
        }
        out
    }

    /// Query-path feedback: `addr` answered (or failed) a dial/stream.
    pub fn note(&self, addr: SocketAddr, up: bool) {
        let mut sets = self.sets.lock();
        for state in sets.iter_mut() {
            for member in state.members.iter_mut() {
                if member.addr == addr {
                    member.up = up;
                }
            }
        }
    }

    /// One synchronous probe sweep over every member: refresh
    /// reachability and lag, update the up/down gauges, and run the
    /// promotion policy. The checker thread calls this on its cadence;
    /// tests call it directly for determinism.
    pub(crate) fn probe_now(&self, metrics: &RouterMetrics) {
        // Probe outside the lock: a dark backend costs a full connect
        // timeout, and the query path must not block behind it.
        let targets: Vec<(usize, String, SocketAddr)> = {
            let sets = self.sets.lock();
            self.cfg
                .sets
                .iter()
                .enumerate()
                .flat_map(|(i, set)| {
                    sets[i]
                        .members
                        .iter()
                        .map(move |m| (i, set.name.clone(), m.addr))
                })
                .collect()
        };
        let mut results = Vec::with_capacity(targets.len());
        for (set, name, addr) in targets {
            metrics.probes.inc();
            let timer = Timer::start(metrics.probe_hist(&name));
            let probed = SirenClient::connect_with_timeout(addr, self.cfg.connect_timeout)
                .and_then(|mut client| client.status());
            timer.stop();
            match probed {
                Ok(status) => results.push((set, addr, true, status.repl_lag_epochs)),
                Err(_) => {
                    metrics.probe_failures.inc();
                    results.push((set, addr, false, 0));
                }
            }
        }

        let mut up_count = 0i64;
        let mut down_count = 0i64;
        let mut promotions: Vec<(String, SocketAddr, SocketAddr)> = Vec::new();
        {
            let mut sets = self.sets.lock();
            for (set, addr, up, lag) in results {
                if let Some(member) = sets[set].members.iter_mut().find(|m| m.addr == addr) {
                    member.up = up;
                    if up {
                        member.lag_epochs = lag;
                    }
                }
            }
            for (i, state) in sets.iter_mut().enumerate() {
                for member in &state.members {
                    if member.up {
                        up_count += 1;
                    } else {
                        down_count += 1;
                    }
                }
                let leader_up = state
                    .members
                    .iter()
                    .find(|m| m.addr == state.active_leader)
                    .is_none_or(|m| m.up);
                if leader_up {
                    state.leader_dark_since = None;
                    continue;
                }
                let dark_since = *state.leader_dark_since.get_or_insert_with(Instant::now);
                if dark_since.elapsed() < self.cfg.promote_after {
                    continue;
                }
                // Leader dark past the threshold: promote the freshest
                // caught-up follower, if one exists.
                let candidate = state
                    .members
                    .iter()
                    .filter(|m| {
                        m.addr != state.active_leader
                            && m.up
                            && m.lag_epochs <= self.cfg.max_lag_epochs
                    })
                    .min_by_key(|m| m.lag_epochs)
                    .map(|m| m.addr);
                if let Some(new_leader) = candidate {
                    let old = state.active_leader;
                    state.active_leader = new_leader;
                    state.leader_dark_since = None;
                    metrics.promotions.inc();
                    promotions.push((self.cfg.sets[i].name.clone(), old, new_leader));
                }
            }
        }
        metrics.backends_up.set(up_count);
        metrics.backends_down.set(down_count);
        if !promotions.is_empty() {
            let hook = self.hook.lock().clone();
            if let Some(hook) = hook {
                for (name, old, new) in promotions {
                    hook(&name, old, new);
                }
            }
        }
    }
}

/// The background probe thread. Dropping it (or calling
/// [`HealthChecker::shutdown`]) stops the sweep loop.
pub struct HealthChecker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HealthChecker {
    pub(crate) fn spawn(health: Arc<FleetHealth>, metrics: Arc<RouterMetrics>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let interval = health.cfg.probe_interval;
        let handle = std::thread::Builder::new()
            .name("siren-fed-health".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    health.probe_now(&metrics);
                    // Sleep in short slices so shutdown stays prompt.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !thread_stop.load(Ordering::Relaxed) {
                        let slice = remaining.min(std::time::Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn health checker");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the sweep loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HealthChecker {
    fn drop(&mut self) {
        self.stop_inner();
    }
}
