//! # siren-federation — scatter-gather query routing over a daemon fleet
//!
//! One siren daemon holds one corpus; the paper's fleet-scale analysis
//! runs against many — job/host shards for capacity, epoch-shipping
//! replicas (the `siren-service` replication tier) for read
//! availability. This crate is the tier in front of them:
//!
//! * [`FleetConfig`] declares the topology — an ordered list of
//!   [`ReplicaSet`]s (leader + followers), each owning a disjoint
//!   corpus slice by job-hash shard (`siren_wire::ShardRouter`, the
//!   same partition ingest uses), optional host claims, and optional
//!   epoch claims.
//! * [`Router`] accepts a v2/v3 [`QueryPlan`], prunes backends by the
//!   selection's [`ShardKey`], fans the plan out over per-backend
//!   multiplexed streams, and k-way-merges the ordered replies —
//!   byte/order-identical to a single daemon ingesting the union
//!   corpus (see `merge` for the proof sketch). Usage tables are
//!   summed per user across shards and re-sorted; limits cut top-k
//!   across backends.
//! * A background [`HealthChecker`] probes every backend with `Status`
//!   requests, tracks follower lag from the v3 replication counters,
//!   orders read candidates freshest-first, and — when a leader stays
//!   dark past `promote_after` — repoints the set at a caught-up
//!   follower (automated promotion, `fed.promotions`).
//! * Unreachable shards degrade to **partial results**: the merged
//!   stream still ends normally, carrying a typed [`QueryWarning`]
//!   that enumerates exactly the missing backends. Zero reachable
//!   backends is the only hard failure.
//! * [`RouterDaemon`] serves the existing wire protocol (v2/v3) on its
//!   own port through the reactor's poller, so unmodified
//!   `SirenClient`s federate transparently.
//!
//! Router health lands in the `fed.*` series of [`Router::registry`]
//! and renders in `siren_core::report::telemetry_report`; router spans
//! join the existing trace trees via propagated trace ids.
//!
//! [`QueryPlan`]: siren_proto::QueryPlan
//! [`ShardKey`]: siren_proto::ShardKey
//! [`QueryWarning`]: siren_proto::QueryWarning

mod config;
mod daemon;
mod health;
mod merge;
mod metrics;
mod router;

pub use config::{FleetConfig, ReplicaSet};
pub use daemon::RouterDaemon;
pub use health::{FleetHealth, HealthChecker, PromotionHook};
pub use merge::{merge_usage_tables, neighbor_row_cmp, plan_row_cmp, record_row_cmp};
pub use router::{FederatedStream, Router, RouterError};
