//! Ordered k-way merge keys and the usage-table aggregation — the part
//! of federation that must be *provably* equal to a single daemon
//! holding the union corpus.
//!
//! The single-daemon executor answers a record plan in commit order
//! (epoch ascending, then the stored order within each epoch), applies
//! `TimeAsc`/`TimeDesc` as a **stable** sort over that sequence, and
//! sorts neighbor hits by score descending with commit position as the
//! tie-break. Under the canonical-corpus discipline (each epoch's
//! records stored in [`siren_consolidate::record_order`] — what the
//! consolidation pipeline produces, and what any partitioned ingest
//! must preserve), every one of those orders factors into a per-row
//! key the router can merge by:
//!
//! | plan order | merge key |
//! |---|---|
//! | `Commit`   | `(epoch, record_order)` |
//! | `TimeAsc`  | `(time, epoch, record_order)` |
//! | `TimeDesc` | `(time desc, epoch, record_order)` |
//! | neighbors  | `(score desc, epoch, record_order)` |
//!
//! Because shard groups own disjoint job namespaces, `record_order`
//! (which leads with the job id) never ties across backends, so the
//! merge is total and deterministic.
//!
//! Usage tables do not stream-merge: per-user counters must be summed
//! across shards **before** the sort and the limit, so the router
//! collects every backend's full table (limit stripped from the
//! fanned-out plan), sums per user, re-sorts with the same comparator
//! `siren_analysis::usage_table` uses, and applies the limit last.

use siren_analysis::UsageRow;
use siren_consolidate::record_order;
use siren_proto::{NeighborRow, Order, PlanRow, RecordRow};
use std::cmp::Ordering;

/// Total order of two record rows under a plan `order` — the k-way
/// merge comparator for `PlanSource::Records`.
pub fn record_row_cmp(order: Order, a: &RecordRow, b: &RecordRow) -> Ordering {
    match order {
        Order::Commit => (),
        Order::TimeAsc => match a.record.key.time.cmp(&b.record.key.time) {
            Ordering::Equal => (),
            other => return other,
        },
        Order::TimeDesc => match b.record.key.time.cmp(&a.record.key.time) {
            Ordering::Equal => (),
            other => return other,
        },
    }
    a.epoch
        .cmp(&b.epoch)
        .then_with(|| record_order(&a.record, &b.record))
}

/// Total order of two neighbor rows: best score first, then commit
/// position — the k-way merge comparator for `PlanSource::Neighbors`.
pub fn neighbor_row_cmp(a: &NeighborRow, b: &NeighborRow) -> Ordering {
    b.score
        .cmp(&a.score)
        .then_with(|| a.epoch.cmp(&b.epoch))
        .then_with(|| record_order(&a.record, &b.record))
}

/// Total order of two plan rows under `order`. Rows of mismatched
/// kinds never meet in one stream; treat that defensively as equal.
pub fn plan_row_cmp(order: Order, a: &PlanRow, b: &PlanRow) -> Ordering {
    match (a, b) {
        (PlanRow::Record(a), PlanRow::Record(b)) => record_row_cmp(order, a, b),
        (PlanRow::Neighbor(a), PlanRow::Neighbor(b)) => neighbor_row_cmp(a, b),
        _ => Ordering::Equal,
    }
}

/// Merge per-backend usage tables into the union table: sum each
/// user's counters, then re-sort exactly as `usage_table` does
/// (busiest first, user name as the tie-break). Correct because shard
/// groups partition *jobs*: a user's job set is the disjoint union of
/// their per-shard job sets, so every counter — jobs included — is
/// summable.
pub fn merge_usage_tables(tables: Vec<Vec<UsageRow>>) -> Vec<UsageRow> {
    let mut by_user: std::collections::HashMap<String, UsageRow> = std::collections::HashMap::new();
    for table in tables {
        for row in table {
            match by_user.get_mut(&row.user) {
                Some(sum) => {
                    sum.jobs += row.jobs;
                    sum.system_procs += row.system_procs;
                    sum.user_procs += row.user_procs;
                    sum.python_procs += row.python_procs;
                }
                None => {
                    by_user.insert(row.user.clone(), row);
                }
            }
        }
    }
    let mut rows: Vec<UsageRow> = by_user.into_values().collect();
    rows.sort_by(|a, b| {
        (b.jobs, b.system_procs, b.user_procs, b.python_procs)
            .cmp(&(a.jobs, a.system_procs, a.user_procs, a.python_procs))
            .then_with(|| a.user.cmp(&b.user))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(user: &str, jobs: u64, system: u64, userp: u64, python: u64) -> UsageRow {
        UsageRow {
            user: user.into(),
            jobs,
            system_procs: system,
            user_procs: userp,
            python_procs: python,
        }
    }

    #[test]
    fn usage_merge_sums_per_user_and_resorts() {
        let merged = merge_usage_tables(vec![
            vec![usage("a", 3, 1, 0, 0), usage("b", 1, 0, 2, 0)],
            vec![usage("a", 2, 0, 0, 4), usage("c", 6, 0, 0, 0)],
        ]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].user, "c");
        assert_eq!(merged[1].user, "a");
        assert_eq!((merged[1].jobs, merged[1].python_procs), (5, 4));
        assert_eq!(merged[2].user, "b");
    }

    #[test]
    fn usage_merge_breaks_counter_ties_by_user_name() {
        let merged = merge_usage_tables(vec![
            vec![usage("zeta", 2, 0, 0, 0)],
            vec![usage("alpha", 2, 0, 0, 0)],
        ]);
        assert_eq!(merged[0].user, "alpha");
        assert_eq!(merged[1].user, "zeta");
    }
}
