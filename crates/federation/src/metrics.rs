//! The router's `fed.*` series, registered in one [`Registry`] so a
//! `Metrics` request against the [`RouterDaemon`] (or an embedded
//! [`Router::registry`] read) ships the whole federation health
//! picture through the existing telemetry machinery.
//!
//! [`Registry`]: siren_obs::Registry
//! [`RouterDaemon`]: crate::RouterDaemon
//! [`Router::registry`]: crate::Router::registry

use siren_obs::{Counter, Gauge, Histogram, Registry, TraceStore};
use std::sync::Arc;

/// Capacity of the router's span flight recorder.
const TRACE_CAPACITY: usize = 4096;

/// The router's metric handles, resolved once at startup. Per-backend
/// probe latency histograms (`fed.probe_ns.<set>`) are created on
/// demand through the registry.
#[derive(Debug)]
pub(crate) struct RouterMetrics {
    pub registry: Arc<Registry>,
    pub traces: Arc<TraceStore>,
    /// Plans fanned out by the router.
    pub queries: Arc<Counter>,
    /// Rows emitted by the merge across all plans.
    pub rows_merged: Arc<Counter>,
    /// Plans that ended with a partial-result warning.
    pub partial_results: Arc<Counter>,
    /// Mid-stream re-plans onto another replica of the same set.
    pub failovers: Arc<Counter>,
    /// Automated follower promotions (leader dark past threshold).
    pub promotions: Arc<Counter>,
    /// Health probes attempted.
    pub probes: Arc<Counter>,
    /// Health probes that failed.
    pub probe_failures: Arc<Counter>,
    /// Backends currently reachable / unreachable, per the checker.
    pub backends_up: Arc<Gauge>,
    pub backends_down: Arc<Gauge>,
    /// Full scatter-gather latency per plan, first fan-out to last row.
    pub merge_ns: Arc<Histogram>,
}

impl RouterMetrics {
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            traces: Arc::new(TraceStore::new(TRACE_CAPACITY)),
            queries: registry.counter("fed.queries"),
            rows_merged: registry.counter("fed.rows_merged"),
            partial_results: registry.counter("fed.partial_results"),
            failovers: registry.counter("fed.failovers"),
            promotions: registry.counter("fed.promotions"),
            probes: registry.counter("fed.probes"),
            probe_failures: registry.counter("fed.probe_failures"),
            backends_up: registry.gauge("fed.backends_up"),
            backends_down: registry.gauge("fed.backends_down"),
            merge_ns: registry.histogram("fed.merge_ns"),
            registry,
        }
    }

    /// The per-backend probe latency histogram for `set`.
    pub fn probe_hist(&self, set: &str) -> Arc<Histogram> {
        self.registry.histogram(&format!("fed.probe_ns.{set}"))
    }
}
