//! The scatter-gather core: prune backends by the plan's selection,
//! fan the plan out over per-backend multiplexed streams, and merge
//! the ordered replies into one stream that is byte/order-identical to
//! a single daemon holding the union corpus.

use crate::config::FleetConfig;
use crate::health::{FleetHealth, HealthChecker};
use crate::merge::{merge_usage_tables, plan_row_cmp};
use crate::metrics::RouterMetrics;
use siren_analysis::UsageRow;
use siren_obs::{Registry, Span, Timer, TraceId, TraceStore};
use siren_proto::{
    MuxStream, Order, PlanRow, PlanSource, QueryError, QueryPlan, QueryWarning, SirenClient,
    StatusInfo,
};
use siren_wire::ShardRouter;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::Arc;

/// Why a federated query could not start (or a fleet could not be
/// assembled). Mid-stream backend loss is *not* an error — it degrades
/// to a typed [`QueryWarning`] on the stream.
#[derive(Debug)]
pub enum RouterError {
    /// The fleet configuration is structurally invalid.
    Config(String),
    /// The plan was rejected before fan-out (invalid selection, an
    /// aggregation the federation cannot compute).
    Plan(QueryError),
    /// Not a single backend of any selected shard answered — there are
    /// no rows to degrade to, so this is a hard failure.
    Unavailable(String),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Config(detail) => write!(f, "invalid fleet config: {detail}"),
            RouterError::Plan(err) => write!(f, "plan refused: {err}"),
            RouterError::Unavailable(detail) => {
                write!(f, "no reachable backends: {detail}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

/// The embeddable federation router. Cheap to clone handles out of
/// (registry, traces, health are all shared); a [`RouterDaemon`] wraps
/// one to serve the wire protocol.
///
/// [`RouterDaemon`]: crate::RouterDaemon
#[derive(Debug)]
pub struct Router {
    cfg: FleetConfig,
    shard_router: ShardRouter,
    pub(crate) metrics: Arc<RouterMetrics>,
    health: Arc<FleetHealth>,
}

impl Router {
    /// Assemble a router over `cfg` (validated). No connections are
    /// opened until a query or probe needs them.
    pub fn new(cfg: FleetConfig) -> Result<Self, RouterError> {
        cfg.validate().map_err(RouterError::Config)?;
        let shard_router = ShardRouter::new(cfg.sets.len());
        let health = Arc::new(FleetHealth::new(cfg.clone()));
        Ok(Self {
            cfg,
            shard_router,
            metrics: Arc::new(RouterMetrics::new()),
            health,
        })
    }

    /// The fleet this router fronts.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The router's own metric registry (`fed.*` series).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics.registry)
    }

    /// The router's span flight recorder.
    pub fn traces(&self) -> Arc<TraceStore> {
        Arc::clone(&self.metrics.traces)
    }

    /// The shared health view (candidate orderings, promotion state).
    pub fn health(&self) -> Arc<FleetHealth> {
        Arc::clone(&self.health)
    }

    /// Start the background health checker on this fleet's
    /// `probe_interval`. Keep the handle alive; dropping it stops the
    /// probes.
    pub fn start_health_checker(&self) -> HealthChecker {
        HealthChecker::spawn(Arc::clone(&self.health), Arc::clone(&self.metrics))
    }

    /// One synchronous probe sweep over every backend — what the
    /// background checker runs on its cadence, callable directly for
    /// deterministic tests and CLI health checks.
    pub fn probe_now(&self) {
        self.health.probe_now(&self.metrics);
    }

    /// The shard-set indices that can hold rows matching `plan`'s
    /// selection, per the **declared** topology (job-hash partition,
    /// host claims, epoch claims) — never live health, so pruning can
    /// not silently drop rows on stale data.
    pub(crate) fn pruned_sets(&self, plan: &QueryPlan) -> Vec<usize> {
        let key = plan.selection.shard_key();
        (0..self.cfg.sets.len())
            .filter(|&i| {
                let set = &self.cfg.sets[i];
                if self.cfg.job_hash_sharded {
                    if let Some(job) = key.job {
                        if self.shard_router.shard_of_job(job) != i {
                            return false;
                        }
                    }
                }
                if let Some(host) = key.host {
                    if !set.hosts.is_empty() && !set.hosts.iter().any(|h| h == host) {
                        return false;
                    }
                }
                if let Some((claim_lo, claim_hi)) = set.epochs {
                    if let Some(epoch) = plan.selection.epoch_filter() {
                        if epoch < claim_lo || epoch > claim_hi {
                            return false;
                        }
                    }
                    if let Some((lo, hi)) = plan.selection.epoch_slice() {
                        if hi < claim_lo || lo > claim_hi {
                            return false;
                        }
                    }
                }
                true
            })
            .collect()
    }

    /// Scatter `plan` across the fleet and return the merged, ordered
    /// stream. See [`Router::query_traced`].
    pub fn query(&self, plan: QueryPlan) -> Result<FederatedStream, RouterError> {
        self.query_traced(plan, None)
    }

    /// Like [`Router::query`], joining the backend-side spans of every
    /// fanned-out stream under `trace` (or a fresh trace id), so one
    /// trace tree spans router and daemons.
    pub fn query_traced(
        &self,
        plan: QueryPlan,
        trace: Option<TraceId>,
    ) -> Result<FederatedStream, RouterError> {
        plan.validate().map_err(RouterError::Plan)?;
        self.metrics.queries.inc();
        let timer = Timer::start(Arc::clone(&self.metrics.merge_ns));
        let mut span = self.metrics.traces.buffer().root("fed.query", trace);
        span.annotate("plan", &plan.shape());
        span.annotate_fingerprint(plan.fingerprint());
        let sets = self.pruned_sets(&plan);
        span.annotate("backends", &sets.len().to_string());

        let usage = matches!(plan.source, PlanSource::UsageTable);
        // Aggregations must see every matching row: a per-backend
        // limit would cut rows that survive the cross-shard sum.
        let mut backend_plan = plan.clone();
        if usage {
            backend_plan.limit = None;
        }

        let mut backends: Vec<BackendStream> = sets
            .iter()
            .map(|&i| BackendStream::new(i, &self.cfg, backend_plan.clone(), span.trace()))
            .collect();
        let mut connected = 0usize;
        for backend in &mut backends {
            let child = span.child(&format!("fed.backend.{}", backend.name));
            if backend.ensure_connected(&self.health, &self.metrics) {
                connected += 1;
            }
            child.finish();
        }
        if connected == 0 && !backends.is_empty() {
            // Nothing answered at all: there is no partial result to
            // degrade to.
            let detail = backends
                .iter()
                .map(|b| {
                    format!(
                        "{}: {}",
                        b.name,
                        b.last_error.as_deref().unwrap_or("unreachable")
                    )
                })
                .collect::<Vec<_>>()
                .join("; ");
            return Err(RouterError::Unavailable(detail));
        }

        let mut stream = FederatedStream {
            order: plan.order,
            backends,
            heads: Vec::new(),
            buffered: VecDeque::new(),
            remaining: plan.limit,
            partial_counted: false,
            health: Arc::clone(&self.health),
            metrics: Arc::clone(&self.metrics),
            _span: span,
            _timer: timer,
        };
        if usage {
            stream.collect_usage();
        } else {
            stream.prime_heads();
        }
        Ok(stream)
    }

    /// Live fleet status aggregate: one [`StatusInfo`] describing the
    /// union the router fronts — records and counters summed, committed
    /// epochs unioned — assembled from whichever backends answer right
    /// now.
    pub fn status(&self) -> Result<StatusInfo, RouterError> {
        let mut agg: Option<StatusInfo> = None;
        let mut last_err = String::new();
        for set in 0..self.cfg.sets.len() {
            for addr in self.health.candidates(set) {
                match SirenClient::connect_with_timeout(addr, self.cfg.connect_timeout)
                    .and_then(|mut c| c.status())
                {
                    Ok(status) => {
                        self.health.note(addr, true);
                        match agg.as_mut() {
                            None => agg = Some(status),
                            Some(agg) => {
                                agg.committed_epochs.extend(status.committed_epochs);
                                agg.records += status.records;
                                agg.epoch_tag_mismatches += status.epoch_tag_mismatches;
                                agg.quiet_period_fallbacks += status.quiet_period_fallbacks;
                                agg.queries_refused += status.queries_refused;
                                agg.open_cursors += status.open_cursors;
                            }
                        }
                        break; // one answer per set
                    }
                    Err(err) => {
                        self.health.note(addr, false);
                        last_err = err.to_string();
                    }
                }
            }
        }
        let mut status = agg.ok_or(RouterError::Unavailable(last_err))?;
        status.committed_epochs.sort_unstable();
        status.committed_epochs.dedup();
        status.open_epoch = None;
        status.version_connections.clear();
        Ok(status)
    }
}

/// One backend's live stream plus its failover state: the remaining
/// read candidates of its replica set and the count of rows already
/// handed to the merge, so a mid-stream re-plan on another replica can
/// skip what was already emitted.
struct BackendStream {
    set: usize,
    name: String,
    plan: QueryPlan,
    trace: TraceId,
    retry: siren_proto::RetryPolicy,
    timeout: std::time::Duration,
    candidates: VecDeque<SocketAddr>,
    current: Option<MuxStream>,
    current_addr: Option<SocketAddr>,
    emitted: u64,
    dead: bool,
    last_error: Option<String>,
}

impl BackendStream {
    fn new(set: usize, cfg: &FleetConfig, plan: QueryPlan, trace: TraceId) -> Self {
        Self {
            set,
            name: cfg.sets[set].name.clone(),
            plan,
            trace,
            retry: cfg.retry.clone(),
            timeout: cfg.connect_timeout,
            // Candidate order is re-read from health at stream start;
            // failover walks the snapshot so one query probes each
            // member at most once.
            candidates: VecDeque::new(),
            current: None,
            current_addr: None,
            emitted: 0,
            dead: false,
            last_error: None,
        }
    }

    /// Connect (or reconnect) to the next viable candidate, re-issue
    /// the plan, and skip the rows already emitted. Marks the backend
    /// dead when every candidate is exhausted.
    fn ensure_connected(&mut self, health: &FleetHealth, metrics: &RouterMetrics) -> bool {
        if self.current.is_some() {
            return true;
        }
        if self.dead {
            return false;
        }
        if self.candidates.is_empty() && self.current_addr.is_none() && self.emitted == 0 {
            // First connect of this stream: take the health-ordered
            // candidate list once. Failover walks this snapshot, so
            // one query probes each member at most once.
            self.candidates = health.candidates(self.set).into();
        }
        while let Some(addr) = self.candidates.pop_front() {
            let attempt =
                SirenClient::connect_with_retry_versions(addr, 3, 3, self.timeout, &self.retry)
                    .and_then(SirenClient::into_mux)
                    .and_then(|mux| mux.query_traced(self.plan.clone(), self.trace));
            match attempt {
                Ok(mut stream) => {
                    // Re-entry after a failover: drop the prefix the
                    // merge has already consumed from the lost stream.
                    let mut resumed = true;
                    for _ in 0..self.emitted {
                        match stream.next() {
                            Some(Ok(_)) => {}
                            Some(Err(err)) => {
                                self.last_error = Some(err.to_string());
                                resumed = false;
                                break;
                            }
                            None => break, // fewer rows than before: treat as done
                        }
                    }
                    if !resumed {
                        health.note(addr, false);
                        continue;
                    }
                    health.note(addr, true);
                    if self.current_addr.is_some() {
                        metrics.failovers.inc();
                    }
                    self.current = Some(stream);
                    self.current_addr = Some(addr);
                    return true;
                }
                Err(err) => {
                    health.note(addr, false);
                    self.last_error = Some(err.to_string());
                }
            }
        }
        self.dead = true;
        false
    }

    /// Next row, failing over across replicas transparently. `None`
    /// means the stream is complete *or* the backend just died —
    /// `dead` distinguishes.
    fn next_row(&mut self, health: &FleetHealth, metrics: &RouterMetrics) -> Option<PlanRow> {
        loop {
            if !self.ensure_connected(health, metrics) {
                return None;
            }
            match self.current.as_mut().and_then(Iterator::next) {
                Some(Ok(row)) => {
                    self.emitted += 1;
                    return Some(row);
                }
                Some(Err(err)) => {
                    // Stream lost mid-reply: mark the replica down and
                    // re-plan on the next candidate.
                    if let Some(addr) = self.current_addr {
                        health.note(addr, false);
                    }
                    self.last_error = Some(err.to_string());
                    self.current = None;
                }
                None => return None,
            }
        }
    }
}

/// The merged, ordered result stream of one federated plan. Iterate
/// rows with [`Iterator::next`]; once iteration finishes,
/// [`FederatedStream::warning`] is `Some` iff backends were lost and
/// the rows are a partial view.
pub struct FederatedStream {
    order: Order,
    backends: Vec<BackendStream>,
    /// One lookahead row per live record/neighbor backend.
    heads: Vec<(usize, PlanRow)>,
    /// Pre-merged rows (the usage-table path).
    buffered: VecDeque<PlanRow>,
    remaining: Option<u64>,
    partial_counted: bool,
    health: Arc<FleetHealth>,
    metrics: Arc<RouterMetrics>,
    /// Held so the root span covers first fan-out to last row.
    _span: Span,
    /// Held so `fed.merge_ns` records the full stream duration.
    _timer: Timer,
}

impl FederatedStream {
    fn prime_heads(&mut self) {
        for i in 0..self.backends.len() {
            if let Some(row) = self.backends[i].next_row(&self.health, &self.metrics) {
                self.heads.push((i, row));
            }
        }
        self.count_partial();
    }

    fn collect_usage(&mut self) {
        let mut tables: Vec<Vec<UsageRow>> = Vec::new();
        for backend in &mut self.backends {
            let mut table = Vec::new();
            while let Some(row) = backend.next_row(&self.health, &self.metrics) {
                if let PlanRow::Usage(row) = row {
                    table.push(row);
                }
            }
            if !backend.dead {
                tables.push(table);
            }
        }
        let mut merged = merge_usage_tables(tables);
        if let Some(limit) = self.remaining.take() {
            merged.truncate(usize::try_from(limit).unwrap_or(usize::MAX));
        }
        self.buffered = merged.into_iter().map(PlanRow::Usage).collect();
        self.count_partial();
    }

    fn count_partial(&mut self) {
        if !self.partial_counted && self.backends.iter().any(|b| b.dead) {
            self.partial_counted = true;
            self.metrics.partial_results.inc();
        }
    }

    /// The degradation warning, if any backend died: the missing set
    /// names plus the last error seen per set. Complete once the
    /// stream has been drained.
    pub fn warning(&self) -> Option<QueryWarning> {
        let dead: Vec<&BackendStream> = self.backends.iter().filter(|b| b.dead).collect();
        if dead.is_empty() {
            return None;
        }
        let detail = dead
            .iter()
            .map(|b| {
                format!(
                    "{}: {}",
                    b.name,
                    b.last_error.as_deref().unwrap_or("unreachable")
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        Some(QueryWarning {
            missing: dead.iter().map(|b| b.name.clone()).collect(),
            detail,
        })
    }

    /// Drain the remaining rows, returning them with the final
    /// partial-result warning (`None` = the rows are complete).
    pub fn collect_rows_warned(mut self) -> (Vec<PlanRow>, Option<QueryWarning>) {
        let mut rows = Vec::new();
        for row in self.by_ref() {
            rows.push(row);
        }
        (rows, self.warning())
    }
}

impl Iterator for FederatedStream {
    type Item = PlanRow;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(limit) = self.remaining {
            if limit == 0 {
                return None;
            }
        }
        let row = if let Some(row) = self.buffered.pop_front() {
            row
        } else {
            if self.heads.is_empty() {
                return None;
            }
            // k ≤ fleet size: a linear scan beats heap bookkeeping.
            let best = self
                .heads
                .iter()
                .enumerate()
                .min_by(|(_, (_, a)), (_, (_, b))| plan_row_cmp(self.order, a, b))
                .map(|(i, _)| i)?;
            let (backend, row) = self.heads.swap_remove(best);
            if let Some(next) = self.backends[backend].next_row(&self.health, &self.metrics) {
                self.heads.push((backend, next));
            } else {
                // Either complete or just died; a death may strand
                // rows this stream already merged — the contract is
                // prefix-correctness per backend plus a warning.
                self.count_partial();
            }
            row
        };
        if let Some(limit) = self.remaining.as_mut() {
            *limit -= 1;
        }
        self.metrics.rows_merged.inc();
        Some(row)
    }
}
