//! Federated scatter-gather equivalence suite.
//!
//! The property pinned throughout: a [`Router`] over a fleet of shard
//! daemons answers any `QueryPlan` **byte/order-identically** to a
//! single daemon holding the union corpus — including under seeded
//! fault injection, where unreachable shards degrade to typed partial
//! results (never silent) and replica sets fail reads over to caught-up
//! followers mid-stream.
//!
//! Corpora follow the canonical discipline the merge proof requires
//! (see `siren_federation::merge`): each epoch's records are stored in
//! [`record_order`] on the shards *and* on the union oracle, and shard
//! membership is the same job-hash partition ingest uses
//! (`ShardRouter`), so every shard's stream is an ordered subsequence
//! of the oracle's.

use proptest::test_runner::{rng_for, TestRng};
use siren_consolidate::{record_order, ProcessRecord};
use siren_db::Record;
use siren_federation::{FleetConfig, Router};
use siren_net::{FaultConfig, FaultProxy};
use siren_proto::{
    Order, PlanRow, PlanSource, Projection, QueryPlan, QueryResponse, RetryPolicy, RowBatch,
    Selection, SirenClient,
};
use siren_service::{Replicator, ReplicatorConfig, ServiceConfig, SirenDaemon};
use siren_wire::{Layer, MessageType, ShardRouter};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

// ---------------------------------------------------- fixtures --

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-fed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_config(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        query_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::at(dir)
    }
}

/// A record with fuzzed identity, its job drawn from `job_pool` (the
/// jobs owned by one shard) and a `FILE_H` drawn from shapes that
/// exercise the neighbor index.
fn arb_record(rng: &mut TestRng, job_pool: &[u64], shared_hashes: &[String]) -> ProcessRecord {
    let row = Record {
        job_id: job_pool[rng.below(job_pool.len() as u64) as usize],
        step_id: rng.below(3) as u32,
        pid: rng.next_u64() as u32,
        exe_hash: format!("{:016x}", rng.next_u64()),
        host: format!("nid{:06}", rng.below(5)),
        time: 1_700_000_000 + rng.below(1_000),
        layer: Layer::SelfExe,
        mtype: MessageType::Meta,
        content: String::new(),
    };
    let mut rec = ProcessRecord::new(&row);
    rec.file_hash = match rng.below(5) {
        0 => None,
        1 if !shared_hashes.is_empty() => {
            Some(shared_hashes[rng.below(shared_hashes.len() as u64) as usize].clone())
        }
        _ => {
            let sig: String = (0..24)
                .map(|_| b"ABCDEFabcdef0123456789+/"[rng.below(24) as usize] as char)
                .collect();
            Some(format!("48:{sig}:{}", &sig[..12]))
        }
    };
    rec
}

/// A fleet corpus: per-epoch union lists in `record_order`, plus each
/// shard's (ordered) subsequence under the job-hash partition.
struct Corpus {
    /// `[epoch]` → records sorted by `record_order`.
    union: Vec<Vec<ProcessRecord>>,
    /// `[shard][epoch]` → that shard's subsequence of the union.
    shards: Vec<Vec<Vec<ProcessRecord>>>,
    /// A fuzzy hash shared by several records — the neighbor probe.
    probe_hash: String,
}

fn build_corpus(rng: &mut TestRng, n_shards: usize, n_epochs: usize, density: u64) -> Corpus {
    let shard_router = ShardRouter::new(n_shards);
    // Jobs each shard owns, so every (shard, epoch) cell is non-empty.
    let pools: Vec<Vec<u64>> = (0..n_shards)
        .map(|k| {
            (0..64)
                .filter(|&j| shard_router.shard_of_job(j) == k)
                .collect()
        })
        .collect();
    let shared: Vec<String> = (0..3)
        .map(|i| {
            format!(
                "96:{:032x}:{:016x}",
                rng.next_u64() as u128 * 31 + i,
                rng.next_u64()
            )
        })
        .collect();
    let mut union = Vec::new();
    let mut shards = vec![Vec::new(); n_shards];
    for _ in 0..n_epochs {
        let mut epoch: Vec<ProcessRecord> = Vec::new();
        for pool in &pools {
            let n = 1 + rng.below(density) as usize;
            for _ in 0..n {
                epoch.push(arb_record(rng, pool, &shared));
            }
        }
        epoch.sort_by(record_order);
        for (k, shard) in shards.iter_mut().enumerate() {
            let subset: Vec<ProcessRecord> = epoch
                .iter()
                .filter(|r| shard_router.shard_of_job(r.key.job_id) == k)
                .cloned()
                .collect();
            shard.push(subset);
        }
        union.push(epoch);
    }
    Corpus {
        union,
        shards,
        probe_hash: shared[0].clone(),
    }
}

/// A daemon serving `epochs` (imported in order, ids 0..n).
fn spawn_daemon(tag: &str, epochs: &[Vec<ProcessRecord>]) -> SirenDaemon {
    let dir = temp_data_dir(tag);
    let (mut daemon, _) = SirenDaemon::open(service_config(&dir)).unwrap();
    for records in epochs {
        daemon.import_epoch(records.clone()).unwrap();
    }
    daemon
}

/// Fast-failing fleet policies so dead backends cost milliseconds.
fn fast_fleet(leaders: impl IntoIterator<Item = SocketAddr>) -> FleetConfig {
    FleetConfig {
        retry: RetryPolicy {
            max_retries: 1,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter: false,
        },
        connect_timeout: Duration::from_secs(2),
        ..FleetConfig::sharded(leaders)
    }
}

/// The fixed plan set of the equivalence oracle: every source, every
/// order, limits, projections, and selections of each predicate kind.
fn oracle_plans(probe_hash: &str) -> Vec<QueryPlan> {
    vec![
        QueryPlan::records().batch_rows(3),
        QueryPlan::records().order_by(Order::TimeAsc),
        QueryPlan::records().order_by(Order::TimeDesc).limit(17),
        QueryPlan::records().limit(5),
        QueryPlan::records().filter(Selection::all().job(3)),
        QueryPlan::records()
            .filter(Selection::all().host("nid000002"))
            .limit(9),
        QueryPlan::records().filter(Selection::all().between(1_700_000_200, 1_700_000_700)),
        QueryPlan::records().filter(Selection::all().epoch(0)),
        QueryPlan::records()
            .project(Projection::Keys)
            .order_by(Order::TimeAsc),
        QueryPlan::usage_table(),
        QueryPlan::usage_table().limit(2),
        QueryPlan::neighbors(probe_hash, 40).limit(8),
    ]
}

/// Serialize rows as one wire batch — the byte-identity oracle.
fn row_bytes(plan: &QueryPlan, rows: &[PlanRow]) -> Vec<u8> {
    let batch = match plan.source {
        PlanSource::Records => RowBatch::Records(
            rows.iter()
                .cloned()
                .filter_map(PlanRow::into_record)
                .collect(),
        ),
        PlanSource::UsageTable => RowBatch::Usage(
            rows.iter()
                .cloned()
                .filter_map(PlanRow::into_usage)
                .collect(),
        ),
        PlanSource::Neighbors { .. } => RowBatch::Neighbors(
            rows.iter()
                .cloned()
                .filter_map(PlanRow::into_neighbor)
                .collect(),
        ),
    };
    QueryResponse::Batch(batch).encode_versioned(3)
}

fn shard_of(record_row: &PlanRow, shard_router: &ShardRouter) -> usize {
    match record_row {
        PlanRow::Record(row) => shard_router.shard_of_job(row.record.key.job_id),
        PlanRow::Neighbor(row) => shard_router.shard_of_job(row.record.key.job_id),
        PlanRow::Usage(_) => usize::MAX,
    }
}

// ---------------------------------------------------- equivalence --

/// Tentpole acceptance: random fleets of 1–3 shards; every oracle plan
/// through the router is byte/order-identical to the single daemon
/// holding the union corpus, with no warning.
#[test]
fn fuzzed_fleet_matches_single_union_daemon() {
    let mut rng = rng_for("federation-equivalence");
    for n_shards in 1..=3usize {
        let corpus = build_corpus(&mut rng, n_shards, 3, 8);
        let shard_daemons: Vec<SirenDaemon> = corpus
            .shards
            .iter()
            .enumerate()
            .map(|(k, epochs)| spawn_daemon(&format!("eq{n_shards}-s{k}"), epochs))
            .collect();
        let oracle = spawn_daemon(&format!("eq{n_shards}-union"), &corpus.union);
        let mut oracle_client = SirenClient::connect(oracle.query_addr().unwrap()).unwrap();

        let leaders: Vec<SocketAddr> = shard_daemons
            .iter()
            .map(|d| d.query_addr().unwrap())
            .collect();
        let router = Router::new(fast_fleet(leaders)).unwrap();

        for plan in oracle_plans(&corpus.probe_hash) {
            let (merged, warning) = router.query(plan.clone()).unwrap().collect_rows_warned();
            assert!(
                warning.is_none(),
                "healthy fleet must not warn: {warning:?}"
            );
            let expected = oracle_client
                .query(plan.clone())
                .unwrap()
                .collect_rows()
                .unwrap();
            assert_eq!(
                row_bytes(&plan, &merged),
                row_bytes(&plan, &expected),
                "{n_shards}-shard fleet diverged from the union daemon on {}",
                plan.shape()
            );
        }
        let snapshot = router.registry().snapshot();
        assert!(snapshot.counter("fed.queries") >= 12);
        assert!(snapshot.counter("fed.rows_merged") > 0);
        assert_eq!(snapshot.counter("fed.partial_results"), 0);
    }
}

/// A shard dead *before* the query degrades to a typed partial result:
/// the surviving rows are byte-identical to a daemon holding only the
/// live shards' union, and the warning names exactly the dead shard.
#[test]
fn dead_shard_degrades_to_typed_partial_result() {
    let mut rng = rng_for("federation-dead-shard");
    let corpus = build_corpus(&mut rng, 3, 2, 8);
    let live0 = spawn_daemon("dead-s0", &corpus.shards[0]);
    let dead1 = spawn_daemon("dead-s1", &corpus.shards[1]);
    let live2 = spawn_daemon("dead-s2", &corpus.shards[2]);

    // The oracle holds only the live shards' records, same discipline.
    let shard_router = ShardRouter::new(3);
    let live_union: Vec<Vec<ProcessRecord>> = corpus
        .union
        .iter()
        .map(|epoch| {
            epoch
                .iter()
                .filter(|r| shard_router.shard_of_job(r.key.job_id) != 1)
                .cloned()
                .collect()
        })
        .collect();
    let oracle = spawn_daemon("dead-live-union", &live_union);
    let mut oracle_client = SirenClient::connect(oracle.query_addr().unwrap()).unwrap();

    let leaders = vec![
        live0.query_addr().unwrap(),
        dead1.query_addr().unwrap(),
        live2.query_addr().unwrap(),
    ];
    drop(dead1); // now the middle shard refuses connections

    let router = Router::new(fast_fleet(leaders)).unwrap();
    for plan in [
        QueryPlan::records().batch_rows(4),
        QueryPlan::records().order_by(Order::TimeAsc),
        QueryPlan::usage_table(),
    ] {
        let (merged, warning) = router.query(plan.clone()).unwrap().collect_rows_warned();
        let warning = warning.expect("a dead shard must surface a warning");
        assert_eq!(warning.missing, vec!["shard-1".to_string()]);
        assert!(warning.detail.contains("shard-1"), "{}", warning.detail);
        let expected = oracle_client
            .query(plan.clone())
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(
            row_bytes(&plan, &merged),
            row_bytes(&plan, &expected),
            "surviving rows must match the live-shard union on {}",
            plan.shape()
        );
    }
    assert!(router.registry().snapshot().counter("fed.partial_results") >= 3);
}

/// Satellite: seeded FaultProxy severs kill all but one shard
/// mid-stream. Survivors' rows stay byte-identical to querying the
/// live shards directly, the dead shards' contributions are clean
/// stream prefixes, and the warning enumerates exactly the dead
/// shards.
#[test]
fn mid_stream_severs_yield_prefix_partials_with_exact_warning() {
    let mut rng = rng_for("federation-sever");
    let corpus = build_corpus(&mut rng, 3, 3, 12);
    let daemons: Vec<SirenDaemon> = corpus
        .shards
        .iter()
        .enumerate()
        .map(|(k, epochs)| spawn_daemon(&format!("sever-s{k}"), epochs))
        .collect();

    // Shards 1 and 2 sit behind proxies that always cut inside the
    // reply body (every shard's reply is far larger than the cut
    // ceiling), so both die mid-stream; shard 0 survives.
    let proxies: Vec<FaultProxy> = [1usize, 2]
        .iter()
        .map(|&k| {
            FaultProxy::spawn(
                daemons[k].query_addr().unwrap(),
                FaultConfig {
                    seed: 7 + k as u64,
                    cut_bytes: Some((600, 3_000)),
                    ..FaultConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let leaders = vec![
        daemons[0].query_addr().unwrap(),
        proxies[0].local_addr(),
        proxies[1].local_addr(),
    ];
    let router = Router::new(fast_fleet(leaders)).unwrap();

    let plan = QueryPlan::records().batch_rows(2);
    let (merged, warning) = router.query(plan.clone()).unwrap().collect_rows_warned();
    let warning = warning.expect("mid-stream severs must surface a warning");
    assert_eq!(
        warning.missing,
        vec!["shard-1".to_string(), "shard-2".to_string()],
        "the warning must enumerate exactly the dead shards"
    );
    assert!(proxies.iter().map(FaultProxy::cuts).sum::<u64>() >= 2);

    // Split the merged rows back out by shard ownership.
    let shard_router = ShardRouter::new(3);
    let per_shard: Vec<Vec<PlanRow>> = (0..3)
        .map(|k| {
            merged
                .iter()
                .filter(|row| shard_of(row, &shard_router) == k)
                .cloned()
                .collect()
        })
        .collect();
    for (k, rows) in per_shard.iter().enumerate() {
        let mut direct = SirenClient::connect(daemons[k].query_addr().unwrap()).unwrap();
        let full = direct.query(plan.clone()).unwrap().collect_rows().unwrap();
        if k == 0 {
            assert_eq!(
                row_bytes(&plan, rows),
                row_bytes(&plan, &full),
                "the surviving shard's rows must be byte-identical to a direct query"
            );
        } else {
            assert!(
                rows.len() < full.len(),
                "shard-{k} must have died before completing its stream"
            );
            assert_eq!(
                row_bytes(&plan, rows),
                row_bytes(&plan, &full[..rows.len()]),
                "shard-{k}'s contribution must be a clean prefix of its stream"
            );
        }
    }
    assert_eq!(
        router.registry().snapshot().counter("fed.partial_results"),
        1
    );
}

// ---------------------------------------------------- failover --

/// Satellite: a replica set's leader dies mid-cursor; the router
/// re-plans on the caught-up follower and the merged result still
/// equals the single-daemon oracle, with no warning.
#[test]
fn replica_failover_mid_stream_matches_the_oracle() {
    let mut rng = rng_for("federation-failover");
    let corpus = build_corpus(&mut rng, 2, 3, 12);
    let leader0 = spawn_daemon("fo-leader0", &corpus.shards[0]);
    let leader0_addr = leader0.query_addr().unwrap();
    let leader1 = spawn_daemon("fo-leader1", &corpus.shards[1]);
    let oracle = spawn_daemon("fo-union", &corpus.union);
    let mut oracle_client = SirenClient::connect(oracle.query_addr().unwrap()).unwrap();

    // An epoch-shipping follower of shard 0, converged before the test.
    let follower_dir = temp_data_dir("fo-follower0");
    let (follower, _) = SirenDaemon::open(service_config(&follower_dir)).unwrap();
    let follower_addr = follower.query_addr().unwrap();
    let repl = Replicator::spawn(
        follower,
        ReplicatorConfig {
            poll_interval: Duration::from_millis(10),
            ..ReplicatorConfig::to(leader0_addr)
        },
    )
    .unwrap();
    assert!(repl.wait_for_epoch(2, Duration::from_secs(30)));
    assert!(repl.wait_caught_up(Duration::from_secs(30)));

    // The router reads the leader through a proxy that always severs
    // inside the reply, so every read of shard 0 loses its leader
    // mid-stream and must fail over.
    let proxy = FaultProxy::spawn(
        leader0_addr,
        FaultConfig {
            seed: 99,
            cut_bytes: Some((600, 3_000)),
            ..FaultConfig::default()
        },
    )
    .unwrap();
    let mut cfg = fast_fleet([proxy.local_addr(), leader1.query_addr().unwrap()]);
    cfg.sets[0].followers = vec![follower_addr];
    let router = Router::new(cfg).unwrap();

    let plan = QueryPlan::records().batch_rows(2);
    let (merged, warning) = router.query(plan.clone()).unwrap().collect_rows_warned();
    assert!(
        warning.is_none(),
        "failover must be invisible to the result: {warning:?}"
    );
    let expected = oracle_client
        .query(plan.clone())
        .unwrap()
        .collect_rows()
        .unwrap();
    assert_eq!(
        row_bytes(&plan, &merged),
        row_bytes(&plan, &expected),
        "post-failover merge must equal the union daemon"
    );
    assert!(proxy.cuts() >= 1, "the proxy must actually have cut");
    assert!(router.registry().snapshot().counter("fed.failovers") >= 1);
    drop(repl);
}

/// A leader dark past `promote_after` gets its set repointed at the
/// caught-up follower; the promotion hook fires with old and new
/// addresses and `fed.promotions` lands.
#[test]
fn dark_leader_promotes_a_caught_up_follower() {
    let mut rng = rng_for("federation-promotion");
    let corpus = build_corpus(&mut rng, 1, 2, 6);
    let follower = spawn_daemon("promo-follower", &corpus.shards[0]);
    let follower_addr = follower.query_addr().unwrap();

    // A port that refuses connections: bind, record, drop.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };

    let mut cfg = fast_fleet([dead_addr]);
    cfg.sets[0].followers = vec![follower_addr];
    cfg.promote_after = Duration::ZERO;
    let router = Router::new(cfg).unwrap();

    let fired = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sink = std::sync::Arc::clone(&fired);
    router
        .health()
        .set_promotion_hook(std::sync::Arc::new(move |set, old, new| {
            sink.lock().push((set.to_string(), old, new));
        }));

    router.probe_now();
    assert_eq!(router.health().active_leader(0), follower_addr);
    let events = fired.lock().clone();
    assert_eq!(
        events,
        vec![("shard-0".to_string(), dead_addr, follower_addr)]
    );
    let snapshot = router.registry().snapshot();
    assert_eq!(snapshot.counter("fed.promotions"), 1);
    assert!(snapshot.counter("fed.probe_failures") >= 1);

    // Reads now land on the promoted follower, warning-free.
    let (rows, warning) = router
        .query(QueryPlan::records())
        .unwrap()
        .collect_rows_warned();
    assert!(warning.is_none());
    let total: usize = corpus.union.iter().map(Vec::len).sum();
    assert_eq!(rows.len(), total);
}

// ---------------------------------------------------- pruning --

/// Job-hash pruning is exact: a plan pinned to a job never dials the
/// other shard, so its death is invisible — and a plan pinned to the
/// dead shard is a hard `Unavailable`, never a silent empty result.
#[test]
fn job_pruning_skips_dead_shards_it_does_not_need() {
    let mut rng = rng_for("federation-pruning");
    let corpus = build_corpus(&mut rng, 2, 2, 6);
    let live = spawn_daemon("prune-s0", &corpus.shards[0]);
    let dead = spawn_daemon("prune-s1", &corpus.shards[1]);
    let leaders = vec![live.query_addr().unwrap(), dead.query_addr().unwrap()];
    drop(dead);
    let router = Router::new(fast_fleet(leaders)).unwrap();

    let shard_router = ShardRouter::new(2);
    let live_job = (0..64)
        .find(|&j| shard_router.shard_of_job(j) == 0)
        .unwrap();
    let dead_job = (0..64)
        .find(|&j| shard_router.shard_of_job(j) == 1)
        .unwrap();

    let plan = QueryPlan::records().filter(Selection::all().job(live_job));
    let (rows, warning) = router.query(plan.clone()).unwrap().collect_rows_warned();
    assert!(warning.is_none(), "the dead shard was pruned, not missed");
    let mut direct = SirenClient::connect(live.query_addr().unwrap()).unwrap();
    let expected = direct.query(plan.clone()).unwrap().collect_rows().unwrap();
    assert_eq!(row_bytes(&plan, &rows), row_bytes(&plan, &expected));

    let pinned = QueryPlan::records().filter(Selection::all().job(dead_job));
    let err = router
        .query(pinned)
        .err()
        .expect("dead-pinned plan must fail hard");
    assert!(
        err.to_string().contains("no reachable backends"),
        "unexpected error: {err}"
    );
}

/// Epoch claims prune the same way for epoch-partitioned fleets (no
/// job hashing): a selection inside one set's claim never touches the
/// other set.
#[test]
fn epoch_claims_prune_epoch_partitioned_fleets() {
    let mut rng = rng_for("federation-epoch-claims");
    let corpus = build_corpus(&mut rng, 1, 4, 6);

    // Set 0 owns epochs 0–1, set 1 owns epochs 2–3, ids preserved via
    // the pinned-epoch import path.
    let dir0 = temp_data_dir("claims-s0");
    let (mut early, _) = SirenDaemon::open(service_config(&dir0)).unwrap();
    for epoch in 0..2u64 {
        assert!(early
            .import_epoch_at(epoch, corpus.union[epoch as usize].clone())
            .unwrap());
    }
    let dir1 = temp_data_dir("claims-s1");
    let (mut late, _) = SirenDaemon::open(service_config(&dir1)).unwrap();
    for epoch in 0..2u64 {
        // Fill the unowned range with empty epochs so ids line up.
        assert!(late.import_epoch_at(epoch, Vec::new()).unwrap());
    }
    for epoch in 2..4u64 {
        assert!(late
            .import_epoch_at(epoch, corpus.union[epoch as usize].clone())
            .unwrap());
    }

    let mut cfg = fast_fleet([early.query_addr().unwrap(), late.query_addr().unwrap()]);
    cfg.job_hash_sharded = false;
    cfg.sets[0].epochs = Some((0, 1));
    cfg.sets[1].epochs = Some((2, 3));
    drop(late);
    let router = Router::new(cfg).unwrap();

    let plan = QueryPlan::records().filter(Selection::all().epoch(1));
    let (rows, warning) = router.query(plan.clone()).unwrap().collect_rows_warned();
    assert!(warning.is_none(), "the dead late set was pruned");
    assert_eq!(rows.len(), corpus.union[1].len());

    let late_plan = QueryPlan::records().filter(Selection::all().epochs(2, 3));
    assert!(
        router.query(late_plan).is_err(),
        "dead-claimed epochs fail hard"
    );

    // An unconstrained plan still needs both sets: typed partial.
    let (_, warning) = router
        .query(QueryPlan::records())
        .unwrap()
        .collect_rows_warned();
    assert_eq!(
        warning.expect("partial").missing,
        vec!["shard-1".to_string()]
    );
}

// ---------------------------------------------------- status --

/// `Router::status` reports the union the fleet fronts: records
/// summed, committed epochs unioned.
#[test]
fn fleet_status_aggregates_the_union() {
    let mut rng = rng_for("federation-status");
    let corpus = build_corpus(&mut rng, 2, 3, 6);
    let d0 = spawn_daemon("status-s0", &corpus.shards[0]);
    let d1 = spawn_daemon("status-s1", &corpus.shards[1]);
    let router = Router::new(fast_fleet([
        d0.query_addr().unwrap(),
        d1.query_addr().unwrap(),
    ]))
    .unwrap();

    let status = router.status().unwrap();
    let total: u64 = corpus.union.iter().map(|e| e.len() as u64).sum();
    assert_eq!(status.records, total);
    assert_eq!(status.committed_epochs, vec![0, 1, 2]);
    assert_eq!(status.open_epoch, None);
}
