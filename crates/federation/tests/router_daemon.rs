//! The runnable router: unmodified wire-protocol clients federate
//! transparently through a [`RouterDaemon`] port — plans stream merged
//! rows, one-shots route through the plan path (refusing partial
//! results typed), Status/Metrics aggregate the fleet, and protocol v1
//! draws the standard typed refusal.

use proptest::test_runner::{rng_for, TestRng};
use siren_consolidate::{record_order, ProcessRecord};
use siren_db::Record;
use siren_federation::{FleetConfig, Router, RouterDaemon};
use siren_proto::{
    decode_hello_ack, encode_hello, read_frame, write_frame, PlanRow, QueryError, QueryPlan,
    QueryRequest, QueryResponse, RetryPolicy, Selection, SirenClient,
};
use siren_service::{ServiceConfig, SirenDaemon};
use siren_wire::{Layer, MessageType, ShardRouter};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn temp_data_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("siren-fedwire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_record(rng: &mut TestRng, job_pool: &[u64]) -> ProcessRecord {
    let row = Record {
        job_id: job_pool[rng.below(job_pool.len() as u64) as usize],
        step_id: rng.below(3) as u32,
        pid: rng.next_u64() as u32,
        exe_hash: format!("{:016x}", rng.next_u64()),
        host: format!("nid{:06}", rng.below(4)),
        time: 1_700_000_000 + rng.below(500),
        layer: Layer::SelfExe,
        mtype: MessageType::Meta,
        content: String::new(),
    };
    ProcessRecord::new(&row)
}

/// Two job-hash shard daemons plus the union oracle, canonical order.
struct Fixture {
    shards: Vec<SirenDaemon>,
    oracle: SirenDaemon,
}

fn fixture(tag: &str) -> Fixture {
    let mut rng = rng_for(tag);
    let shard_router = ShardRouter::new(2);
    let pools: Vec<Vec<u64>> = (0..2)
        .map(|k| {
            (0..64)
                .filter(|&j| shard_router.shard_of_job(j) == k)
                .collect()
        })
        .collect();
    let spawn = |suffix: &str| {
        let dir = temp_data_dir(&format!("{tag}-{suffix}"));
        let cfg = ServiceConfig {
            shards: 2,
            query_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..ServiceConfig::at(&dir)
        };
        SirenDaemon::open(cfg).unwrap().0
    };
    let mut shards = vec![spawn("s0"), spawn("s1")];
    let mut oracle = spawn("union");
    for _epoch in 0..2 {
        let mut union: Vec<ProcessRecord> = Vec::new();
        for pool in &pools {
            for _ in 0..(4 + rng.below(6)) {
                union.push(arb_record(&mut rng, pool));
            }
        }
        union.sort_by(record_order);
        for (k, daemon) in shards.iter_mut().enumerate() {
            let subset: Vec<ProcessRecord> = union
                .iter()
                .filter(|r| shard_router.shard_of_job(r.key.job_id) == k)
                .cloned()
                .collect();
            daemon.import_epoch(subset).unwrap();
        }
        oracle.import_epoch(union).unwrap();
    }
    Fixture { shards, oracle }
}

fn spawn_router(leaders: impl IntoIterator<Item = SocketAddr>) -> RouterDaemon {
    let cfg = FleetConfig {
        retry: RetryPolicy {
            max_retries: 1,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter: false,
        },
        ..FleetConfig::sharded(leaders)
    };
    RouterDaemon::spawn(Router::new(cfg).unwrap(), "127.0.0.1:0").unwrap()
}

/// An unmodified `SirenClient` pointed at the router port sees the
/// union daemon: plan streams, mux streams, Status, Metrics, one-shot
/// ByJob — all without knowing a fleet exists.
#[test]
fn unmodified_clients_federate_transparently() {
    let fx = fixture("fedwire-transparent");
    let leaders: Vec<SocketAddr> = fx.shards.iter().map(|d| d.query_addr().unwrap()).collect();
    let daemon = spawn_router(leaders);
    let mut oracle_client = SirenClient::connect(fx.oracle.query_addr().unwrap()).unwrap();

    // Blocking v3 client, plan path.
    let mut client = SirenClient::connect(daemon.local_addr()).unwrap();
    for plan in [
        QueryPlan::records().batch_rows(3),
        QueryPlan::records().filter(Selection::all().host("nid000001")),
        QueryPlan::usage_table(),
    ] {
        let merged = client.query(plan.clone()).unwrap().collect_rows().unwrap();
        let expected = oracle_client.query(plan).unwrap().collect_rows().unwrap();
        assert_eq!(merged, expected, "router port must serve union answers");
    }

    // Status aggregates the union; Metrics carries the fed.* series.
    let status = client.status().unwrap();
    let total: u64 = fx.shards.iter().map(|d| d.snapshot().len() as u64).sum();
    assert_eq!(status.records, total);
    assert_eq!(status.committed_epochs, vec![0, 1]);
    let metrics = client.metrics().unwrap();
    assert!(metrics.counter("fed.queries") >= 3);
    assert!(metrics.counter("fed.rows_merged") > 0);

    // One-shot ByJob routes through the plan path (and its job
    // selection prunes to one shard).
    let shard_router = ShardRouter::new(2);
    let job = (0..64)
        .find(|&j| shard_router.shard_of_job(j) == 1)
        .unwrap();
    let req = QueryRequest::ByJob { job_id: job };
    let from_router = client.call(&req).unwrap().encode_versioned(3);
    let from_oracle = oracle_client.call(&req).unwrap().encode_versioned(3);
    assert_eq!(
        from_router, from_oracle,
        "ByJob bytes must match the oracle"
    );

    // Cursors are never parked: any cursor id is unknown. The client
    // library refuses to send FetchCursor outside a stream, so speak
    // raw v2 frames.
    let mut raw = TcpStream::connect(daemon.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut raw, &encode_hello(2, 2)).unwrap();
    assert_eq!(decode_hello_ack(&read_frame(&mut raw).unwrap()), Some(2));
    let fetch = QueryRequest::FetchCursor { cursor: 99 };
    write_frame(&mut raw, &fetch.encode_versioned(2)).unwrap();
    let payload = read_frame(&mut raw).unwrap();
    match QueryResponse::decode_versioned(&payload, 2) {
        Ok(QueryResponse::Error(QueryError::UnknownCursor(99))) => {}
        other => panic!("expected UnknownCursor, got {other:?}"),
    }
    drop(raw);

    // LibraryUsage is not federatable: typed refusal, never wrong sums.
    match client.call(&QueryRequest::LibraryUsage {
        selection: Selection::default(),
    }) {
        Err(siren_proto::ClientError::Server(QueryError::Internal(detail))) => {
            assert!(detail.contains("not federatable"), "{detail}");
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    drop(client);

    // Multiplexed v3 client over the same port.
    let mux = SirenClient::connect(daemon.local_addr())
        .unwrap()
        .into_mux()
        .unwrap();
    let merged: Vec<PlanRow> = mux
        .query(QueryPlan::records().batch_rows(2))
        .unwrap()
        .collect_rows()
        .unwrap();
    let expected = oracle_client
        .query(QueryPlan::records().batch_rows(2))
        .unwrap()
        .collect_rows()
        .unwrap();
    assert_eq!(merged, expected, "mux streams must see the same union");
    daemon.shutdown();
}

/// A v1-only client gets the standard typed version refusal — the
/// router never silently downgrades federation below plans+warnings.
#[test]
fn protocol_v1_is_refused_typed() {
    let fx = fixture("fedwire-v1");
    let leaders: Vec<SocketAddr> = fx.shards.iter().map(|d| d.query_addr().unwrap()).collect();
    let daemon = spawn_router(leaders);

    let mut stream = TcpStream::connect(daemon.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_frame(&mut stream, &encode_hello(1, 1)).unwrap();
    let payload = read_frame(&mut stream).unwrap();
    assert_eq!(decode_hello_ack(&payload), None, "no ack for v1");
    match QueryResponse::decode_versioned(&payload, 2) {
        Ok(QueryResponse::Error(QueryError::UnsupportedVersion {
            server_min,
            server_max,
        })) => {
            assert_eq!((server_min, server_max), (2, 3));
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    daemon.shutdown();
}

/// Partial results pass through the wire typed: a dead shard reaches
/// the client as a `Warning` frame before stream end, and one-shots —
/// which cannot carry a warning — are refused rather than answered
/// silently incomplete.
#[test]
fn partial_results_reach_wire_clients_typed() {
    let fx = fixture("fedwire-partial");
    let live_addr = fx.shards[0].query_addr().unwrap();
    let dead_addr = fx.shards[1].query_addr().unwrap();
    let daemon = spawn_router([live_addr, dead_addr]);
    let Fixture { mut shards, .. } = fx;
    drop(shards.pop()); // kill shard-1

    let mut client = SirenClient::connect(daemon.local_addr()).unwrap();
    let (rows, warnings) = client
        .query(QueryPlan::records())
        .unwrap()
        .collect_rows_warned()
        .unwrap();
    assert!(!rows.is_empty(), "the live shard's rows still arrive");
    assert_eq!(warnings.len(), 1);
    assert_eq!(warnings[0].missing, vec!["shard-1".to_string()]);

    // A one-shot needing the dead shard draws a typed error carrying
    // the warning text.
    let shard_router = ShardRouter::new(2);
    let dead_job = (0..64)
        .find(|&j| shard_router.shard_of_job(j) == 1)
        .unwrap();
    match client.call(&QueryRequest::ByJob { job_id: dead_job }) {
        Err(siren_proto::ClientError::Server(QueryError::Internal(detail))) => {
            assert!(detail.contains("shard-1"), "{detail}");
        }
        other => panic!("expected a typed one-shot refusal, got {other:?}"),
    }
    daemon.shutdown();
}
