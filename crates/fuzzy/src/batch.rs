//! Parallel batch comparison.
//!
//! The paper's motivation for fuzzy hashing over byte-level comparison is
//! scalability: a fuzzy hash is ≤ ~100 characters, so one-vs-many and
//! all-pairs similarity over millions of process records stays cheap. This
//! module provides those batch operations, parallelized over OS threads
//! with `crossbeam::scope` (no global thread-pool dependency).
//!
//! The block-size compatibility rule also enables *pruning*: hashes whose
//! block size is not equal/half/double the baseline's can never score
//! above 0, so they are skipped without string work. The pruning knob is
//! exposed for the ablation bench.

use crate::compare::compare_parsed;
use crate::FuzzyHash;

/// A scored corpus entry returned by [`similarity_search`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// Index into the corpus slice passed to the search.
    pub index: usize,
    /// Similarity score 0–100.
    pub score: u32,
}

fn worker_count(n_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Below ~4k comparisons the spawn cost dominates any speedup.
    if n_items < 4096 {
        1
    } else {
        hw.min(n_items.div_ceil(2048)).max(1)
    }
}

/// Compare `baseline` against every element of `corpus`, in parallel.
/// Returns one score per corpus element, in order.
pub fn compare_many(baseline: &FuzzyHash, corpus: &[FuzzyHash]) -> Vec<u32> {
    compare_many_impl(baseline, corpus, false)
}

/// As [`compare_many`] but skipping block-size-incompatible entries
/// without any string work (they score 0 by definition).
pub fn compare_many_pruned(baseline: &FuzzyHash, corpus: &[FuzzyHash]) -> Vec<u32> {
    compare_many_impl(baseline, corpus, true)
}

fn compare_many_impl(baseline: &FuzzyHash, corpus: &[FuzzyHash], prune: bool) -> Vec<u32> {
    let workers = worker_count(corpus.len());
    let mut scores = vec![0u32; corpus.len()];

    let score_one = |h: &FuzzyHash| -> u32 {
        if prune {
            let (a, b) = (baseline.block_size, h.block_size);
            if a != b && a != b.wrapping_mul(2) && b != a.wrapping_mul(2) {
                return 0;
            }
        }
        compare_parsed(baseline, h)
    };

    if workers <= 1 {
        for (s, h) in scores.iter_mut().zip(corpus) {
            *s = score_one(h);
        }
        return scores;
    }

    let chunk = corpus.len().div_ceil(workers);
    crossbeam::scope(|scope| {
        for (out, inp) in scores.chunks_mut(chunk).zip(corpus.chunks(chunk)) {
            scope.spawn(move |_| {
                for (s, h) in out.iter_mut().zip(inp) {
                    *s = score_one(h);
                }
            });
        }
    })
    .expect("comparison worker panicked");

    scores
}

/// Rank the corpus by similarity to `baseline`, keeping entries scoring at
/// least `min_score`. Results are sorted by descending score, ties by
/// ascending index (stable, deterministic output for reports).
pub fn similarity_search(
    baseline: &FuzzyHash,
    corpus: &[FuzzyHash],
    min_score: u32,
) -> Vec<SearchHit> {
    let scores = compare_many_pruned(baseline, corpus);
    let mut hits: Vec<SearchHit> = scores
        .into_iter()
        .enumerate()
        .filter(|&(_, s)| s >= min_score && s > 0)
        .map(|(index, score)| SearchHit { index, score })
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.index.cmp(&b.index)));
    hits
}

/// Full pairwise similarity matrix (symmetric; diagonal is 100 for
/// non-empty hashes). Row-major `n × n`. Only the upper triangle is
/// computed; the lower is mirrored.
pub fn compare_matrix(corpus: &[FuzzyHash]) -> Vec<Vec<u32>> {
    let n = corpus.len();
    let mut matrix = vec![vec![0u32; n]; n];

    // Parallelize over rows; row i computes columns i..n.
    let workers = worker_count(n * n / 2);
    let rows: Vec<(usize, Vec<u32>)> = if workers <= 1 {
        (0..n).map(|i| (i, row_scores(corpus, i))).collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);

        parking_lot_free_collect(n, workers, &next, corpus)
    };

    for (i, row) in rows {
        for (j, &s) in row.iter().enumerate() {
            let col = i + j;
            matrix[i][col] = s;
            matrix[col][i] = s;
        }
    }
    matrix
}

fn row_scores(corpus: &[FuzzyHash], i: usize) -> Vec<u32> {
    let base = &corpus[i];
    corpus[i..]
        .iter()
        .map(|h| compare_parsed(base, h))
        .collect()
}

/// Work-stealing row distribution without any lock: an atomic row cursor.
fn parking_lot_free_collect(
    n: usize,
    workers: usize,
    next: &std::sync::atomic::AtomicUsize,
    corpus: &[FuzzyHash],
) -> Vec<(usize, Vec<u32>)> {
    use std::sync::atomic::Ordering;
    let mut all: Vec<(usize, Vec<u32>)> = Vec::with_capacity(n);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, row_scores(corpus, i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("matrix worker panicked"));
        }
    })
    .expect("matrix scope failed");
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzy_hash;

    fn corpus() -> Vec<FuzzyHash> {
        // A family of similar byte strings plus unrelated ones.
        let base: Vec<u8> = (0..10_000u32).map(|i| (i * 17 % 251) as u8).collect();
        let mut out = Vec::new();
        out.push(fuzzy_hash(&base));
        for k in 1..4u8 {
            let mut v = base.clone();
            for b in v.iter_mut().skip(1000 * k as usize).take(40) {
                *b ^= k;
            }
            out.push(fuzzy_hash(&v));
        }
        for seed in [7u32, 8, 9] {
            let unrelated: Vec<u8> = (0..10_000u32)
                .map(|i| ((i * 31 + seed * 1013) % 247) as u8)
                .collect();
            out.push(fuzzy_hash(&unrelated));
        }
        out
    }

    #[test]
    fn compare_many_matches_sequential() {
        let c = corpus();
        let scores = compare_many(&c[0], &c);
        let expect: Vec<u32> = c.iter().map(|h| compare_parsed(&c[0], h)).collect();
        assert_eq!(scores, expect);
        assert_eq!(scores[0], 100);
    }

    #[test]
    fn pruned_equals_unpruned() {
        let c = corpus();
        assert_eq!(compare_many(&c[0], &c), compare_many_pruned(&c[0], &c));
    }

    #[test]
    fn search_is_sorted_and_filtered() {
        let c = corpus();
        let hits = similarity_search(&c[0], &c, 1);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[0].score, 100);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for h in &hits {
            assert!(h.score >= 1);
        }
    }

    #[test]
    fn matrix_is_symmetric_with_perfect_diagonal() {
        let c = corpus();
        let m = compare_matrix(&c);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 100);
            for (j, &score) in row.iter().enumerate() {
                assert_eq!(score, m[j][i]);
            }
        }
    }

    #[test]
    fn family_members_outscore_strangers() {
        let c = corpus();
        let scores = compare_many(&c[0], &c);
        let family_min = scores[1..4].iter().min().unwrap();
        let stranger_max = scores[4..].iter().max().unwrap();
        assert!(
            family_min > stranger_max,
            "family {family_min} vs stranger {stranger_max}"
        );
    }

    #[test]
    fn large_corpus_parallel_path() {
        // Force the multi-worker code path (>4096 items).
        let base: Vec<u8> = (0..2_000u32).map(|i| (i % 199) as u8).collect();
        let h = fuzzy_hash(&base);
        let corpus: Vec<FuzzyHash> = (0..5000).map(|_| h.clone()).collect();
        let scores = compare_many(&h, &corpus);
        assert!(scores.iter().all(|&s| s == 100));
    }
}
