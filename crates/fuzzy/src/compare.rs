//! Fuzzy-hash comparison: the 0–100 similarity score.
//!
//! The pipeline (mirroring `fuzzy_compare` in ssdeep and §2.1 of the
//! paper):
//!
//! 1. Block sizes must be equal, double, or half — otherwise the hashes
//!    describe chunkings at incomparable granularities and the score is 0.
//! 2. Runs of more than three identical characters are collapsed to three;
//!    long runs carry almost no information (they arise from repetitive
//!    input) and would otherwise inflate scores.
//! 3. The two signatures must share at least one 7-character substring
//!    (the width of the rolling window); without that the match is noise.
//! 4. A weighted Damerau–Levenshtein distance (insert/delete 1,
//!    substitute 3, transpose 5 — the original spamsum weights) is scaled
//!    into 0–100, where 100 means effectively identical.
//! 5. For small block sizes the score is capped: short signatures of
//!    common block sizes can collide by chance, so their evidence is
//!    weaker.

use crate::{FuzzyHash, ParseError, MIN_BLOCKSIZE, ROLLING_WINDOW, SPAMSUM_LENGTH};

/// Cost of inserting one character.
pub const COST_INSERT: u32 = 1;
/// Cost of deleting one character.
pub const COST_DELETE: u32 = 1;
/// Cost of substituting one character.
pub const COST_SUBSTITUTE: u32 = 3;
/// Cost of transposing two adjacent characters.
pub const COST_TRANSPOSE: u32 = 5;

/// Compare two textual fuzzy hashes. Errors if either fails to parse.
pub fn compare(a: &str, b: &str) -> Result<u32, ParseError> {
    Ok(compare_parsed(&FuzzyHash::parse(a)?, &FuzzyHash::parse(b)?))
}

/// Compare two parsed fuzzy hashes, returning a similarity score 0–100.
pub fn compare_parsed(a: &FuzzyHash, b: &FuzzyHash) -> u32 {
    let (bs1, bs2) = (a.block_size, b.block_size);

    // Identical non-trivial hashes are a perfect match, regardless of
    // signature length (short signatures would otherwise be rejected by
    // the common-substring gate; identity is stronger evidence).
    if bs1 == bs2 && a.sig1 == b.sig1 && a.sig2 == b.sig2 && !a.sig1.is_empty() {
        return 100;
    }

    if bs1 != bs2 && bs1 != bs2.wrapping_mul(2) && bs2 != bs1.wrapping_mul(2) {
        return 0;
    }

    let a1 = eliminate_sequences(&a.sig1);
    let a2 = eliminate_sequences(&a.sig2);
    let b1 = eliminate_sequences(&b.sig1);
    let b2 = eliminate_sequences(&b.sig2);

    if bs1 == bs2 {
        let s1 = score_strings(&a1, &b1, bs1);
        let s2 = score_strings(&a2, &b2, bs1 * 2);
        s1.max(s2)
    } else if bs1 == bs2 * 2 {
        // a's primary signature is at b's doubled block size.
        score_strings(&a1, &b2, bs1)
    } else {
        score_strings(&a2, &b1, bs2)
    }
}

/// Collapse runs of more than three identical characters to exactly three.
pub fn eliminate_sequences(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut run = 0usize;
    let mut prev = 0u8;
    for &c in bytes {
        if c == prev {
            run += 1;
        } else {
            run = 1;
            prev = c;
        }
        if run <= 3 {
            out.push(c as char);
        }
    }
    out
}

/// Do `s1` and `s2` share a common substring of at least
/// [`ROLLING_WINDOW`] characters?
pub fn has_common_substring(s1: &str, s2: &str) -> bool {
    if s1.len() < ROLLING_WINDOW || s2.len() < ROLLING_WINDOW {
        return false;
    }
    let b1 = s1.as_bytes();
    let b2 = s2.as_bytes();
    // Hash the 7-grams of the shorter string into a set, probe the other.
    let (small, big) = if b1.len() <= b2.len() {
        (b1, b2)
    } else {
        (b2, b1)
    };
    let grams: std::collections::HashSet<&[u8]> = small.windows(ROLLING_WINDOW).collect();
    big.windows(ROLLING_WINDOW).any(|w| grams.contains(w))
}

/// Weighted Damerau–Levenshtein distance with spamsum's costs.
///
/// Note: with substitute cost 3 > insert + delete, a substitution is never
/// cheaper than delete-then-insert, and transpose cost 5 is likewise never
/// chosen — this matches spamsum, whose weights effectively reduce the
/// metric to an insert/delete distance. The full recurrence is kept so the
/// costs are honest tunables.
pub fn edit_distance(s1: &str, s2: &str) -> u32 {
    let a = s1.as_bytes();
    let b = s2.as_bytes();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m as u32 * COST_INSERT;
    }
    if m == 0 {
        return n as u32 * COST_DELETE;
    }

    // Three rolling rows suffice for the transposition lookback.
    let width = m + 1;
    let mut prev2 = vec![0u32; width];
    let mut prev = vec![0u32; width];
    let mut cur = vec![0u32; width];

    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as u32 * COST_INSERT;
    }

    for i in 1..=n {
        cur[0] = i as u32 * COST_DELETE;
        for j in 1..=m {
            let mut best = prev[j] + COST_DELETE;
            best = best.min(cur[j - 1] + COST_INSERT);
            let sub = if a[i - 1] == b[j - 1] {
                0
            } else {
                COST_SUBSTITUTE
            };
            best = best.min(prev[j - 1] + sub);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + COST_TRANSPOSE);
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Score two signature strings that were produced at block size
/// `block_size`. 0 if the evidence gate fails; otherwise 0–100.
pub fn score_strings(s1: &str, s2: &str, block_size: u32) -> u32 {
    if s1.len() > SPAMSUM_LENGTH || s2.len() > SPAMSUM_LENGTH {
        return 0;
    }
    if !has_common_substring(s1, s2) {
        return 0;
    }

    let d = u64::from(edit_distance(s1, s2));
    let total_len = (s1.len() + s2.len()) as u64;

    // Scale the distance by signature length into 0..100 as spamsum does
    // (two integer divisions, preserved faithfully).
    let mut score = d * SPAMSUM_LENGTH as u64 / total_len;
    score = 100 * score / SPAMSUM_LENGTH as u64;
    if score >= 100 {
        return 0;
    }
    let mut score = (100 - score) as u32;

    // Small block sizes make weaker claims: cap by how much data the
    // matched chunks can actually represent.
    let cap = (block_size / MIN_BLOCKSIZE).saturating_mul(s1.len().min(s2.len()) as u32);
    if score > cap {
        score = cap;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzy_hash;

    #[test]
    fn eliminate_sequences_basic() {
        assert_eq!(eliminate_sequences(""), "");
        assert_eq!(eliminate_sequences("abc"), "abc");
        assert_eq!(eliminate_sequences("aaab"), "aaab");
        assert_eq!(eliminate_sequences("aaaab"), "aaab");
        assert_eq!(eliminate_sequences("aaaaaaa"), "aaa");
        assert_eq!(eliminate_sequences("abbbbbbc"), "abbbc");
    }

    #[test]
    fn common_substring_gate() {
        assert!(!has_common_substring("", ""));
        assert!(!has_common_substring("abcdef", "abcdef")); // < 7 chars
        assert!(has_common_substring("XXabcdefgYY", "abcdefg"));
        assert!(!has_common_substring("abcdefg", "gfedcba"));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abcd"), 1);
        assert_eq!(edit_distance("abcd", "abc"), 1);
        // Substitution costs 3, but delete+insert costs 2 — spamsum picks 2.
        assert_eq!(edit_distance("abc", "axc"), 2);
        assert_eq!(edit_distance("ab", "ba"), 2); // transpose(5) loses to 2 indels
    }

    #[test]
    fn edit_distance_symmetry() {
        let pairs = [("kitten", "sitting"), ("flaw", "lawn"), ("", "abc")];
        for (a, b) in pairs {
            assert_eq!(edit_distance(a, b), edit_distance(b, a));
        }
    }

    #[test]
    fn identical_hashes_score_100() {
        let data: Vec<u8> = (0..5_000u32).map(|i| (i % 251) as u8).collect();
        let h = fuzzy_hash(&data);
        assert_eq!(compare_parsed(&h, &h), 100);
    }

    #[test]
    fn empty_hashes_score_zero() {
        let e1 = FuzzyHash::parse("3::").unwrap();
        let e2 = FuzzyHash::parse("3::").unwrap();
        assert_eq!(compare_parsed(&e1, &e2), 0);
    }

    #[test]
    fn incompatible_block_sizes_score_zero() {
        let a = FuzzyHash {
            block_size: 3,
            sig1: "ABCDEFGH".into(),
            sig2: "ABCD".into(),
        };
        let b = FuzzyHash {
            block_size: 48,
            sig1: "ABCDEFGH".into(),
            sig2: "ABCD".into(),
        };
        assert_eq!(compare_parsed(&a, &b), 0);
    }

    #[test]
    fn double_block_size_compares_cross_signatures() {
        // a at block size 6 vs b at block size 3: a.sig1 should be compared
        // with b.sig2 (both representing chunking at size 6).
        let sig = "KJHGFDSAqwertyuiop".to_string();
        let a = FuzzyHash {
            block_size: 6,
            sig1: sig.clone(),
            sig2: "zz".into(),
        };
        let b = FuzzyHash {
            block_size: 3,
            sig1: "yy".into(),
            sig2: sig.clone(),
        };
        assert!(compare_parsed(&a, &b) > 0);
        assert_eq!(compare_parsed(&a, &b), compare_parsed(&b, &a));
    }

    #[test]
    fn score_is_symmetric_on_real_hashes() {
        let d1: Vec<u8> = (0..20_000u32).map(|i| (i * 7 % 253) as u8).collect();
        let mut d2 = d1.clone();
        d2.extend_from_slice(b"trailing modification content");
        let h1 = fuzzy_hash(&d1);
        let h2 = fuzzy_hash(&d2);
        assert_eq!(compare_parsed(&h1, &h2), compare_parsed(&h2, &h1));
    }

    #[test]
    fn compare_text_api() {
        assert_eq!(compare("3:abc:de", "3:abc:de").unwrap(), 100);
        assert!(compare("not-a-hash", "3:abc:de").is_err());
    }

    #[test]
    fn small_edit_scores_high_large_rewrite_scores_low() {
        // Non-periodic data: periodic inputs produce degenerate repetitive
        // signatures that the sequence-elimination step collapses, which is
        // correct but not what this test probes.
        let mut x = 0x1234_5678u32;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x >> 8) as u8
        };
        let base: Vec<u8> = (0..30_000).map(|_| rnd()).collect();
        let mut near = base.clone();
        near[15_000] ^= 0xFF; // single-byte flip

        let mut far: Vec<u8> = base.clone();
        for b in far.iter_mut().take(15_000) {
            *b = rnd(); // rewrite half the file
        }

        let hb = fuzzy_hash(&base);
        let hn = fuzzy_hash(&near);
        let hf = fuzzy_hash(&far);
        let near_score = compare_parsed(&hb, &hn);
        let far_score = compare_parsed(&hb, &hf);
        assert!(
            near_score > far_score,
            "near {near_score} vs far {far_score}"
        );
        assert!(
            near_score >= 80,
            "near edit should score high: {near_score}"
        );
    }

    #[test]
    fn score_strings_rejects_overlong() {
        let long = "A".repeat(65);
        assert_eq!(score_strings(&long, &long, 3), 0);
    }

    #[test]
    fn block_size_cap_limits_short_matches() {
        // At MIN_BLOCKSIZE, a 7-char identical pair can score at most
        // bs/MIN * min_len = 1 * 7 = 7.
        let s = "ABCDEFG";
        assert!(score_strings(s, s, MIN_BLOCKSIZE) <= 7);
        // At a large block size the cap is inert.
        assert!(score_strings(s, s, 3 * 1024) > 90);
    }
}
