//! Fuzzy-hash generation.
//!
//! Two interchangeable implementations of the same semantics:
//!
//! * [`fuzzy_hash_reference`] — the two-pass algorithm exactly as published
//!   by Kornblum: pick the block size from the input length, hash, and
//!   halve/retry while the signature is too short. O(n log n) worst case,
//!   requires the whole input in memory. Used as the test oracle.
//! * [`FuzzyHasher`] — a single-pass streaming engine that maintains up to
//!   31 block-size contexts (`3 · 2^i`) simultaneously, forking new
//!   contexts upward as the input grows and retiring low contexts that can
//!   no longer be selected (the `fuzzy.c` approach). O(n), constant memory,
//!   supports incremental `update()` — this is what the collector uses.
//!
//! Property tests in `tests/` assert the two produce identical output for
//! arbitrary inputs.

use crate::roll::RollingHash;
use crate::{FuzzyHash, HASH_INIT, MIN_BLOCKSIZE, NUM_BLOCKHASHES, SPAMSUM_LENGTH};
use siren_hash::BASE64_ALPHABET;

#[inline]
fn b64_char(h: u32) -> u8 {
    BASE64_ALPHABET[(h % 64) as usize]
}

#[inline]
fn fnv_step(h: u32, c: u8) -> u32 {
    (h ^ u32::from(c)).wrapping_mul(0x0100_0193)
}

/// Block size of context level `i`.
#[inline]
fn block_size(i: usize) -> u32 {
    MIN_BLOCKSIZE << i
}

/// Hash `data` with the streaming engine (the primary implementation).
pub fn fuzzy_hash(data: &[u8]) -> FuzzyHash {
    let mut h = FuzzyHasher::new();
    h.update(data);
    h.digest()
}

/// One full pass of the published spamsum algorithm at a fixed block size.
/// Returns `(sig1, sig2)` including the trailing partial-chunk characters.
fn reference_pass(data: &[u8], bs: u32) -> (String, String) {
    let mut roll = RollingHash::new();
    let mut h1 = HASH_INIT;
    let mut h2 = HASH_INIT;
    let mut sig1 = Vec::with_capacity(SPAMSUM_LENGTH);
    let mut sig2 = Vec::with_capacity(SPAMSUM_LENGTH / 2);
    let bs2 = bs * 2;

    for &c in data {
        h1 = fnv_step(h1, c);
        h2 = fnv_step(h2, c);
        let rs = roll.update(c);
        if rs % bs == bs - 1 && sig1.len() < SPAMSUM_LENGTH - 1 {
            sig1.push(b64_char(h1));
            h1 = HASH_INIT;
        }
        if rs % bs2 == bs2 - 1 && sig2.len() < SPAMSUM_LENGTH / 2 - 1 {
            sig2.push(b64_char(h2));
            h2 = HASH_INIT;
        }
    }

    if roll.sum() != 0 {
        sig1.push(b64_char(h1));
        sig2.push(b64_char(h2));
    }

    (
        String::from_utf8(sig1).unwrap(),
        String::from_utf8(sig2).unwrap(),
    )
}

/// The published two-pass spamsum algorithm (test oracle).
pub fn fuzzy_hash_reference(data: &[u8]) -> FuzzyHash {
    let mut bs = MIN_BLOCKSIZE;
    while u64::from(bs) * (SPAMSUM_LENGTH as u64) < data.len() as u64 {
        bs = bs.saturating_mul(2);
    }
    loop {
        let (sig1, sig2) = reference_pass(data, bs);
        if bs > MIN_BLOCKSIZE && sig1.len() < SPAMSUM_LENGTH / 2 {
            bs /= 2;
        } else {
            return FuzzyHash {
                block_size: bs,
                sig1,
                sig2,
            };
        }
    }
}

/// Per-block-size context of the streaming engine.
#[derive(Debug, Clone)]
struct BlockhashContext {
    /// Piecewise FNV for the full-length signature; reset at every chunk
    /// boundary while `digest` is below its cap.
    h: u32,
    /// Piecewise FNV for the half-length (double-block-size role)
    /// signature; reset at boundaries only while `half_digest` is below
    /// its cap, so that after the cap it accumulates to the end of input —
    /// matching the reference's truncated second signature exactly.
    half_h: u32,
    digest: Vec<u8>,
    half_digest: Vec<u8>,
}

impl BlockhashContext {
    fn new() -> Self {
        Self {
            h: HASH_INIT,
            half_h: HASH_INIT,
            digest: Vec::with_capacity(SPAMSUM_LENGTH),
            half_digest: Vec::with_capacity(SPAMSUM_LENGTH / 2),
        }
    }
}

/// Single-pass streaming CTPH engine.
///
/// ```
/// use siren_fuzzy::FuzzyHasher;
/// let mut h = FuzzyHasher::new();
/// h.update(b"some executable ");
/// h.update(b"content here");
/// let fh = h.digest();
/// assert_eq!(fh, siren_fuzzy::fuzzy_hash(b"some executable content here"));
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyHasher {
    contexts: Vec<BlockhashContext>,
    /// Lowest still-maintained context level.
    bh_start: usize,
    /// One past the highest existing context level.
    bh_end: usize,
    roll: RollingHash,
    total: u64,
    /// When false, low contexts are never retired (ablation knob for the
    /// `reduce_contexts` optimization; results are identical either way).
    reduce: bool,
}

impl Default for FuzzyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzyHasher {
    /// New engine with the context-retirement optimization enabled.
    pub fn new() -> Self {
        Self {
            contexts: vec![BlockhashContext::new()],
            bh_start: 0,
            bh_end: 1,
            roll: RollingHash::new(),
            total: 0,
            reduce: true,
        }
    }

    /// New engine that never retires low contexts (slower; used by the
    /// ablation bench to quantify the optimization).
    pub fn new_without_reduction() -> Self {
        let mut s = Self::new();
        s.reduce = false;
        s
    }

    /// Total bytes consumed so far.
    pub fn total_len(&self) -> u64 {
        self.total
    }

    /// Number of currently live block-size contexts (observability for the
    /// ablation bench).
    pub fn live_contexts(&self) -> usize {
        self.bh_end - self.bh_start
    }

    /// Absorb input.
    pub fn update(&mut self, data: &[u8]) {
        for &c in data {
            self.step(c);
        }
    }

    #[inline]
    fn step(&mut self, c: u8) {
        self.total += 1;

        for ctx in &mut self.contexts[self.bh_start..self.bh_end] {
            ctx.h = fnv_step(ctx.h, c);
            ctx.half_h = fnv_step(ctx.half_h, c);
        }

        let rs = self.roll.update(c);

        // Chunk-boundary triggers cascade: a trigger at level i+1 implies
        // a trigger at level i, so walk upward and stop at the first miss.
        let mut i = self.bh_start;
        while i < self.bh_end {
            let bs = block_size(i);
            if rs % bs != bs - 1 {
                break;
            }
            // A first emission at the top level means the input is now
            // large enough that the next block size may be needed: fork a
            // new context inheriting the accumulated (never-reset) state.
            if self.contexts[i].digest.is_empty() {
                self.try_fork();
            }
            let ctx = &mut self.contexts[i];
            if ctx.digest.len() < SPAMSUM_LENGTH - 1 {
                ctx.digest.push(b64_char(ctx.h));
                ctx.h = HASH_INIT;
            }
            if ctx.half_digest.len() < SPAMSUM_LENGTH / 2 - 1 {
                ctx.half_digest.push(b64_char(ctx.half_h));
                ctx.half_h = HASH_INIT;
            }
            i += 1;
        }

        if self.reduce {
            self.try_reduce();
        }
    }

    /// Add context level `bh_end`, inheriting hash state from the current
    /// top (whose piecewise hashes have never been reset — see caller).
    fn try_fork(&mut self) {
        if self.bh_end >= NUM_BLOCKHASHES {
            return;
        }
        let top = &self.contexts[self.bh_end - 1];
        let mut fresh = BlockhashContext::new();
        fresh.h = top.h;
        fresh.half_h = top.half_h;
        self.contexts.push(fresh);
        self.bh_end += 1;
    }

    /// Retire the lowest context once it can no longer be selected: the
    /// input has outgrown its block size *and* the next level already has
    /// enough signature characters that digest-time adaptation will not
    /// descend past it. Both conditions are monotone in the input length,
    /// so retiring early never changes the final digest.
    fn try_reduce(&mut self) {
        while self.bh_end - self.bh_start > 1 {
            let next_bs = u64::from(block_size(self.bh_start + 1));
            if next_bs * (SPAMSUM_LENGTH as u64) >= self.total {
                break;
            }
            if self.contexts[self.bh_start + 1].digest.len() < SPAMSUM_LENGTH / 2 {
                break;
            }
            // Free the retired context's memory eagerly; it will never be
            // read again.
            self.contexts[self.bh_start].digest = Vec::new();
            self.contexts[self.bh_start].half_digest = Vec::new();
            self.bh_start += 1;
        }
    }

    /// Produce the fuzzy hash of everything consumed so far. Non-destructive:
    /// the engine can keep absorbing input afterwards.
    pub fn digest(&self) -> FuzzyHash {
        let rs = self.roll.sum();

        // Initial block-size guess from the total length, clamped to the
        // range of live contexts.
        let mut bi = self.bh_start;
        while bi < NUM_BLOCKHASHES - 1
            && u64::from(block_size(bi)) * (SPAMSUM_LENGTH as u64) < self.total
        {
            bi += 1;
        }
        if bi >= self.bh_end {
            bi = self.bh_end - 1;
        }

        // Adapt downward while the signature is too short (matches the
        // reference's halve-and-retry loop).
        let sig1_len = |i: usize| self.contexts[i].digest.len() + usize::from(rs != 0);
        while bi > self.bh_start && sig1_len(bi) < SPAMSUM_LENGTH / 2 {
            bi -= 1;
        }

        let ctx = &self.contexts[bi];
        let mut sig1 = ctx.digest.clone();
        if rs != 0 {
            sig1.push(b64_char(ctx.h));
        }

        let mut sig2 = Vec::new();
        if bi + 1 < self.bh_end {
            let above = &self.contexts[bi + 1];
            sig2 = above.half_digest.clone();
            if rs != 0 {
                sig2.push(b64_char(above.half_h));
            }
        } else if rs != 0 {
            // No higher context exists (input still tiny): the double-block
            // signature is the single partial-chunk character, exactly what
            // the reference pass produces when no 2·bs boundary was hit.
            sig2.push(b64_char(ctx.half_h));
        }

        FuzzyHash {
            block_size: block_size(bi),
            sig1: String::from_utf8(sig1).unwrap(),
            sig2: String::from_utf8(sig2).unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: u32) -> Vec<u8> {
        // Deterministic pseudo-random bytes (xorshift), no rand dependency.
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect()
    }

    #[test]
    fn empty_input() {
        let h = fuzzy_hash(b"");
        assert_eq!(h.to_string_repr(), "3::");
        assert_eq!(fuzzy_hash_reference(b""), h);
    }

    #[test]
    fn reference_and_streaming_agree_small() {
        for len in [1usize, 2, 6, 7, 8, 63, 64, 100, 192, 500] {
            let data = pattern(len, 42);
            assert_eq!(fuzzy_hash_reference(&data), fuzzy_hash(&data), "len {len}");
        }
    }

    #[test]
    fn reference_and_streaming_agree_large() {
        for (len, seed) in [(10_000usize, 1u32), (50_000, 2), (200_000, 3)] {
            let data = pattern(len, seed);
            assert_eq!(fuzzy_hash_reference(&data), fuzzy_hash(&data), "len {len}");
        }
    }

    #[test]
    fn reduction_does_not_change_result() {
        let data = pattern(100_000, 9);
        let mut a = FuzzyHasher::new();
        let mut b = FuzzyHasher::new_without_reduction();
        a.update(&data);
        b.update(&data);
        assert_eq!(a.digest(), b.digest());
        assert!(a.live_contexts() <= b.live_contexts());
    }

    #[test]
    fn streaming_split_points_agree() {
        let data = pattern(30_000, 5);
        let whole = fuzzy_hash(&data);
        for split in [1usize, 100, 15_000, 29_999] {
            let mut h = FuzzyHasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.digest(), whole, "split {split}");
        }
    }

    #[test]
    fn digest_is_non_destructive() {
        let data = pattern(5_000, 11);
        let mut h = FuzzyHasher::new();
        h.update(&data[..2_500]);
        let _ = h.digest();
        h.update(&data[2_500..]);
        assert_eq!(h.digest(), fuzzy_hash(&data));
    }

    #[test]
    fn block_size_grows_with_input() {
        let small = fuzzy_hash(&pattern(100, 1));
        let large = fuzzy_hash(&pattern(1_000_000, 1));
        assert!(large.block_size > small.block_size);
    }

    #[test]
    fn signature_lengths_respect_caps() {
        for len in [100usize, 10_000, 1_000_000] {
            let h = fuzzy_hash(&pattern(len, 3));
            assert!(h.sig1.len() <= SPAMSUM_LENGTH, "sig1 {}", h.sig1.len());
            assert!(h.sig2.len() <= SPAMSUM_LENGTH / 2, "sig2 {}", h.sig2.len());
        }
    }

    #[test]
    fn similar_inputs_similar_hashes() {
        // The defining CTPH property: a small in-place edit leaves most of
        // the signature intact.
        let a = pattern(20_000, 77);
        let mut b = a.clone();
        for byte in &mut b[10_000..10_016] {
            *byte ^= 0xFF;
        }
        let ha = fuzzy_hash(&a);
        let hb = fuzzy_hash(&b);
        assert!(
            crate::compare_parsed(&ha, &hb) >= 60,
            "edit destroyed similarity: {} vs {}",
            ha,
            hb
        );
    }

    #[test]
    fn unrelated_inputs_score_zero_or_low() {
        let ha = fuzzy_hash(&pattern(20_000, 1));
        let hb = fuzzy_hash(&pattern(20_000, 999_999));
        assert!(crate::compare_parsed(&ha, &hb) <= 20);
    }
}
