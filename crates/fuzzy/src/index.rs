//! N-gram candidate index for similarity search.
//!
//! [`similarity_search`](crate::similarity_search) scores a baseline
//! against *every* corpus entry, which is O(corpus) edit-distance work
//! per query. But a nonzero score is only possible in two narrow cases
//! (see [`compare_parsed`]):
//!
//! 1. the two hashes are **identical** (block size and both raw
//!    signatures), or
//! 2. the pair of signatures compared at a common effective block size
//!    shares a 7-character substring *after* run collapsing — that is
//!    the [`has_common_substring`](crate::compare::has_common_substring)
//!    evidence gate, and 7 is [`ROLLING_WINDOW`].
//!
//! So an inverted index from `(effective block size, 7-gram)` to the
//! corpus entries containing that gram — plus a second map keyed by the
//! whole hash for the identity rule — yields a **candidate superset**:
//! every entry that could possibly score above 0 is in it, and entries
//! outside it are skipped with no string work at all. Scoring only the
//! candidates therefore returns *exactly* the full scan's hits (the
//! equivalence is property-tested in `tests/index_equivalence.rs`).
//!
//! Posting keys are folded 32-bit FNV-1a digests of the gram bytes
//! mixed with the effective block size. A digest collision merely
//! merges two posting runs, enlarging candidate sets — the superset
//! property cannot be lost, only sharpness.
//!
//! Degenerate corpora (low-entropy signatures full of repeated runs,
//! e.g. zero-padded hex) can make the grams unselective. When the
//! candidate set exceeds [`FULL_SCAN_FRACTION`] of the corpus,
//! [`FuzzyIndex::search`] falls back to the parallel full scan, which
//! is faster than probing most of the corpus one entry at a time —
//! and identical in output by construction.

use crate::batch::{similarity_search, SearchHit};
use crate::compare::{compare_parsed, eliminate_sequences};
use crate::{FuzzyHash, ROLLING_WINDOW};
use siren_hash::fnv1a64;

/// `search` falls back to the linear scan when more than
/// `1/FULL_SCAN_FRACTION` of the corpus is a candidate.
pub const FULL_SCAN_FRACTION: usize = 2;

/// Inverted n-gram index over a fuzzy-hash corpus. Built once (at
/// snapshot-layer commit time in the service tier), queried many times.
///
/// Layout: a flat, sorted posting table instead of a hash map — one
/// `(key, entry)` pair per gram occurrence, sorted and grouped at build
/// time. Building is one `sort_unstable` over a flat vector (no
/// per-key allocations, which dominated a map-based prototype), lookup
/// is a binary search per probe gram, and the whole index is three
/// dense arrays. Keys are 32-bit digest folds: two grams colliding
/// merely merges their posting runs, enlarging candidate sets, never
/// shrinking them.
#[derive(Debug, Default, Clone)]
pub struct FuzzyIndex {
    /// Distinct posting keys, ascending. Gram keys digest
    /// `(effective block size, 7-gram)`; identity keys digest the whole
    /// hash (the identity rule can fire with signatures too short to
    /// own any 7-gram). The two families share the table — a cross
    /// collision is as harmless as any other.
    keys: Vec<u32>,
    /// `postings[starts[i]..starts[i + 1]]` = ascending entry ids
    /// filed under `keys[i]`.
    starts: Vec<u32>,
    postings: Vec<u32>,
    entries: u32,
}

/// Mirror of `compare_parsed`'s block-size arithmetic: the doubled
/// block size wraps at `u32` exactly as the comparison's
/// `wrapping_mul(2)` does, so the index stays a candidate superset even
/// for hand-built hashes whose block size is outside the `3·2^i`
/// series a parse would enforce.
fn doubled(block_size: u32) -> u32 {
    block_size.wrapping_mul(2)
}

fn fold32(digest: u64) -> u32 {
    (digest ^ (digest >> 32)) as u32
}

fn gram_key(effective_block_size: u32, gram: &[u8]) -> u32 {
    let mut bytes = [0u8; 4 + ROLLING_WINDOW];
    bytes[..4].copy_from_slice(&effective_block_size.to_le_bytes());
    bytes[4..].copy_from_slice(gram);
    fold32(fnv1a64(&bytes))
}

fn exact_key(h: &FuzzyHash) -> u32 {
    // Tagged so an exact key can never equal a gram key by meaning
    // (a digest collision remains harmless either way).
    let mut bytes = Vec::with_capacity(6 + h.sig1.len() + h.sig2.len());
    bytes.push(b'=');
    bytes.extend_from_slice(&h.block_size.to_le_bytes());
    bytes.extend_from_slice(h.sig1.as_bytes());
    bytes.push(b':');
    bytes.extend_from_slice(h.sig2.as_bytes());
    fold32(fnv1a64(&bytes))
}

/// The `(effective block size, gram)` keys under which `h` must be
/// filed: its run-collapsed `sig1` represents chunking at `block_size`,
/// its run-collapsed `sig2` at double that.
fn feature_keys(h: &FuzzyHash, keys: &mut Vec<u32>) {
    keys.clear();
    for (sig, eff_bs) in [(&h.sig1, h.block_size), (&h.sig2, doubled(h.block_size))] {
        let collapsed = eliminate_sequences(sig);
        for gram in collapsed.as_bytes().windows(ROLLING_WINDOW) {
            keys.push(gram_key(eff_bs, gram));
        }
    }
}

impl FuzzyIndex {
    /// Index `corpus`. Entry ids are positions in the slice; [`search`]
    /// must be called with the same corpus.
    ///
    /// [`search`]: FuzzyIndex::search
    pub fn build(corpus: &[FuzzyHash]) -> Self {
        let entries = u32::try_from(corpus.len()).expect("corpus exceeds u32 entries");
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(corpus.len() * 8);
        let mut keys = Vec::new();
        for (i, h) in corpus.iter().enumerate() {
            let i = i as u32;
            feature_keys(h, &mut keys);
            pairs.extend(keys.iter().map(|&key| (key, i)));
            pairs.push((exact_key(h), i));
        }
        // Sort + dedup groups each key's entry ids ascending (an entry
        // repeating a gram — that is what runs are — files once).
        pairs.sort_unstable();
        pairs.dedup();

        let mut index = Self {
            keys: Vec::new(),
            starts: Vec::new(),
            postings: Vec::with_capacity(pairs.len()),
            entries,
        };
        for (key, entry) in pairs {
            if index.keys.last() != Some(&key) {
                index.keys.push(key);
                index.starts.push(index.postings.len() as u32);
            }
            index.postings.push(entry);
        }
        index.starts.push(index.postings.len() as u32);
        index
    }

    /// Entries indexed.
    pub fn len(&self) -> usize {
        self.entries as usize
    }

    /// True when the index covers no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Distinct posting keys held (an index-size diagnostic).
    pub fn gram_keys(&self) -> usize {
        self.keys.len()
    }

    /// Ascending ids of every entry that could score above 0 against
    /// `baseline` — a superset, pruned without any edit-distance work.
    ///
    /// A candidate pair must share a gram at a common effective block
    /// size. `baseline.sig1` chunks at `block_size` and `sig2` at
    /// double it, so probing those two key families covers all three
    /// comparable block-size relations (equal, half, double); the exact
    /// map covers the identity rule.
    pub fn candidates(&self, baseline: &FuzzyHash) -> Vec<u32> {
        let mut keys = Vec::new();
        feature_keys(baseline, &mut keys);
        keys.push(exact_key(baseline));
        keys.sort_unstable();
        keys.dedup();
        let mut out: Vec<u32> = Vec::new();
        for key in keys {
            if let Ok(pos) = self.keys.binary_search(&key) {
                let (lo, hi) = (self.starts[pos] as usize, self.starts[pos + 1] as usize);
                out.extend_from_slice(&self.postings[lo..hi]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Exactly [`similarity_search`]'s hits — same scores, same order —
    /// scoring only the candidate set (or falling back to the parallel
    /// full scan when the candidates are no real pruning; either path
    /// returns identical results).
    ///
    /// `corpus` must be the slice the index was built over.
    pub fn search(
        &self,
        corpus: &[FuzzyHash],
        baseline: &FuzzyHash,
        min_score: u32,
    ) -> Vec<SearchHit> {
        self.search_counted(corpus, baseline, min_score).0
    }

    /// [`search`](Self::search), also reporting whether the index gave
    /// up on pruning and fell back to the parallel full scan — the
    /// telemetry signal that a corpus has grown too gram-dense for the
    /// index to pay for itself.
    pub fn search_counted(
        &self,
        corpus: &[FuzzyHash],
        baseline: &FuzzyHash,
        min_score: u32,
    ) -> (Vec<SearchHit>, bool) {
        assert_eq!(
            corpus.len(),
            self.len(),
            "index was built over a different corpus"
        );
        let candidates = self.candidates(baseline);
        if candidates.len() * FULL_SCAN_FRACTION >= corpus.len() {
            return (similarity_search(baseline, corpus, min_score), true);
        }
        let mut hits: Vec<SearchHit> = candidates
            .into_iter()
            .filter_map(|i| {
                let index = i as usize;
                let score = compare_parsed(baseline, &corpus[index]);
                (score >= min_score && score > 0).then_some(SearchHit { index, score })
            })
            .collect();
        // Candidates are scored in ascending id order, so the stable
        // sort reproduces the scan's (score desc, index asc) order.
        hits.sort_by_key(|hit| std::cmp::Reverse(hit.score));
        (hits, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzy_hash;

    fn family_corpus() -> Vec<FuzzyHash> {
        let base: Vec<u8> = (0..10_000u32).map(|i| (i * 17 % 251) as u8).collect();
        let mut out = vec![fuzzy_hash(&base)];
        for k in 1..4u8 {
            let mut v = base.clone();
            for b in v.iter_mut().skip(1000 * k as usize).take(40) {
                *b ^= k;
            }
            out.push(fuzzy_hash(&v));
        }
        for seed in [7u32, 8, 9] {
            let unrelated: Vec<u8> = (0..10_000u32)
                .map(|i| ((i * 31 + seed * 1013) % 247) as u8)
                .collect();
            out.push(fuzzy_hash(&unrelated));
        }
        out
    }

    #[test]
    fn indexed_search_equals_linear_scan() {
        let corpus = family_corpus();
        let index = FuzzyIndex::build(&corpus);
        for baseline in &corpus {
            for min_score in [0, 1, 50, 90, 101] {
                assert_eq!(
                    index.search(&corpus, baseline, min_score),
                    similarity_search(baseline, &corpus, min_score),
                    "baseline {baseline} min_score {min_score}"
                );
            }
        }
    }

    #[test]
    fn candidates_cover_every_scoring_entry() {
        let corpus = family_corpus();
        let index = FuzzyIndex::build(&corpus);
        for baseline in &corpus {
            let candidates = index.candidates(baseline);
            for (i, h) in corpus.iter().enumerate() {
                if compare_parsed(baseline, h) > 0 {
                    assert!(
                        candidates.binary_search(&(i as u32)).is_ok(),
                        "entry {i} scores but is not a candidate"
                    );
                }
            }
        }
    }

    #[test]
    fn identity_rule_found_without_grams() {
        // Signatures too short for any 7-gram can only match by
        // identity; the exact map must surface them.
        let short = FuzzyHash::parse("3:abc:de").unwrap();
        let other = FuzzyHash::parse("3:xyz:uv").unwrap();
        let corpus = vec![other, short.clone()];
        let index = FuzzyIndex::build(&corpus);
        let hits = index.search(&corpus, &short, 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[0].score, 100);
    }

    #[test]
    fn empty_corpus_and_empty_signatures() {
        let index = FuzzyIndex::build(&[]);
        assert!(index.is_empty());
        let probe = FuzzyHash::parse("3:ABCDEFGH:").unwrap();
        assert!(index.search(&[], &probe, 0).is_empty());

        let blank = FuzzyHash::parse("3::").unwrap();
        let corpus = vec![blank.clone()];
        let index = FuzzyIndex::build(&corpus);
        // Two blank hashes score 0 (the identity rule requires a
        // non-empty sig1), exactly as the scan says.
        assert_eq!(
            index.search(&corpus, &blank, 0),
            similarity_search(&blank, &corpus, 0)
        );
    }

    #[test]
    fn run_collapsed_grams_still_match() {
        // Long runs collapse before gram extraction on both sides, so a
        // low-entropy pair must still be a candidate of each other.
        let a = FuzzyHash::parse("96:0000000000000516RSTUVWX:000").unwrap();
        let b = FuzzyHash::parse("96:000516RSTUVWXnnnnnnnn:111").unwrap();
        let corpus = vec![b.clone()];
        let index = FuzzyIndex::build(&corpus);
        assert_eq!(
            index.search(&corpus, &a, 0),
            similarity_search(&a, &corpus, 0)
        );
        assert_eq!(index.candidates(&a), vec![0]);
    }
}
