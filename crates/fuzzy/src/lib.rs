//! # siren-fuzzy — SSDeep-style context-triggered piecewise hashing (CTPH)
//!
//! This crate implements the fuzzy-hashing core of the SIREN paper: the
//! spamsum/SSDeep algorithm of Kornblum ("Identifying almost identical
//! files using context triggered piecewise hashing", Digital Investigation
//! 3, 2006), plus the similarity comparison that converts two fuzzy hashes
//! into a 0–100 score.
//!
//! ## How CTPH works
//!
//! A 7-byte **rolling hash** slides over the input. Whenever the rolling
//! state is congruent to `block_size - 1` modulo the block size, the input
//! is "cut" at a content-defined boundary and the FNV-style **piecewise
//! hash** accumulated since the previous cut is emitted as a single base64
//! character. The concatenation of those characters (at most 64) is the
//! signature for that block size; a second signature at double the block
//! size (at most 32 chars) is kept so that hashes of files that straddle a
//! block-size doubling remain comparable. The result is rendered as
//! `block_size:sig1:sig2`.
//!
//! Because boundaries are chosen by *content*, inserting or deleting bytes
//! only perturbs the characters near the edit — unlike cryptographic
//! hashing where any edit flips the whole digest (the "avalanche effect"
//! the paper contrasts against).
//!
//! ## Comparison
//!
//! [`compare`] scores two fuzzy hashes 0–100 using a weighted
//! Damerau–Levenshtein distance over the signature strings, gated by a
//! common 7-gram requirement, exactly as described in §2.1 of the paper.
//! That same gate powers [`FuzzyIndex`] (the `index` module): an
//! inverted 7-gram index that prunes similarity-search candidates to
//! the entries that could possibly score above 0, with a guaranteed-
//! identical-results fallback to the full scan.
//!
//! ## Two implementations, one semantics
//!
//! * [`fuzzy_hash_reference`] — the two-pass "recompute at half block size"
//!   algorithm exactly as published in the spamsum paper; simple, obviously
//!   correct, and used as the test oracle.
//! * [`FuzzyHasher`] — a single-pass streaming engine that maintains all 31
//!   block-size contexts simultaneously (the approach of `fuzzy.c` in
//!   ssdeep). Property tests assert byte-for-byte agreement with the
//!   reference on arbitrary inputs.
//!
//! Note: agreement with the *reference C ssdeep binary* is not asserted
//! anywhere (no vectors available offline); the two independent in-repo
//! implementations and the invariant suite stand in for that. The edit
//! distance uses the original spamsum weights (insert/delete 1,
//! substitute 3, transpose 5), matching the paper's description of
//! Damerau–Levenshtein comparison.

pub mod batch;
pub mod compare;
pub mod generate;
pub mod index;
pub mod roll;

pub use batch::{compare_many, compare_matrix, similarity_search, SearchHit};
pub use compare::{compare, compare_parsed, score_strings};
pub use generate::{fuzzy_hash, fuzzy_hash_reference, FuzzyHasher};
pub use index::FuzzyIndex;
pub use roll::RollingHash;

/// Maximum signature length (characters) for the primary block size.
pub const SPAMSUM_LENGTH: usize = 64;
/// Smallest block size the algorithm will use.
pub const MIN_BLOCKSIZE: u32 = 3;
/// Rolling-hash window width in bytes.
pub const ROLLING_WINDOW: usize = 7;
/// Initial state of the piecewise FNV hash (spamsum's `HASH_INIT`).
pub const HASH_INIT: u32 = 0x2802_1967;
/// Number of simultaneously maintained block-size contexts (3 · 2^i).
pub const NUM_BLOCKHASHES: usize = 31;

/// A parsed fuzzy hash: `block_size:sig1:sig2`.
///
/// `sig1` is the signature at `block_size` (≤ 64 chars), `sig2` at
/// `2 × block_size` (≤ 32 chars). Comparable only against hashes whose
/// block size is equal, half, or double.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuzzyHash {
    /// Content-defined chunking block size (3 · 2^i).
    pub block_size: u32,
    /// Signature at `block_size`.
    pub sig1: String,
    /// Signature at `2 × block_size`.
    pub sig2: String,
}

/// Errors from parsing a textual fuzzy hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Not exactly three `:`-separated fields.
    FieldCount,
    /// Block size field is not a positive integer.
    BlockSize,
    /// Block size is not of the form `3 · 2^i`.
    BlockSizeSeries,
    /// Signature contains a character outside the base64 alphabet.
    Alphabet,
    /// Signature longer than the spec allows.
    TooLong,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ParseError::FieldCount => "expected block_size:sig1:sig2",
            ParseError::BlockSize => "block size is not a positive integer",
            ParseError::BlockSizeSeries => "block size is not 3*2^i",
            ParseError::Alphabet => "signature contains non-base64 character",
            ParseError::TooLong => "signature exceeds maximum length",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParseError {}

impl FuzzyHash {
    /// Parse `block_size:sig1:sig2`.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        let mut parts = s.splitn(3, ':');
        let bs = parts.next().ok_or(ParseError::FieldCount)?;
        let sig1 = parts.next().ok_or(ParseError::FieldCount)?;
        let sig2 = parts.next().ok_or(ParseError::FieldCount)?;

        let block_size: u32 = bs.parse().map_err(|_| ParseError::BlockSize)?;
        if block_size == 0 {
            return Err(ParseError::BlockSize);
        }
        if !is_valid_block_size(block_size) {
            return Err(ParseError::BlockSizeSeries);
        }
        if sig1.len() > SPAMSUM_LENGTH || sig2.len() > SPAMSUM_LENGTH / 2 {
            return Err(ParseError::TooLong);
        }
        let ok = |s: &str| s.bytes().all(|b| siren_hash::BASE64_ALPHABET.contains(&b));
        if !ok(sig1) || !ok(sig2) {
            return Err(ParseError::Alphabet);
        }
        Ok(Self {
            block_size,
            sig1: sig1.to_string(),
            sig2: sig2.to_string(),
        })
    }

    /// Render back to `block_size:sig1:sig2`.
    pub fn to_string_repr(&self) -> String {
        format!("{}:{}:{}", self.block_size, self.sig1, self.sig2)
    }

    /// Similarity (0–100) against another hash. Convenience wrapper around
    /// [`compare_parsed`].
    pub fn similarity(&self, other: &FuzzyHash) -> u32 {
        compare_parsed(self, other)
    }
}

impl std::fmt::Display for FuzzyHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.block_size, self.sig1, self.sig2)
    }
}

impl std::str::FromStr for FuzzyHash {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Is `bs` a member of the `3 · 2^i` series?
pub fn is_valid_block_size(bs: u32) -> bool {
    let mut v = MIN_BLOCKSIZE;
    loop {
        if v == bs {
            return true;
        }
        match v.checked_mul(2) {
            Some(next) if next <= bs => v = next,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let h = FuzzyHash::parse("3:ABC:de").unwrap();
        assert_eq!(h.block_size, 3);
        assert_eq!(h.sig1, "ABC");
        assert_eq!(h.sig2, "de");
        assert_eq!(h.to_string_repr(), "3:ABC:de");
        assert_eq!(format!("{h}"), "3:ABC:de");
    }

    #[test]
    fn parse_empty_signatures() {
        let h = FuzzyHash::parse("3::").unwrap();
        assert!(h.sig1.is_empty());
        assert!(h.sig2.is_empty());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(FuzzyHash::parse("3:ABC"), Err(ParseError::FieldCount));
        assert_eq!(FuzzyHash::parse("x:A:B"), Err(ParseError::BlockSize));
        assert_eq!(FuzzyHash::parse("0:A:B"), Err(ParseError::BlockSize));
        assert_eq!(FuzzyHash::parse("5:A:B"), Err(ParseError::BlockSizeSeries));
        assert_eq!(FuzzyHash::parse("3:A B:C"), Err(ParseError::Alphabet));
        assert_eq!(
            FuzzyHash::parse(&format!("3:{}:", "A".repeat(65))),
            Err(ParseError::TooLong)
        );
        assert_eq!(
            FuzzyHash::parse(&format!("3::{}", "A".repeat(33))),
            Err(ParseError::TooLong)
        );
    }

    #[test]
    fn block_size_series() {
        for bs in [3u32, 6, 12, 24, 48, 96, 192, 384, 768, 1536, 3072] {
            assert!(is_valid_block_size(bs), "{bs}");
        }
        for bs in [1u32, 2, 4, 5, 7, 9, 13, 100] {
            assert!(!is_valid_block_size(bs), "{bs}");
        }
    }

    #[test]
    fn from_str_impl() {
        let h: FuzzyHash = "6:abc:XY".parse().unwrap();
        assert_eq!(h.block_size, 6);
    }
}
