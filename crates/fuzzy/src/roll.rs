//! The spamsum rolling hash.
//!
//! A cheap hash over a sliding 7-byte window, designed so that its value
//! depends *only* on the last [`ROLLING_WINDOW`](crate::ROLLING_WINDOW)
//! bytes. This is what makes chunk boundaries content-defined: the same
//! 7 bytes always produce the same boundary decision regardless of where
//! they appear in the file, so an insertion far away cannot shift every
//! subsequent boundary.

use crate::ROLLING_WINDOW;

/// Rolling hash state (spamsum's `roll_state`).
///
/// `h1` is the sum of window bytes, `h2` a position-weighted sum, and `h3`
/// a shift/xor mixer; the hash is their wrapping sum.
#[derive(Debug, Clone, Default)]
pub struct RollingHash {
    window: [u8; ROLLING_WINDOW],
    h1: u32,
    h2: u32,
    h3: u32,
    n: usize,
}

impl RollingHash {
    /// Fresh state (empty window).
    pub fn new() -> Self {
        Self::default()
    }

    /// Slide one byte into the window and return the updated hash.
    #[inline]
    pub fn update(&mut self, c: u8) -> u32 {
        let c32 = u32::from(c);
        self.h2 = self.h2.wrapping_sub(self.h1);
        self.h2 = self.h2.wrapping_add(ROLLING_WINDOW as u32 * c32);

        self.h1 = self.h1.wrapping_add(c32);
        self.h1 = self
            .h1
            .wrapping_sub(u32::from(self.window[self.n % ROLLING_WINDOW]));

        self.window[self.n % ROLLING_WINDOW] = c;
        self.n += 1;

        self.h3 <<= 5;
        self.h3 ^= c32;

        self.sum()
    }

    /// Current hash value.
    #[inline]
    pub fn sum(&self) -> u32 {
        self.h1.wrapping_add(self.h2).wrapping_add(self.h3)
    }

    /// Number of bytes consumed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if no bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_is_zero() {
        assert_eq!(RollingHash::new().sum(), 0);
        assert!(RollingHash::new().is_empty());
    }

    #[test]
    fn depends_only_on_window() {
        // After >= 7 bytes, the hash must be a function of the last 7 only
        // (h3 is a 32-bit shift register: 5 bits x 7 = 35 > 32, so older
        // bytes are fully shifted out).
        let tail = b"ABCDEFG";
        let mut a = RollingHash::new();
        for &c in b"xxxxxxxxxxxx" {
            a.update(c);
        }
        for &c in tail {
            a.update(c);
        }

        let mut b = RollingHash::new();
        for &c in b"completely different prefix material" {
            b.update(c);
        }
        for &c in tail {
            b.update(c);
        }
        assert_eq!(a.sum(), b.sum());
    }

    #[test]
    fn short_inputs_differ_from_empty() {
        let mut r = RollingHash::new();
        r.update(b'a');
        assert_ne!(r.sum(), 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn order_sensitive() {
        let mut a = RollingHash::new();
        let mut b = RollingHash::new();
        for &c in b"abcdefg" {
            a.update(c);
        }
        for &c in b"gfedcba" {
            b.update(c);
        }
        assert_ne!(a.sum(), b.sum());
    }

    #[test]
    fn update_returns_current_sum() {
        let mut r = RollingHash::new();
        for &c in b"stream" {
            let ret = r.update(c);
            assert_eq!(ret, r.sum());
        }
    }
}
