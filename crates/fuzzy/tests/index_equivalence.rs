//! The indexed-search contract: on ANY corpus, `FuzzyIndex::search`
//! returns byte-for-byte the hits of the linear `similarity_search`
//! scan — same entries, same scores, same order. Corpora are fuzzed
//! across the degenerate shapes that stress the gram extraction: empty
//! signatures, signatures shorter than one gram, long runs that the
//! comparison collapses before its substring gate, mixed block sizes
//! (equal / half / double / incomparable), and duplicated hashes (the
//! identity rule).

use proptest::test_runner::{rng_for, TestRng};
use siren_fuzzy::{similarity_search, FuzzyHash, FuzzyIndex};

/// Base64 alphabet biased toward a handful of characters so that runs
/// and shared substrings actually occur.
fn arb_sig(rng: &mut TestRng, max_len: usize) -> String {
    const BIASED: &[u8] = b"AAAABBBCCzyx0123+/QRSTUVWXYZabcdef";
    let len = rng.below(max_len as u64 + 1) as usize;
    let mut s = String::with_capacity(len);
    while s.len() < len {
        // Occasionally emit a run, the shape `eliminate_sequences` eats.
        let c = BIASED[rng.below(BIASED.len() as u64) as usize] as char;
        let repeat = if rng.below(4) == 0 {
            (rng.below(6) + 1) as usize
        } else {
            1
        };
        for _ in 0..repeat.min(len - s.len()) {
            s.push(c);
        }
    }
    s
}

fn arb_hash(rng: &mut TestRng) -> FuzzyHash {
    const BLOCK_SIZES: &[u32] = &[3, 6, 12, 24, 48, 96, 192];
    let block_size = BLOCK_SIZES[rng.below(BLOCK_SIZES.len() as u64) as usize];
    FuzzyHash::parse(&format!(
        "{block_size}:{}:{}",
        arb_sig(rng, 64),
        arb_sig(rng, 32)
    ))
    .expect("generated hash is parseable")
}

fn arb_corpus(rng: &mut TestRng, max_len: usize) -> Vec<FuzzyHash> {
    let len = rng.below(max_len as u64 + 1) as usize;
    let mut corpus: Vec<FuzzyHash> = Vec::with_capacity(len);
    for _ in 0..len {
        // Sometimes duplicate an earlier entry verbatim: identical
        // hashes score 100 through the identity rule even when their
        // signatures are too short for the substring gate.
        if !corpus.is_empty() && rng.below(5) == 0 {
            let i = rng.below(corpus.len() as u64) as usize;
            corpus.push(corpus[i].clone());
        } else {
            corpus.push(arb_hash(rng));
        }
    }
    corpus
}

#[test]
fn indexed_search_equals_linear_scan_on_random_corpora() {
    let mut rng = rng_for("fuzzy-index-equivalence");
    for case in 0..150 {
        let corpus = arb_corpus(&mut rng, 60);
        let index = FuzzyIndex::build(&corpus);
        // Probe with members (guaranteed identity hits) and strangers.
        let mut probes: Vec<FuzzyHash> = (0..4).map(|_| arb_hash(&mut rng)).collect();
        for _ in 0..4 {
            if !corpus.is_empty() {
                probes.push(corpus[rng.below(corpus.len() as u64) as usize].clone());
            }
        }
        for baseline in &probes {
            for min_score in [0u32, 1, 40, 80, 100] {
                let indexed = index.search(&corpus, baseline, min_score);
                let scanned = similarity_search(baseline, &corpus, min_score);
                assert_eq!(
                    indexed, scanned,
                    "case {case}: baseline {baseline} min_score {min_score} corpus {corpus:?}"
                );
            }
        }
    }
}

#[test]
fn candidates_are_a_superset_of_scoring_entries() {
    let mut rng = rng_for("fuzzy-index-superset");
    for case in 0..100 {
        let corpus = arb_corpus(&mut rng, 40);
        let index = FuzzyIndex::build(&corpus);
        let baseline = if corpus.is_empty() || rng.below(2) == 0 {
            arb_hash(&mut rng)
        } else {
            corpus[rng.below(corpus.len() as u64) as usize].clone()
        };
        let candidates = index.candidates(&baseline);
        for (i, h) in corpus.iter().enumerate() {
            if siren_fuzzy::compare_parsed(&baseline, h) > 0 {
                assert!(
                    candidates.binary_search(&(i as u32)).is_ok(),
                    "case {case}: entry {i} ({h}) scores against {baseline} but was pruned"
                );
            }
        }
    }
}
