//! Text encodings: lowercase hex and the base64 alphabet used by SSDeep.
//!
//! SSDeep emits each chunk hash as a single character of the *standard*
//! base64 alphabet (`A-Za-z0-9+/`); the fuzzy crate indexes into
//! [`BASE64_ALPHABET`] with `hash % 64`. Hex is used for record keys
//! (executable hashes, `FILE_H` columns) throughout the pipeline.

/// The standard base64 alphabet, in SSDeep's indexing order.
pub const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Render bytes as lowercase hex.
pub fn to_hex(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0F) as usize] as char);
    }
    out
}

/// Parse lowercase/uppercase hex back into bytes. Returns `None` on odd
/// length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = hex_val(pair[0])?;
        let lo = hex_val(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Some(out)
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Standard base64 encoding (no padding variants needed by SIREN, so
/// padding with `=` is always applied).
pub fn to_base64(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(BASE64_ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(triple >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(triple >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            BASE64_ALPHABET[triple as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = [0u8, 1, 15, 16, 127, 128, 255];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn hex_known() {
        assert_eq!(to_hex(&[0xde, 0xad, 0xbe, 0xef]), "deadbeef");
        assert_eq!(from_hex("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(from_hex("abc").is_none()); // odd length
        assert!(from_hex("zz").is_none()); // non-hex
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(to_base64(b""), "");
        assert_eq!(to_base64(b"f"), "Zg==");
        assert_eq!(to_base64(b"fo"), "Zm8=");
        assert_eq!(to_base64(b"foo"), "Zm9v");
        assert_eq!(to_base64(b"foob"), "Zm9vYg==");
        assert_eq!(to_base64(b"fooba"), "Zm9vYmE=");
        assert_eq!(to_base64(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn alphabet_is_64_unique_chars() {
        let mut seen = std::collections::HashSet::new();
        for &c in BASE64_ALPHABET.iter() {
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), 64);
    }
}
