//! FNV-1a — the Fowler–Noll–Vo hash, 32- and 64-bit variants.
//!
//! SSDeep's context-triggered piecewise hashing uses an FNV-style
//! multiply-xor step as its piecewise (chunk) hash; `siren-fuzzy` builds on
//! [`Fnv32`]. The 64-bit variant is used for cheap in-memory keys.

/// FNV-1a 32-bit offset basis.
pub const FNV32_OFFSET: u32 = 0x811C_9DC5;
/// FNV-1a 32-bit prime.
pub const FNV32_PRIME: u32 = 0x0100_0193;
/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One-shot FNV-1a/32 over `data`.
pub fn fnv1a32(data: &[u8]) -> u32 {
    let mut h = Fnv32::new();
    h.update(data);
    h.digest()
}

/// One-shot FNV-1a/64 over `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(data);
    h.digest()
}

/// Streaming FNV-1a/32.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv32 {
    state: u32,
}

impl Default for Fnv32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv32 {
    /// Start from the standard offset basis.
    pub const fn new() -> Self {
        Self {
            state: FNV32_OFFSET,
        }
    }

    /// Start from an arbitrary state (SSDeep seeds its piecewise hash with
    /// a non-standard constant; see `siren-fuzzy`).
    pub const fn with_state(state: u32) -> Self {
        Self { state }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut h = self.state;
        for &b in data {
            h ^= u32::from(b);
            h = h.wrapping_mul(FNV32_PRIME);
        }
        self.state = h;
    }

    /// Absorb a single byte (hot path for the fuzzy hasher).
    #[inline]
    pub fn update_byte(&mut self, b: u8) {
        self.state ^= u32::from(b);
        self.state = self.state.wrapping_mul(FNV32_PRIME);
    }

    /// Current state as digest.
    pub const fn digest(&self) -> u32 {
        self.state
    }
}

/// Streaming FNV-1a/64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Start from the standard offset basis.
    pub const fn new() -> Self {
        Self {
            state: FNV64_OFFSET,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut h = self.state;
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV64_PRIME);
        }
        self.state = h;
    }

    /// Current state as digest.
    pub const fn digest(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Canonical FNV-1a test vectors (from the FNV reference material).
    #[test]
    fn fnv32_known_vectors() {
        assert_eq!(fnv1a32(b""), 0x811C_9DC5);
        assert_eq!(fnv1a32(b"a"), 0xE40C_292C);
        assert_eq!(fnv1a32(b"foobar"), 0xBF9C_F968);
    }

    #[test]
    fn fnv64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn streaming_equivalence() {
        let mut h = Fnv32::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv1a32(b"foobar"));

        let mut h = Fnv64::new();
        for &b in b"foobar" {
            h.update(&[b]);
        }
        assert_eq!(h.digest(), fnv1a64(b"foobar"));
    }

    #[test]
    fn byte_update_matches_slice_update() {
        let mut a = Fnv32::with_state(0x2802_1967);
        let mut b = Fnv32::with_state(0x2802_1967);
        for &byte in b"chunk content" {
            a.update_byte(byte);
        }
        b.update(b"chunk content");
        assert_eq!(a.digest(), b.digest());
    }
}
