//! # siren-hash — fast non-cryptographic and baseline cryptographic hashing
//!
//! The SIREN paper uses three distinct kinds of hashing and this crate
//! provides all of them from scratch (no external hashing dependencies):
//!
//! * [`xxh64`] / [`Xxh64`] — the XXH64 algorithm, used as a fast
//!   non-cryptographic hash. The paper's `siren.so` hashes the path of
//!   `/proc/self/exe` with `XXH3_128bits` purely to disambiguate PID
//!   collisions in the database; [`xxh3_128`] plays that role here.
//! * [`xxh3_128`] / [`Xxh3_128`] — a 128-bit hash following the XXH3
//!   construction (stripe accumulation over a pseudo-random secret with
//!   wide multiplies). Cross-compatibility with the reference C
//!   implementation is **not** guaranteed (no official vectors were
//!   available offline); SIREN only requires determinism and dispersion,
//!   both of which are tested.
//! * [`sha1`] — SHA-1, implemented for the XALT-style *baseline*: XALT
//!   identifies executables by a cryptographic hash, which recognizes only
//!   byte-identical files. The ablation experiments contrast this with
//!   fuzzy hashing.
//! * [`fnv1a32`] / [`fnv1a64`] — FNV-1a, the piecewise hash family that
//!   SSDeep's CTPH builds on (see the `siren-fuzzy` crate).
//!
//! Encoding helpers ([`hex`], [`base64`]) are also provided since fuzzy
//! hashes and record keys are exchanged as text over the wire protocol.

pub mod encode;
pub mod fnv;
pub mod sha1;
pub mod xxh3;
pub mod xxh64;

pub use encode::{from_hex, to_base64, to_hex, BASE64_ALPHABET};
pub use fnv::{fnv1a32, fnv1a64, Fnv32, Fnv64};
pub use sha1::{sha1, sha1_hex, Sha1};
pub use xxh3::{xxh3_128, xxh3_128_hex, Xxh3_128};
pub use xxh64::{xxh64, Xxh64};

/// A 128-bit hash value, as produced by [`xxh3_128`].
///
/// Stored as two 64-bit words (`high`, `low`) to keep the type `Copy` and
/// trivially comparable; the canonical text form is 32 lowercase hex
/// digits, high word first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hash128 {
    /// Most-significant 64 bits.
    pub high: u64,
    /// Least-significant 64 bits.
    pub low: u64,
}

impl Hash128 {
    /// Construct from the two 64-bit halves.
    pub const fn new(high: u64, low: u64) -> Self {
        Self { high, low }
    }

    /// Render as 32 lowercase hex digits (high word first).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.high, self.low)
    }

    /// Parse the canonical 32-hex-digit form produced by [`Hash128::to_hex`].
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let high = u64::from_str_radix(&s[..16], 16).ok()?;
        let low = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self { high, low })
    }

    /// Collapse to 64 bits (xor-fold), useful for hash-table keys.
    pub fn fold64(self) -> u64 {
        self.high ^ self.low
    }
}

impl std::fmt::Display for Hash128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.high, self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash128_hex_round_trip() {
        let h = Hash128::new(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        let s = h.to_hex();
        assert_eq!(s.len(), 32);
        assert_eq!(Hash128::from_hex(&s), Some(h));
    }

    #[test]
    fn hash128_from_hex_rejects_garbage() {
        assert_eq!(Hash128::from_hex(""), None);
        assert_eq!(Hash128::from_hex("zz"), None);
        assert_eq!(Hash128::from_hex(&"g".repeat(32)), None);
        assert_eq!(Hash128::from_hex(&"0".repeat(31)), None);
        assert_eq!(Hash128::from_hex(&"0".repeat(33)), None);
    }

    #[test]
    fn hash128_display_matches_to_hex() {
        let h = Hash128::new(7, 9);
        assert_eq!(format!("{h}"), h.to_hex());
    }

    #[test]
    fn hash128_fold_is_xor() {
        let h = Hash128::new(0xff00, 0x00ff);
        assert_eq!(h.fold64(), 0xffff);
    }
}
