//! SHA-1 — implemented for the XALT-style identification **baseline**.
//!
//! XALT (the closest related framework discussed in §5 of the paper)
//! identifies executables by a `sha1` hash: byte-identical files match,
//! anything else does not. SIREN's contribution is to replace that brittle
//! exact matching with similarity-preserving fuzzy hashing; the ablation
//! experiments need the exact-hash baseline to quantify the difference.
//!
//! SHA-1 is cryptographically broken for collision resistance; it is used
//! here only as a file-identity fingerprint, mirroring XALT.

const H0: [u32; 5] = [
    0x6745_2301,
    0xEFCD_AB89,
    0x98BA_DCFE,
    0x1032_5476,
    0xC3D2_E1F0,
];

/// One-shot SHA-1, returning the 20-byte digest.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.digest()
}

/// One-shot SHA-1 rendered as 40 lowercase hex digits.
pub fn sha1_hex(data: &[u8]) -> String {
    crate::encode::to_hex(&sha1(data))
}

/// Streaming SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut tmp = [0u8; 64];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            data = rest;
        }

        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }

    /// Finish (non-destructively) and return the 20-byte digest.
    pub fn digest(&self) -> [u8; 20] {
        let mut clone = self.clone();
        let bit_len = clone.total_len.wrapping_mul(8);
        clone.update_padding();
        // update_padding already appended the 0x80 + zeros; now the length.
        let mut block = clone.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        clone.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in clone.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Pad with 0x80 then zeros so that exactly 8 bytes remain in the final
    /// block for the 64-bit length.
    fn update_padding(&mut self) {
        let mut pad = [0u8; 64];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        // Feed padding through `update` but without counting it in total_len.
        let saved = self.total_len;
        self.update(&pad[..pad_len]);
        self.total_len = saved;
        debug_assert_eq!(self.buf_len, 56);
    }

    /// Digest as 40 hex chars.
    pub fn digest_hex(&self) -> String {
        crate::encode::to_hex(&self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vector() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..200u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.digest(), sha1(&data), "split {split}");
        }
    }

    #[test]
    fn digest_is_idempotent() {
        let mut h = Sha1::new();
        h.update(b"idempotent");
        let a = h.digest();
        let b = h.digest();
        assert_eq!(a, b);
        // And can keep updating after digest.
        h.update(b" more");
        assert_eq!(h.digest(), sha1(b"idempotent more"));
    }

    #[test]
    fn length_boundary_cases() {
        // Padding edge cases: lengths around the 55/56-byte boundary.
        let mut digests = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![b'x'; len];
            assert!(digests.insert(sha1(&data)), "collision at len {len}");
        }
    }
}
