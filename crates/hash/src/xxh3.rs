//! XXH3-128 — a 128-bit hash following the XXH3 construction.
//!
//! The paper's `siren.so` calls `XXH3_128bits` on the executable path to
//! build a per-process disambiguation key (the `HASH` field of the UDP
//! header). SIREN never compares this value against external databases, so
//! what matters is determinism, speed, and dispersion — not bit-for-bit
//! compatibility with the reference C implementation.
//!
//! This implementation follows the XXH3 *construction*: input is processed
//! in 64-byte stripes, each stripe mixed against a 192-byte secret with
//! 32→64-bit wide multiplies accumulated into eight 64-bit lanes, with a
//! scramble step every 8 stripes and distinct short-input paths. The
//! default secret is derived deterministically from XXH64 (the reference
//! secret bytes were not available offline); this deviation is recorded in
//! `DESIGN.md`.

use crate::xxh64::xxh64;
use crate::Hash128;

const SECRET_LEN: usize = 192;
const STRIPE_LEN: usize = 64;
const ACC_NB: usize = 8;
const SECRET_CONSUME_RATE: usize = 8;
const P32_1: u64 = 0x9E37_79B1;
const P32_2: u64 = 0x85EB_CA77;
const P32_3: u64 = 0xC2B2_AE3D;
const P64_1: u64 = 0x9E37_79B1_85EB_CA87;
const P64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P64_3: u64 = 0x1656_67B1_9E37_79F9;

/// The crate's default 192-byte secret, generated once, deterministically.
fn default_secret() -> [u8; SECRET_LEN] {
    let mut secret = [0u8; SECRET_LEN];
    let mut i = 0;
    while i < SECRET_LEN {
        let word = xxh64(b"siren-xxh3-secret", (i / 8) as u64 + 0xA5A5);
        secret[i..i + 8].copy_from_slice(&word.to_le_bytes());
        i += 8;
    }
    secret
}

#[inline]
fn read_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}

/// Full 64x64→128-bit multiply, folded to 64 bits by xor of halves.
#[inline]
fn mul128_fold64(a: u64, b: u64) -> u64 {
    let product = u128::from(a) * u128::from(b);
    (product as u64) ^ ((product >> 64) as u64)
}

#[inline]
fn xxh3_avalanche(mut h: u64) -> u64 {
    h ^= h >> 37;
    h = h.wrapping_mul(0x1656_6791_9E37_79F9);
    h ^= h >> 32;
    h
}

/// One stripe of 64 bytes accumulated into the 8 lanes.
#[inline]
fn accumulate_stripe(acc: &mut [u64; ACC_NB], stripe: &[u8], secret: &[u8], secret_off: usize) {
    for lane in 0..ACC_NB {
        let data_val = read_u64(stripe, lane * 8);
        let key = read_u64(secret, secret_off + lane * 8);
        let data_key = data_val ^ key;
        // Swap-accumulate into the neighbour lane as XXH3 does, to spread
        // entropy across the accumulator array.
        acc[lane ^ 1] = acc[lane ^ 1].wrapping_add(data_val);
        acc[lane] = acc[lane].wrapping_add(u64::from(data_key as u32).wrapping_mul(data_key >> 32));
    }
}

#[inline]
fn scramble_acc(acc: &mut [u64; ACC_NB], secret: &[u8]) {
    let off = SECRET_LEN - STRIPE_LEN;
    for (lane, a) in acc.iter_mut().enumerate() {
        let key = read_u64(secret, off + lane * 8);
        let mut v = *a;
        v ^= v >> 47;
        v ^= key;
        v = v.wrapping_mul(P32_1);
        *a = v;
    }
}

fn merge_accs(acc: &[u64; ACC_NB], secret: &[u8], secret_off: usize, start: u64) -> u64 {
    let mut result = start;
    for i in 0..4 {
        result = result.wrapping_add(mul128_fold64(
            acc[2 * i] ^ read_u64(secret, secret_off + 16 * i),
            acc[2 * i + 1] ^ read_u64(secret, secret_off + 16 * i + 8),
        ));
    }
    xxh3_avalanche(result)
}

fn hash_long_128(data: &[u8], secret: &[u8; SECRET_LEN]) -> Hash128 {
    let mut acc: [u64; ACC_NB] = [P32_3, P64_1, P64_2, P64_3, P32_2, P32_1, P64_2, P32_3];

    let stripes_per_block = (SECRET_LEN - STRIPE_LEN) / SECRET_CONSUME_RATE;
    let total_stripes = data.len() / STRIPE_LEN;

    let mut stripe_idx = 0usize;
    while stripe_idx < total_stripes {
        let in_block = stripe_idx % stripes_per_block;
        let stripe = &data[stripe_idx * STRIPE_LEN..stripe_idx * STRIPE_LEN + STRIPE_LEN];
        accumulate_stripe(&mut acc, stripe, secret, in_block * SECRET_CONSUME_RATE);
        stripe_idx += 1;
        if stripe_idx.is_multiple_of(stripes_per_block) {
            scramble_acc(&mut acc, secret);
        }
    }

    // Final (possibly partial) stripe: XXH3 hashes the *last* 64 bytes.
    if !data.len().is_multiple_of(STRIPE_LEN) && data.len() >= STRIPE_LEN {
        let stripe = &data[data.len() - STRIPE_LEN..];
        accumulate_stripe(&mut acc, stripe, secret, SECRET_LEN - STRIPE_LEN - 9);
    }

    let low = merge_accs(&acc, secret, 11, (data.len() as u64).wrapping_mul(P64_1));
    let high = merge_accs(
        &acc,
        secret,
        SECRET_LEN - 64 - 11,
        !(data.len() as u64).wrapping_mul(P64_2),
    );
    Hash128 { high, low }
}

fn hash_short_128(data: &[u8], secret: &[u8; SECRET_LEN], seed: u64) -> Hash128 {
    let len = data.len() as u64;
    match data.len() {
        0 => {
            let low = xxh3_avalanche(seed ^ read_u64(secret, 56) ^ read_u64(secret, 64));
            let high = xxh3_avalanche(seed ^ read_u64(secret, 72) ^ read_u64(secret, 80));
            Hash128 { high, low }
        }
        1..=3 => {
            let c1 = u64::from(data[0]);
            let c2 = u64::from(data[data.len() >> 1]);
            let c3 = u64::from(data[data.len() - 1]);
            let combined = (c1 << 16) | (c2 << 24) | c3 | (len << 8);
            let low = xxh3_avalanche(
                (combined ^ (u64::from(read_u32(secret, 0)) ^ u64::from(read_u32(secret, 4))))
                    .wrapping_add(seed)
                    .wrapping_mul(P64_1),
            );
            let high = xxh3_avalanche(
                (combined.rotate_left(13)
                    ^ (u64::from(read_u32(secret, 8)) ^ u64::from(read_u32(secret, 12))))
                .wrapping_sub(seed)
                .wrapping_mul(P64_2),
            );
            Hash128 { high, low }
        }
        4..=8 => {
            let lo = u64::from(read_u32(data, 0));
            let hi = u64::from(read_u32(data, data.len() - 4));
            let input64 = lo.wrapping_add(hi << 32);
            let keyed = input64 ^ (read_u64(secret, 16) ^ read_u64(secret, 24)).wrapping_add(seed);
            let mut m = u128::from(keyed).wrapping_mul(u128::from(P64_1.wrapping_add(len << 2)));
            m ^= m >> 35;
            m = m.wrapping_mul(0x9FB2_1C65_1E98_DF25);
            m ^= m >> 28;
            Hash128 {
                high: xxh3_avalanche((m >> 64) as u64),
                low: xxh3_avalanche(m as u64),
            }
        }
        9..=16 => {
            let lo = read_u64(data, 0)
                ^ (read_u64(secret, 32) ^ read_u64(secret, 40)).wrapping_add(seed);
            let hi = read_u64(data, data.len() - 8)
                ^ (read_u64(secret, 48) ^ read_u64(secret, 56)).wrapping_sub(seed);
            let low = xxh3_avalanche(
                mul128_fold64(lo, P64_1)
                    .wrapping_add(hi)
                    .wrapping_add(len.wrapping_mul(P64_2)),
            );
            let high = xxh3_avalanche(mul128_fold64(hi, P64_2).wrapping_add(lo).wrapping_sub(len));
            Hash128 { high, low }
        }
        // 17..=240: overlapping 16-byte windows mixed against successive
        // secret words. Windows step by 16 but the last window is clamped
        // to the final 16 bytes, so every input byte is always covered
        // (including lengths 17..31 where no aligned window would fit).
        _ => {
            let mut acc_lo = len.wrapping_mul(P64_1);
            let mut acc_hi = !len.wrapping_mul(P64_2);
            let windows = data.len().div_ceil(16);
            for i in 0..windows {
                let off = (i * 16).min(data.len() - 16);
                let soff = (i * 16) % 128;
                let mixed = mul128_fold64(
                    read_u64(data, off) ^ read_u64(secret, soff).wrapping_add(seed),
                    read_u64(data, off + 8) ^ read_u64(secret, soff + 8).wrapping_sub(seed),
                );
                if i % 2 == 0 {
                    acc_lo = acc_lo.wrapping_add(mixed);
                    acc_hi ^= mixed.rotate_left(29);
                } else {
                    acc_hi = acc_hi.wrapping_add(mixed);
                    acc_lo ^= mixed.rotate_left(41);
                }
            }
            Hash128 {
                high: xxh3_avalanche(acc_hi.wrapping_add(acc_lo.rotate_left(31))),
                low: xxh3_avalanche(acc_lo.wrapping_add(acc_hi.rotate_left(17))),
            }
        }
    }
}

/// One-shot 128-bit hash (seed 0, default secret).
pub fn xxh3_128(data: &[u8]) -> Hash128 {
    Xxh3_128::new().hash(data)
}

/// One-shot 128-bit hash rendered as 32 hex digits — the textual `HASH`
/// header-field form used by the wire protocol.
pub fn xxh3_128_hex(data: &[u8]) -> String {
    xxh3_128(data).to_hex()
}

/// Reusable XXH3-128 hasher holding a secret (amortizes secret generation).
#[derive(Clone)]
pub struct Xxh3_128 {
    secret: [u8; SECRET_LEN],
    seed: u64,
}

impl Default for Xxh3_128 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Xxh3_128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Xxh3_128")
            .field("seed", &self.seed)
            .finish()
    }
}

impl Xxh3_128 {
    /// Hasher with seed 0 and the default secret.
    pub fn new() -> Self {
        Self {
            secret: default_secret(),
            seed: 0,
        }
    }

    /// Hasher with a custom seed (mixed into the short-input paths and the
    /// secret for the long path).
    pub fn with_seed(seed: u64) -> Self {
        let mut s = Self::new();
        s.seed = seed;
        if seed != 0 {
            // Derive a seeded secret the way XXH3 does: perturb 64-bit
            // halves of the default secret in opposite directions.
            let mut i = 0;
            while i + 16 <= SECRET_LEN {
                let a = read_u64(&s.secret, i).wrapping_add(seed);
                let b = read_u64(&s.secret, i + 8).wrapping_sub(seed);
                s.secret[i..i + 8].copy_from_slice(&a.to_le_bytes());
                s.secret[i + 8..i + 16].copy_from_slice(&b.to_le_bytes());
                i += 16;
            }
        }
        s
    }

    /// Hash a full input buffer.
    pub fn hash(&self, data: &[u8]) -> Hash128 {
        if data.len() <= 240 {
            hash_short_128(data, &self.secret, self.seed)
        } else {
            hash_long_128(data, &self.secret)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let d = b"/usr/bin/bash";
        assert_eq!(xxh3_128(d), xxh3_128(d));
    }

    #[test]
    fn all_short_paths_disperse() {
        // Cover lengths hitting every branch: 0, 1-3, 4-8, 9-16, 17-240.
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let mut seen = HashSet::new();
        for len in 0..=300 {
            assert!(
                seen.insert(xxh3_128(&data[..len])),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn long_path_bit_flip_sensitivity() {
        let mut data = vec![0xABu8; 4096];
        let base = xxh3_128(&data);
        for pos in [0, 63, 64, 1000, 4095] {
            data[pos] ^= 0x01;
            assert_ne!(xxh3_128(&data), base, "flip at {pos} undetected");
            data[pos] ^= 0x01;
        }
        assert_eq!(xxh3_128(&data), base);
    }

    #[test]
    fn seed_changes_output_for_all_size_classes() {
        let a = Xxh3_128::with_seed(1);
        let b = Xxh3_128::with_seed(2);
        for len in [0usize, 3, 8, 16, 100, 241, 5000] {
            let data = vec![7u8; len];
            assert_ne!(a.hash(&data), b.hash(&data), "len {len}");
        }
    }

    #[test]
    fn path_strings_do_not_collide() {
        // The actual SIREN use-case: distinct /proc/self/exe paths must map
        // to distinct HASH header fields.
        let paths = [
            "/usr/bin/bash",
            "/usr/bin/srun",
            "/usr/bin/lua5.3",
            "/usr/bin/rm",
            "/usr/bin/mkdir",
            "/users/u4/project/bin/a.out",
            "/users/u4/project/bin/a.out2",
            "/appl/software/icon/bin/icon",
        ];
        let mut seen = HashSet::new();
        for p in paths {
            assert!(seen.insert(xxh3_128(p.as_bytes())), "collision for {p}");
        }
    }

    #[test]
    fn hex_form_is_32_chars() {
        assert_eq!(xxh3_128_hex(b"x").len(), 32);
    }

    #[test]
    fn avalanche_quality_rough() {
        // Flipping one input bit should flip a substantial number of output
        // bits on average (loose statistical check, deterministic input).
        let base_data = vec![0x5Au8; 512];
        let base = xxh3_128(&base_data);
        let mut total_flipped = 0u32;
        let trials = 64;
        for i in 0..trials {
            let mut d = base_data.clone();
            d[i * 8 % 512] ^= 1 << (i % 8);
            let h = xxh3_128(&d);
            total_flipped += (h.high ^ base.high).count_ones() + (h.low ^ base.low).count_ones();
        }
        let avg = total_flipped as f64 / trials as f64;
        assert!(avg > 40.0, "average flipped bits too low: {avg}");
        assert!(avg < 88.0, "average flipped bits suspiciously high: {avg}");
    }
}
