//! XXH64 — the 64-bit variant of xxHash.
//!
//! Implemented directly from the published algorithm specification
//! (<https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md>).
//! Both a one-shot function ([`xxh64`]) and a streaming hasher ([`Xxh64`])
//! are provided; the streaming form is what the collector uses when hashing
//! large executables without loading them whole.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

/// Hash `data` with seed `seed` in one shot.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let mut h = Xxh64::with_seed(seed);
    h.update(data);
    h.digest()
}

/// Streaming XXH64 hasher.
///
/// ```
/// use siren_hash::Xxh64;
/// let mut h = Xxh64::with_seed(0);
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.digest(), siren_hash::xxh64(b"hello world", 0));
/// ```
#[derive(Debug, Clone)]
pub struct Xxh64 {
    acc: [u64; 4],
    buf: [u8; 32],
    buf_len: usize,
    total_len: u64,
    seed: u64,
}

impl Xxh64 {
    /// Create a hasher with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            acc: [
                seed.wrapping_add(P1).wrapping_add(P2),
                seed.wrapping_add(P2),
                seed,
                seed.wrapping_sub(P1),
            ],
            buf: [0; 32],
            buf_len: 0,
            total_len: 0,
            seed,
        }
    }

    /// Feed more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buf_len > 0 {
            let need = 32 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 32 {
                let stripe = self.buf;
                self.consume_stripe(&stripe);
                self.buf_len = 0;
            }
        }

        while data.len() >= 32 {
            let (stripe, rest) = data.split_at(32);
            let mut tmp = [0u8; 32];
            tmp.copy_from_slice(stripe);
            self.consume_stripe(&tmp);
            data = rest;
        }

        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    #[inline]
    fn consume_stripe(&mut self, stripe: &[u8; 32]) {
        self.acc[0] = round(self.acc[0], read_u64(&stripe[0..]));
        self.acc[1] = round(self.acc[1], read_u64(&stripe[8..]));
        self.acc[2] = round(self.acc[2], read_u64(&stripe[16..]));
        self.acc[3] = round(self.acc[3], read_u64(&stripe[24..]));
    }

    /// Finish and return the 64-bit digest. The hasher may keep being
    /// updated afterwards; `digest` is non-destructive.
    pub fn digest(&self) -> u64 {
        let mut h = if self.total_len >= 32 {
            let [a1, a2, a3, a4] = self.acc;
            let mut h = a1
                .rotate_left(1)
                .wrapping_add(a2.rotate_left(7))
                .wrapping_add(a3.rotate_left(12))
                .wrapping_add(a4.rotate_left(18));
            h = merge_round(h, a1);
            h = merge_round(h, a2);
            h = merge_round(h, a3);
            h = merge_round(h, a4);
            h
        } else {
            self.seed.wrapping_add(P5)
        };

        h = h.wrapping_add(self.total_len);

        let mut tail = &self.buf[..self.buf_len];
        while tail.len() >= 8 {
            h ^= round(0, read_u64(tail));
            h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
            tail = &tail[8..];
        }
        if tail.len() >= 4 {
            h ^= u64::from(read_u32(tail)).wrapping_mul(P1);
            h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
            tail = &tail[4..];
        }
        for &b in tail {
            h ^= u64::from(b).wrapping_mul(P5);
            h = h.rotate_left(11).wrapping_mul(P1);
        }

        avalanche(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_seed_dependent() {
        assert_ne!(xxh64(b"", 0), xxh64(b"", 1));
    }

    #[test]
    fn deterministic() {
        let d = b"the quick brown fox jumps over the lazy dog";
        assert_eq!(xxh64(d, 42), xxh64(d, 42));
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let a = vec![0u8; 1024];
        let mut b = a.clone();
        b[512] ^= 1;
        assert_ne!(xxh64(&a, 0), xxh64(&b, 0));
    }

    #[test]
    fn streaming_matches_oneshot_across_split_points() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let expect = xxh64(&data, 7);
        for split in [0, 1, 3, 31, 32, 33, 64, 500, 999, 1000] {
            let mut h = Xxh64::with_seed(7);
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.digest(), expect, "split at {split}");
        }
    }

    #[test]
    fn streaming_matches_oneshot_byte_at_a_time() {
        let data = b"SIREN collects process metadata and fuzzy hashes";
        let mut h = Xxh64::with_seed(0);
        for &b in data.iter() {
            h.update(&[b]);
        }
        assert_eq!(h.digest(), xxh64(data, 0));
    }

    #[test]
    fn short_inputs_all_lengths() {
        // Exercise every tail-length code path (0..32 plus one long case).
        let data: Vec<u8> = (0..64u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=64 {
            assert!(
                seen.insert(xxh64(&data[..len], 0)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn distinct_seeds_disperse() {
        let d = b"collision probe";
        let mut seen = std::collections::HashSet::new();
        for seed in 0..100u64 {
            seen.insert(xxh64(d, seed));
        }
        assert_eq!(seen.len(), 100);
    }
}
