//! # siren-ingest — sharded, multi-threaded ingest service
//!
//! The paper's collection side is fleet-scale: thousands of nodes emit
//! UDP datagrams concurrently, and the receiver tier must keep up with
//! whatever the network delivers. The seed reproduction drained every
//! message through one `Reassembler` into one `Database` on the caller's
//! thread; this crate turns ingestion into a real subsystem that scales
//! with cores:
//!
//! ```text
//!                      ┌──────────────────────────────────────────────┐
//!  messages ──▶ router │ shard 0: channel ▶ reassembler ▶ db ▶ consol │──┐
//!   (job-keyed  hash)  │ shard 1: channel ▶ reassembler ▶ db ▶ consol │──┼─▶ ordered merge
//!                      │   ⋮            (worker thread per shard)     │──┘
//!                      └──────────────────────────────────────────────┘
//! ```
//!
//! * [`ShardRouter`] hashes the job id so every datagram of one job —
//!   including the SCRIPT-layer rows consolidation must pair with their
//!   interpreter — lands on the same shard.
//! * Each shard worker owns a `Reassembler` and a `Database` partition
//!   behind a bounded channel; completed messages are stored with
//!   `Database::insert_batch`, amortizing locks and WAL flushes.
//! * Producers never lose data to a slow shard: when a channel fills,
//!   the push degrades to a blocking send and the stall is counted in
//!   [`ShardStats::backpressure_waits`] — observability instead of the
//!   receiver-side load shedding the UDP tier does.
//! * [`IngestService::finish`] consolidates every shard in parallel and
//!   merges the per-shard outputs into one order-stable record vector
//!   that is **identical, record for record, to the serial path** (the
//!   cross-shard merge uses the same total order consolidation sorts by,
//!   and job-keyed routing makes shard outputs disjoint in that order).
//!
//! The property tests in the umbrella crate assert serial/sharded
//! equality for shard counts 1, 2, and 8, with and without injected
//! datagram loss.

pub mod metrics;
pub mod service;

pub use metrics::IngestMetrics;
pub use service::{
    IngestConfig, IngestProducer, IngestResult, IngestService, IngestTraceContext, ShardStats,
};
// The router is a protocol-level concept shared with the transport tier;
// it lives in siren-wire so the sender-side socket choice and the
// worker-side partition can never disagree.
pub use siren_wire::ShardRouter;
