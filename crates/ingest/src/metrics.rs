//! Ingest-tier metric handles.
//!
//! One bundle of `Arc` handles covering the ingest pipeline's span
//! points: datagram receipt, reassembly, batched WAL-backed inserts,
//! backpressure stalls, and replay-on-spawn. Registered under
//! `ingest.*` when the caller shares a [`Registry`]; a detached bundle
//! otherwise, so the shard workers never branch on an `Option`.
//!
//! The registry counters are *cumulative across service instances* (a
//! daemon spawns one [`crate::IngestService`] per epoch against one
//! registry), while [`crate::ShardStats`] stays per-campaign and
//! per-shard — the two views answer different questions and are both
//! kept.

use siren_obs::{Counter, Histogram, Registry};
use std::sync::Arc;

/// `Arc` handles for every `ingest.*` metric.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// `ingest.messages_received` — datagram-level messages delivered to
    /// shard workers.
    pub messages_received: Arc<Counter>,
    /// `ingest.reassembled` — logical messages fully reassembled.
    pub reassembled: Arc<Counter>,
    /// `ingest.incomplete` — logical messages abandoned with lost chunks.
    pub incomplete: Arc<Counter>,
    /// `ingest.duplicates` — duplicate chunks observed.
    pub duplicates: Arc<Counter>,
    /// `ingest.inconsistent` — chunks with inconsistent totals.
    pub inconsistent: Arc<Counter>,
    /// `ingest.rows_stored` — rows inserted into shard partitions
    /// (excludes rows replayed from a prior run's store).
    pub rows_stored: Arc<Counter>,
    /// `ingest.batches` — batched insert calls issued.
    pub batches: Arc<Counter>,
    /// `ingest.backpressure_waits` — producer stalls on full shard
    /// channels.
    pub backpressure_waits: Arc<Counter>,
    /// `ingest.sentinels` — end-of-campaign sentinels seen by routers.
    pub sentinels: Arc<Counter>,
    /// `ingest.replayed_records` — records recovered from persistent
    /// shard stores on spawn.
    pub replayed_records: Arc<Counter>,
    /// `ingest.replay_tail_bytes` — bytes dropped from torn WAL tails on
    /// spawn.
    pub replay_tail_bytes: Arc<Counter>,
    /// `ingest.reassembly_ns` — per-datagram reassembler push latency.
    pub reassembly_ns: Arc<Histogram>,
    /// `ingest.batch_insert_ns` — latency of one batched insert into a
    /// shard partition (includes the WAL append underneath).
    pub batch_insert_ns: Arc<Histogram>,
}

impl IngestMetrics {
    /// Register the `ingest.*` handles in `registry`.
    pub fn register(registry: &Registry) -> Self {
        Self {
            messages_received: registry.counter("ingest.messages_received"),
            reassembled: registry.counter("ingest.reassembled"),
            incomplete: registry.counter("ingest.incomplete"),
            duplicates: registry.counter("ingest.duplicates"),
            inconsistent: registry.counter("ingest.inconsistent"),
            rows_stored: registry.counter("ingest.rows_stored"),
            batches: registry.counter("ingest.batches"),
            backpressure_waits: registry.counter("ingest.backpressure_waits"),
            sentinels: registry.counter("ingest.sentinels"),
            replayed_records: registry.counter("ingest.replayed_records"),
            replay_tail_bytes: registry.counter("ingest.replay_tail_bytes"),
            reassembly_ns: registry.histogram("ingest.reassembly_ns"),
            batch_insert_ns: registry.histogram("ingest.batch_insert_ns"),
        }
    }

    /// Detached handles: same recording behavior, visible to nobody.
    pub fn detached() -> Self {
        Self {
            messages_received: Arc::new(Counter::new()),
            reassembled: Arc::new(Counter::new()),
            incomplete: Arc::new(Counter::new()),
            duplicates: Arc::new(Counter::new()),
            inconsistent: Arc::new(Counter::new()),
            rows_stored: Arc::new(Counter::new()),
            batches: Arc::new(Counter::new()),
            backpressure_waits: Arc::new(Counter::new()),
            sentinels: Arc::new(Counter::new()),
            replayed_records: Arc::new(Counter::new()),
            replay_tail_bytes: Arc::new(Counter::new()),
            reassembly_ns: Arc::new(Histogram::new()),
            batch_insert_ns: Arc::new(Histogram::new()),
        }
    }
}

impl Default for IngestMetrics {
    fn default() -> Self {
        Self::detached()
    }
}
