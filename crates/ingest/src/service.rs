//! The ingest service: shard workers, backpressure, parallel
//! consolidation, deterministic merge.

use crate::metrics::IngestMetrics;
use crossbeam::channel::{bounded, Receiver, Sender as ChanSender, TrySendError};
use siren_consolidate::{consolidate, record_order, ConsolidateStats, ProcessRecord};
use siren_db::{Database, ReplayStats, SegmentedOptions};
use siren_obs::{Counter, SpanBuffer, SpanId, TraceId};
use siren_wire::ShardRouter;
use siren_wire::{CompleteMessage, Message, MessageType, Reassembler, WireError};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where shard workers record their per-epoch spans: the daemon's span
/// flight recorder plus the `(trace, parent)` context of the epoch root
/// span the worker spans should hang under. Each shard records one
/// `reassembly` and one `wal_insert` span covering its accumulated time
/// in those stages across the whole campaign.
#[derive(Debug, Clone)]
pub struct IngestTraceContext {
    /// The shared flight recorder spans land in.
    pub buffer: Arc<SpanBuffer>,
    /// The epoch's trace id.
    pub trace: TraceId,
    /// The epoch root span the shard spans are parented under.
    pub parent: SpanId,
}

/// Ingest-tier configuration.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of shard workers requested.
    pub shards: usize,
    /// Clamp the worker count to `available_parallelism` (default on).
    /// Shard workers are OS threads; asking for more of them than the
    /// machine has cores only buys lock and scheduler contention (the
    /// 1-core bench container measured sharded ≈ 0.8× serial from
    /// exactly this). The clamp is recorded in
    /// [`ShardStats::shards_requested`]. Disable for tests that need an
    /// exact shard count regardless of hardware.
    pub clamp_shards: bool,
    /// Bounded capacity of each shard's message channel.
    pub channel_capacity: usize,
    /// Completed messages buffered per shard before a batched insert.
    pub batch_size: usize,
    /// When set, shard `i` persists to `<wal_base>.shard<i>` (one flat
    /// WAL, or a segmented directory store when [`Self::segmented`] is
    /// set); otherwise partitions are in-memory.
    pub wal_base: Option<PathBuf>,
    /// Use a rotating/compacting segmented store per shard partition
    /// instead of one flat WAL. Only meaningful with `wal_base`.
    pub segmented: Option<SegmentedOptions>,
    /// Metric handles the shard workers record into. The default is a
    /// detached bundle (recorded but visible to nobody); a daemon passes
    /// [`IngestMetrics::register`]ed handles so `ingest.*` series show up
    /// in its registry snapshots. Cumulative across service instances,
    /// unlike the per-campaign [`ShardStats`].
    pub metrics: IngestMetrics,
    /// When set, each shard worker records per-epoch `reassembly` and
    /// `wal_insert` spans into the given flight recorder, parented
    /// under the daemon's epoch root span. `None` (the default) keeps
    /// standalone ingest services span-free.
    pub trace: Option<IngestTraceContext>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            clamp_shards: true,
            channel_capacity: 4096,
            batch_size: 256,
            wal_base: None,
            segmented: None,
            metrics: IngestMetrics::detached(),
            trace: None,
        }
    }
}

impl IngestConfig {
    /// In-memory config with `shards` workers (clamped to the machine).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// In-memory config with exactly `shards` workers, bypassing the
    /// hardware clamp — for tests and experiments that exercise the
    /// multi-shard merge regardless of core count.
    pub fn with_shards_unclamped(shards: usize) -> Self {
        Self {
            shards,
            clamp_shards: false,
            ..Self::default()
        }
    }

    /// The worker count [`IngestService::spawn`] will actually use:
    /// `shards` (≥ 1), clamped to `available_parallelism` when
    /// [`Self::clamp_shards`] is set.
    pub fn effective_shards(&self) -> usize {
        let requested = self.shards.max(1);
        if !self.clamp_shards {
            return requested;
        }
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        requested.min(cores)
    }

    /// Path of shard `shard`'s persistent partition (`<wal_base>.shard<i>`),
    /// when `wal_base` is set. Public because the service daemon must
    /// delete exactly the files the ingest tier wrote when an epoch
    /// commits — the naming convention lives here and only here.
    pub fn shard_wal_path(&self, shard: usize) -> Option<PathBuf> {
        self.wal_base.as_ref().map(|base| {
            let mut os = base.clone().into_os_string();
            os.push(format!(".shard{shard}"));
            PathBuf::from(os)
        })
    }
}

/// Per-shard ingest telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Messages (datagram-level) received by the worker.
    pub received: u64,
    /// Logical messages fully reassembled.
    pub reassembled: u64,
    /// Logical messages that never completed (lost chunks).
    pub incomplete: u64,
    /// Duplicate chunks observed.
    pub duplicates: u64,
    /// Chunks with inconsistent totals (protocol violations).
    pub inconsistent: u64,
    /// Rows stored in this shard's database partition.
    pub db_rows: u64,
    /// Batched insert calls issued.
    pub batches: u64,
    /// Times a producer found this shard's channel full and had to wait
    /// (the backpressure signal: a sustained non-zero rate means the
    /// shard count or batch size is too low for the offered load).
    pub backpressure_waits: u64,
    /// Shards the configuration asked for. Differs from the number of
    /// [`ShardStats`] entries when the hardware clamp kicked in
    /// ([`IngestConfig::clamp_shards`]).
    pub shards_requested: usize,
    /// Records replayed from this shard's persistent store on spawn
    /// (zero for in-memory partitions and fresh stores).
    pub replayed_records: u64,
    /// Bytes dropped from a torn tail while replaying this shard's
    /// store on spawn.
    pub replay_tail_bytes: u64,
}

struct ShardOutput {
    records: Vec<ProcessRecord>,
    consolidate_stats: ConsolidateStats,
    stats: ShardStats,
}

/// Handle for pushing messages into one shard, with backpressure
/// accounting. Cloneable across producer threads.
#[derive(Clone)]
pub struct ShardHandle {
    tx: ChanSender<Message>,
    /// Per-instance, per-shard stall count (feeds [`ShardStats`]).
    backpressure: Arc<Counter>,
    /// The shared `ingest.backpressure_waits` registry handle.
    stalls_total: Arc<Counter>,
}

impl ShardHandle {
    /// Deliver one message to the shard. Blocks (and counts the stall)
    /// when the shard is saturated; never drops.
    pub fn push(&self, msg: Message) {
        match self.tx.try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                self.backpressure.inc();
                self.stalls_total.inc();
                // Worker gone means shutdown mid-push; nothing to do with
                // the message but drop it, matching UDP semantics.
                let _ = self.tx.send(msg);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

/// A cloneable intake for the service: routes messages to shard handles.
/// Many producer threads (one per cluster, one per receiver socket, …)
/// can feed the same service concurrently; per-producer message order is
/// preserved by the per-shard FIFO channels.
#[derive(Clone)]
pub struct IngestProducer {
    router: ShardRouter,
    handles: Vec<ShardHandle>,
    /// Per-instance sentinel count (feeds [`IngestResult::sentinels_seen`]).
    sentinels: Arc<Counter>,
    /// The shared `ingest.sentinels` registry handle.
    sentinels_total: Arc<Counter>,
}

impl IngestProducer {
    /// Route and deliver one decoded message. End-of-campaign sentinels
    /// are counted and dropped — they are transport control, not data.
    pub fn push(&self, msg: Message) {
        match self.router.shard_of(&msg) {
            Some(shard) => self.handles[shard].push(msg),
            None => {
                self.sentinels.inc();
                self.sentinels_total.inc();
            }
        }
    }

    /// Decode and deliver one datagram.
    pub fn push_datagram(&self, datagram: &[u8]) -> Result<(), WireError> {
        let msg = Message::decode(datagram)?;
        self.push(msg);
        Ok(())
    }

    /// The router this producer shards by.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }
}

/// The running service: one bounded channel + worker thread per shard.
pub struct IngestService {
    producer: IngestProducer,
    workers: Vec<JoinHandle<std::io::Result<ShardOutput>>>,
}

impl IngestService {
    /// Spawn the shard workers. The worker count is
    /// [`IngestConfig::effective_shards`]; when the hardware clamp
    /// reduces it, the requested count is recorded in every shard's
    /// [`ShardStats::shards_requested`].
    pub fn spawn(cfg: IngestConfig) -> std::io::Result<Self> {
        let requested = cfg.shards.max(1);
        let router = ShardRouter::new(cfg.effective_shards());
        let mut handles = Vec::with_capacity(router.shards());
        let mut workers = Vec::with_capacity(router.shards());

        for shard in 0..router.shards() {
            let (tx, rx) = bounded::<Message>(cfg.channel_capacity.max(1));
            let backpressure = Arc::new(Counter::new());
            let (db, replay) = match cfg.shard_wal_path(shard) {
                Some(path) => match cfg.segmented {
                    Some(opts) => {
                        let (db, recovery) = Database::open_segmented(&path, opts)?;
                        (
                            db,
                            ReplayStats {
                                records: recovery.records_loaded,
                                corrupt_tail_bytes: recovery.wal_tail_bytes_discarded,
                            },
                        )
                    }
                    None => Database::open(&path)?,
                },
                None => (Database::in_memory(), ReplayStats::default()),
            };
            let batch_size = cfg.batch_size.max(1);
            let metrics = cfg.metrics.clone();
            let trace = cfg.trace.clone();
            let worker = std::thread::Builder::new()
                .name(format!("siren-ingest-{shard}"))
                .spawn(move || {
                    shard_worker(shard, rx, db, batch_size, requested, replay, metrics, trace)
                })?;
            handles.push(ShardHandle {
                tx,
                backpressure,
                stalls_total: cfg.metrics.backpressure_waits.clone(),
            });
            workers.push(worker);
        }
        Ok(Self {
            producer: IngestProducer {
                router,
                handles,
                sentinels: Arc::new(Counter::new()),
                sentinels_total: cfg.metrics.sentinels.clone(),
            },
            workers,
        })
    }

    /// The router in use (shared with sender-side components).
    pub fn router(&self) -> &ShardRouter {
        self.producer.router()
    }

    /// Cloneable handle for one shard (the UDP receiver pool feeds each
    /// socket's messages straight into its shard).
    pub fn handle(&self, shard: usize) -> ShardHandle {
        self.producer.handles[shard].clone()
    }

    /// A cloneable intake for producer threads.
    pub fn producer(&self) -> IngestProducer {
        self.producer.clone()
    }

    /// Route and deliver one decoded message (see [`IngestProducer::push`]).
    pub fn push(&mut self, msg: Message) {
        self.producer.push(msg);
    }

    /// Decode and deliver one datagram.
    pub fn push_datagram(&mut self, datagram: &[u8]) -> Result<(), WireError> {
        self.producer.push_datagram(datagram)
    }

    /// Close the intake, wait for all shards to drain, consolidate each
    /// partition in parallel (inside the worker threads), and merge the
    /// shard outputs into the serial path's exact record order.
    ///
    /// Every [`IngestProducer`] and [`ShardHandle`] cloned from this
    /// service must be dropped before calling `finish`, or the shard
    /// channels stay open and the join blocks.
    pub fn finish(self) -> std::io::Result<IngestResult> {
        let IngestService { producer, workers } = self;
        let sentinels_seen = producer.sentinels.get();
        // Capture backpressure counts, then close every channel so the
        // workers run their drain-and-consolidate epilogue.
        let backpressure: Vec<u64> = producer
            .handles
            .iter()
            .map(|h| h.backpressure.get())
            .collect();
        drop(producer);

        let mut outputs = Vec::with_capacity(workers.len());
        for worker in workers {
            outputs.push(worker.join().expect("ingest shard worker panicked")?);
        }
        for (out, waits) in outputs.iter_mut().zip(backpressure) {
            out.stats.backpressure_waits = waits;
        }

        let mut stats = ConsolidateStats::default();
        for out in &outputs {
            let s = &out.consolidate_stats;
            stats.self_rows += s.self_rows;
            stats.script_rows += s.script_rows;
            stats.merged_scripts += s.merged_scripts;
            stats.orphan_scripts += s.orphan_scripts;
            stats.processes += s.processes;
        }

        let shard_stats: Vec<ShardStats> = outputs.iter().map(|o| o.stats).collect();
        let records = merge_sorted(outputs.into_iter().map(|o| o.records).collect());

        Ok(IngestResult {
            records,
            stats,
            shard_stats,
            sentinels_seen,
        })
    }
}

/// Everything the ingest tier produces for one campaign.
#[derive(Debug)]
pub struct IngestResult {
    /// Consolidated records in the serial path's deterministic order.
    pub records: Vec<ProcessRecord>,
    /// Summed consolidation statistics.
    pub stats: ConsolidateStats,
    /// Per-shard telemetry.
    pub shard_stats: Vec<ShardStats>,
    /// End-of-campaign sentinels observed by the router.
    pub sentinels_seen: u64,
}

impl IngestResult {
    /// Total logical messages reassembled across shards.
    pub fn reassembly_complete(&self) -> u64 {
        self.shard_stats.iter().map(|s| s.reassembled).sum()
    }

    /// Total logical messages with lost chunks.
    pub fn reassembly_incomplete(&self) -> u64 {
        self.shard_stats.iter().map(|s| s.incomplete).sum()
    }

    /// Total duplicate chunks.
    pub fn duplicates(&self) -> u64 {
        self.shard_stats.iter().map(|s| s.duplicates).sum()
    }

    /// Total rows stored across partitions.
    pub fn db_rows(&self) -> u64 {
        self.shard_stats.iter().map(|s| s.db_rows).sum()
    }

    /// Total messages delivered to shard workers.
    pub fn messages_received(&self) -> u64 {
        self.shard_stats.iter().map(|s| s.received).sum()
    }

    /// Aggregate WAL replay statistics across shard partitions (what the
    /// service recovered from disk before this campaign's messages).
    pub fn replay_stats(&self) -> ReplayStats {
        let mut total = ReplayStats::default();
        for s in &self.shard_stats {
            total.records += s.replayed_records;
            total.corrupt_tail_bytes += s.replay_tail_bytes;
        }
        total
    }

    /// Total producer stalls on saturated shard channels.
    pub fn backpressure_waits(&self) -> u64 {
        self.shard_stats.iter().map(|s| s.backpressure_waits).sum()
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_worker(
    shard: usize,
    rx: Receiver<Message>,
    db: Database,
    batch_size: usize,
    shards_requested: usize,
    replay: ReplayStats,
    metrics: IngestMetrics,
    trace: Option<IngestTraceContext>,
) -> std::io::Result<ShardOutput> {
    let mut stats = ShardStats {
        shard,
        shards_requested,
        replayed_records: replay.records,
        replay_tail_bytes: replay.corrupt_tail_bytes,
        ..ShardStats::default()
    };
    metrics.replayed_records.add(replay.records);
    metrics.replay_tail_bytes.add(replay.corrupt_tail_bytes);
    let mut reasm = Reassembler::new();
    let mut batch: Vec<CompleteMessage> = Vec::with_capacity(batch_size);
    // Span accounting: reassembly and WAL-insert time is interleaved
    // across the whole campaign, so the worker accumulates each and
    // records one span per stage in the epilogue — per-epoch totals,
    // not a span per datagram (which would flood the ring).
    let worker_start = Instant::now();
    let mut reassembly_total = Duration::ZERO;
    let mut insert_total = Duration::ZERO;

    let mut insert = |batch: Vec<CompleteMessage>| -> std::io::Result<()> {
        let rows = batch.len() as u64;
        let start = Instant::now();
        db.insert_message_batch(batch)?;
        let elapsed = start.elapsed();
        insert_total += elapsed;
        metrics.batch_insert_ns.record_duration(elapsed);
        metrics.batches.inc();
        metrics.rows_stored.add(rows);
        Ok(())
    };

    while let Ok(msg) = rx.recv() {
        stats.received += 1;
        metrics.messages_received.inc();
        if msg.header.mtype == MessageType::End {
            continue; // defense in depth: the router already filters these
        }
        let push_start = Instant::now();
        let done = reasm.push(msg);
        let push_elapsed = push_start.elapsed();
        reassembly_total += push_elapsed;
        metrics.reassembly_ns.record_duration(push_elapsed);
        if let Some(done) = done {
            stats.reassembled += 1;
            metrics.reassembled.inc();
            batch.push(done);
            if batch.len() >= batch_size {
                insert(std::mem::take(&mut batch))?;
                stats.batches += 1;
            }
        }
    }

    // Channel closed: drain the epilogue.
    stats.incomplete = reasm.drain_incomplete().len() as u64;
    stats.duplicates = reasm.duplicates;
    stats.inconsistent = reasm.inconsistent;
    metrics.incomplete.add(stats.incomplete);
    metrics.duplicates.add(stats.duplicates);
    metrics.inconsistent.add(stats.inconsistent);
    if !batch.is_empty() {
        insert(batch)?;
        stats.batches += 1;
    }
    db.flush()?;
    stats.db_rows = db.len() as u64;
    if let Some(ctx) = &trace {
        ctx.buffer.record_past(
            ctx.trace,
            Some(ctx.parent),
            "reassembly",
            worker_start,
            reassembly_total,
        );
        ctx.buffer.record_past(
            ctx.trace,
            Some(ctx.parent),
            "wal_insert",
            worker_start,
            insert_total,
        );
    }

    // Parallel consolidation: each shard consolidates its own partition
    // on its own thread before the merge.
    let consolidated = consolidate(&db);
    Ok(ShardOutput {
        records: consolidated.records,
        consolidate_stats: consolidated.stats,
        stats,
    })
}

/// K-way merge of per-shard sorted record vectors.
fn merge_sorted(mut shards: Vec<Vec<ProcessRecord>>) -> Vec<ProcessRecord> {
    let total: usize = shards.iter().map(Vec::len).sum();
    let mut cursors: Vec<std::vec::IntoIter<ProcessRecord>> =
        shards.drain(..).map(Vec::into_iter).collect();
    let mut heads: Vec<Option<ProcessRecord>> = cursors.iter_mut().map(Iterator::next).collect();

    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some(candidate) = head {
                best = match best {
                    Some(j)
                        if record_order(heads[j].as_ref().expect("best head"), candidate)
                            != std::cmp::Ordering::Greater =>
                    {
                        Some(j)
                    }
                    _ => Some(i),
                };
            }
        }
        match best {
            Some(i) => {
                out.push(heads[i].take().expect("non-empty head"));
                heads[i] = cursors[i].next();
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::{chunk_message, sentinel_message, Layer, MessageHeader};

    fn header(job: u64, pid: u32, mtype: MessageType) -> MessageHeader {
        MessageHeader {
            job_id: job,
            step_id: 0,
            pid,
            exe_hash: format!("{pid:08x}"),
            host: format!("nid{:06}", job % 100),
            time: 1_700_000_000 + job,
            layer: Layer::SelfExe,
            mtype,
        }
    }

    fn meta(job: u64, pid: u32) -> Vec<Message> {
        chunk_message(
            &header(job, pid, MessageType::Meta),
            &format!("path=/usr/bin/x{pid};inode=1;size=10;mode=755;uid=1;gid=1;ppid=1;user=u"),
            1200,
        )
    }

    #[test]
    fn sharded_ingest_stores_and_consolidates() {
        let mut svc = IngestService::spawn(IngestConfig::with_shards_unclamped(4)).unwrap();
        for job in 0..200u64 {
            for m in meta(job, 100 + job as u32) {
                svc.push(m);
            }
            for m in chunk_message(
                &header(job, 100 + job as u32, MessageType::Objects),
                &"/lib64/libc.so.6;".repeat(120),
                600,
            ) {
                svc.push(m);
            }
        }
        let result = svc.finish().unwrap();
        assert_eq!(result.records.len(), 200);
        assert_eq!(result.stats.processes, 200);
        assert_eq!(result.reassembly_complete(), 400);
        assert_eq!(result.reassembly_incomplete(), 0);
        assert_eq!(result.db_rows(), 400);
        // Every shard saw work (200 jobs over 4 shards).
        for s in &result.shard_stats {
            assert!(s.received > 0, "idle shard: {s:?}");
        }
        // Output is sorted by the consolidation order.
        for w in result.records.windows(2) {
            assert_ne!(record_order(&w[0], &w[1]), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn sentinels_are_counted_not_stored() {
        let mut svc = IngestService::spawn(IngestConfig::with_shards(2)).unwrap();
        for m in meta(1, 10) {
            svc.push(m);
        }
        svc.push(sentinel_message(0, 1));
        svc.push(sentinel_message(1, 1));
        let result = svc.finish().unwrap();
        assert_eq!(result.sentinels_seen, 2);
        assert_eq!(result.db_rows(), 1);
        assert_eq!(result.records.len(), 1);
    }

    #[test]
    fn tiny_channel_backpressure_is_counted_and_lossless() {
        let cfg = IngestConfig {
            channel_capacity: 2,
            batch_size: 8,
            ..IngestConfig::with_shards_unclamped(2)
        };
        let mut svc = IngestService::spawn(cfg).unwrap();
        for job in 0..500u64 {
            for m in meta(job, job as u32) {
                svc.push(m);
            }
        }
        let result = svc.finish().unwrap();
        assert_eq!(
            result.records.len(),
            500,
            "backpressure must not drop messages"
        );
        // With capacity 2 and 500 jobs, stalls are effectively certain;
        // assert only that the counter is wired, not a specific count.
        let _total_waits: u64 = result
            .shard_stats
            .iter()
            .map(|s| s.backpressure_waits)
            .sum();
    }

    #[test]
    fn per_shard_wal_persists_partitions() {
        let dir = std::env::temp_dir().join(format!("siren-ingest-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("campaign.sirendb");
        for i in 0..3 {
            let _ = std::fs::remove_file(dir.join(format!("campaign.sirendb.shard{i}")));
        }

        let cfg = IngestConfig {
            wal_base: Some(base.clone()),
            ..IngestConfig::with_shards_unclamped(3)
        };
        let mut svc = IngestService::spawn(cfg).unwrap();
        for job in 0..60u64 {
            for m in meta(job, job as u32) {
                svc.push(m);
            }
        }
        let result = svc.finish().unwrap();
        assert_eq!(result.db_rows(), 60);

        let mut replayed = 0u64;
        for i in 0..3 {
            let path = dir.join(format!("campaign.sirendb.shard{i}"));
            let (db, stats) = Database::open(&path).unwrap();
            assert_eq!(stats.corrupt_tail_bytes, 0);
            replayed += db.len() as u64;
            std::fs::remove_file(&path).unwrap();
        }
        assert_eq!(replayed, 60);
    }

    #[test]
    fn oversharding_is_clamped_to_available_parallelism_and_recorded() {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let requested = cores + 7; // always over the machine's width
        let mut svc = IngestService::spawn(IngestConfig::with_shards(requested)).unwrap();
        assert_eq!(svc.router().shards(), cores);
        for m in meta(1, 10) {
            svc.push(m);
        }
        let result = svc.finish().unwrap();
        assert_eq!(result.shard_stats.len(), cores);
        for s in &result.shard_stats {
            assert_eq!(s.shards_requested, requested, "clamp must be recorded");
        }
        // The unclamped constructor gets exactly what it asked for.
        let svc = IngestService::spawn(IngestConfig::with_shards_unclamped(requested)).unwrap();
        assert_eq!(svc.router().shards(), requested);
        let result = svc.finish().unwrap();
        assert!(result
            .shard_stats
            .iter()
            .all(|s| s.shards_requested == requested));
    }

    #[test]
    fn shard_replay_stats_surface_prior_wal_content() {
        let dir = std::env::temp_dir().join(format!("siren-ingest-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("svc.sirendb");
        for i in 0..2 {
            let _ = std::fs::remove_file(dir.join(format!("svc.sirendb.shard{i}")));
        }
        let cfg = || IngestConfig {
            wal_base: Some(base.clone()),
            ..IngestConfig::with_shards_unclamped(2)
        };

        // First run: persist 30 jobs, fresh stores → zero replay.
        let mut svc = IngestService::spawn(cfg()).unwrap();
        for job in 0..30u64 {
            for m in meta(job, job as u32) {
                svc.push(m);
            }
        }
        let first = svc.finish().unwrap();
        assert_eq!(first.replay_stats(), siren_db::ReplayStats::default());

        // Second run over the same WALs: the prior rows come back as
        // replayed records, attributed per shard.
        let svc = IngestService::spawn(cfg()).unwrap();
        let second = svc.finish().unwrap();
        assert_eq!(second.replay_stats().records, 30);
        assert_eq!(second.replay_stats().corrupt_tail_bytes, 0);
        assert_eq!(
            second
                .shard_stats
                .iter()
                .map(|s| s.replayed_records)
                .sum::<u64>(),
            30
        );
        for i in 0..2 {
            std::fs::remove_file(dir.join(format!("svc.sirendb.shard{i}"))).unwrap();
        }
    }

    #[test]
    fn segmented_shard_partitions_persist_and_recover() {
        let dir = std::env::temp_dir().join(format!("siren-ingest-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("seg.sirendb");
        let cfg = || IngestConfig {
            wal_base: Some(base.clone()),
            segmented: Some(siren_db::SegmentedOptions {
                rotate_bytes: 4096,
                compact_min_files: 2,
                background_compaction: false,
            }),
            ..IngestConfig::with_shards_unclamped(2)
        };

        let mut svc = IngestService::spawn(cfg()).unwrap();
        for job in 0..40u64 {
            for m in meta(job, job as u32) {
                svc.push(m);
            }
        }
        let first = svc.finish().unwrap();
        assert_eq!(first.db_rows(), 40);

        let svc = IngestService::spawn(cfg()).unwrap();
        let second = svc.finish().unwrap();
        assert_eq!(
            second.replay_stats().records,
            40,
            "segmented stores recover"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_sorted_is_a_total_merge() {
        // Merge of disjoint sorted runs equals the sorted union.
        let rec = |job: u64| {
            let mut svc = IngestService::spawn(IngestConfig::with_shards(1)).unwrap();
            for m in meta(job, job as u32) {
                svc.push(m);
            }
            svc.finish().unwrap().records.remove(0)
        };
        let a = vec![rec(1), rec(5)];
        let b = vec![rec(2), rec(3)];
        let merged = merge_sorted(vec![a.clone(), b.clone()]);
        let mut expect = [a, b].concat();
        expect.sort_by(record_order);
        let keys: Vec<_> = merged.iter().map(|r| r.key.job_id).collect();
        let expect_keys: Vec<_> = expect.iter().map(|r| r.key.job_id).collect();
        assert_eq!(keys, expect_keys);
    }
}
