//! # siren-net — fire-and-forget transports and the receiver server
//!
//! SIREN deliberately chose UDP over TCP or per-process files (§3.1,
//! "Data Transmission"): connection management and file handles are
//! failure points inside someone else's process, while a lost datagram
//! costs only one field of one record. This crate provides that transport
//! model twice:
//!
//! * [`udp`] — real UDP over the loopback interface (`std::net`), used by
//!   the end-to-end integration tests and the pipeline benchmark. The
//!   receiver mirrors the paper's Go server: a socket-reader thread feeds
//!   a bounded channel; consumers drain decoded messages from it.
//! * [`sim`] — an in-memory channel with *configurable, seeded* loss,
//!   duplication, and reordering. The paper could only observe its
//!   deployment loss rate (~0.02 % of jobs affected); the simulated
//!   channel lets the experiments inject loss and measure the consolidation
//!   layer's response deterministically.
//!
//! Both implement [`Sender`], whose contract encodes the "graceful
//! failure" design rule: `send` never blocks the caller on the network
//! and never reports an error — exactly like `siren.so`.

pub mod proxy;
pub mod sim;
pub mod udp;

pub use proxy::{FaultConfig, FaultProxy};
pub use sim::{SimChannel, SimConfig, SimReceiver, SimSender};
pub use udp::{ShardedUdpSender, UdpReceiver, UdpReceiverPool, UdpSender};

/// A fire-and-forget datagram sender.
///
/// Implementations swallow all errors: the collector must never fail or
/// block a hooked user process because monitoring infrastructure is
/// unhealthy.
pub trait Sender: Send {
    /// Send one datagram. Losses are silent by design.
    fn send(&self, datagram: &[u8]);

    /// Datagrams handed to the transport so far (including ones the
    /// transport later dropped).
    fn sent_count(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::{chunk_message, Layer, Message, MessageHeader, MessageType, Reassembler};

    fn header() -> MessageHeader {
        MessageHeader {
            job_id: 1,
            step_id: 0,
            pid: 77,
            exe_hash: "cafe".into(),
            host: "nid7".into(),
            time: 5,
            layer: Layer::SelfExe,
            mtype: MessageType::Objects,
        }
    }

    #[test]
    fn udp_end_to_end_loopback() {
        let receiver = UdpReceiver::spawn(1024).expect("bind loopback");
        let sender = UdpSender::connect(receiver.local_addr()).expect("sender socket");

        let content = "/lib64/libc.so.6;".repeat(300); // forces chunking
        let msgs = chunk_message(&header(), &content, siren_wire::DEFAULT_MAX_DATAGRAM);
        assert!(msgs.len() > 1);
        for m in &msgs {
            sender.send(&m.encode());
        }
        assert_eq!(sender.sent_count(), msgs.len() as u64);

        let mut reasm = Reassembler::new();
        let mut complete = None;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while complete.is_none() && std::time::Instant::now() < deadline {
            if let Some(msg) = receiver.recv_timeout(std::time::Duration::from_millis(200)) {
                complete = reasm.push(msg);
            }
        }
        let stats = receiver.stop();
        let complete = complete.expect("message should reassemble over loopback");
        assert_eq!(complete.content, content);
        assert_eq!(stats.received, msgs.len() as u64);
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn udp_receiver_counts_decode_errors() {
        let receiver = UdpReceiver::spawn(16).expect("bind loopback");
        let sender = UdpSender::connect(receiver.local_addr()).expect("sender socket");
        sender.send(b"not a siren datagram");
        sender.send(
            &Message {
                header: header(),
                chunk_index: 0,
                chunk_total: 1,
                content: "ok".into(),
            }
            .encode(),
        );

        let msg = receiver
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("valid message arrives");
        assert_eq!(msg.content, "ok");
        let stats = receiver.stop();
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.received, 2);
    }
}
