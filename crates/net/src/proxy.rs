//! A deterministic TCP fault proxy for failure-injection tests.
//!
//! The proxy sits between a client and a real TCP server (in the
//! replication suite: a follower and its leader), forwarding bytes both
//! ways while injecting faults drawn from a seeded RNG — so a given
//! `(seed, config)` always tears the same connections at the same byte
//! offsets, and a failing run replays exactly.
//!
//! Faults offered:
//!
//! * **sever** — cut a proxied connection after a byte count fuzzed
//!   from a configured range (counted on the server→client direction,
//!   the interesting one for a replication stream: the cut lands
//!   mid-epoch, mid-batch, even mid-frame-header).
//! * **drop** — refuse every nth accepted connection outright (the
//!   dial succeeds, then the socket closes before a single byte).
//! * **delay** — hold each forwarded chunk for a fixed duration,
//!   simulating a slow link.
//!
//! The upstream target is swappable at runtime ([`FaultProxy::set_target`])
//! so a test can restart its leader on a fresh port while the follower
//! keeps dialing one stable address — exactly the failover geometry the
//! convergence suite needs.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Fault schedule for a [`FaultProxy`]. The default injects nothing —
/// a transparent forwarder.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed for the per-connection fault draws — same seed, same cuts.
    pub seed: u64,
    /// Sever each proxied connection after a server→client byte count
    /// drawn uniformly from this inclusive range. `None` = never cut.
    pub cut_bytes: Option<(u64, u64)>,
    /// Refuse every nth accepted connection (1 = every connection,
    /// 2 = every other, …). `None` = accept all.
    pub refuse_every: Option<u64>,
    /// Hold each forwarded chunk this long before passing it on.
    pub delay: Option<Duration>,
}

struct Inner {
    target: Mutex<SocketAddr>,
    stop: AtomicBool,
    /// Connections accepted (refused ones included).
    connections: AtomicU64,
    /// Connections torn by the byte-offset cut.
    cuts: AtomicU64,
    /// Connections refused by `refuse_every`.
    refused: AtomicU64,
}

/// A seeded man-in-the-middle TCP forwarder. Dropping it stops the
/// accept loop and severs every live proxied connection.
pub struct FaultProxy {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Bind a loopback listener and start proxying to `target` under
    /// `cfg`'s fault schedule.
    pub fn spawn(target: SocketAddr, cfg: FaultConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        // Poll the listener so a stop request is noticed promptly.
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            target: Mutex::new(target),
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            cuts: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("siren-fault-proxy".into())
            .spawn(move || accept_loop(listener, accept_inner, cfg))?;
        Ok(Self {
            local_addr,
            inner,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should dial instead of the real server.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Repoint new connections at a different upstream (live proxied
    /// connections are unaffected) — the leader-restart affordance.
    pub fn set_target(&self, target: SocketAddr) {
        *self.inner.target.lock() = target;
    }

    /// Connections accepted so far (refused ones included).
    pub fn connections(&self) -> u64 {
        self.inner.connections.load(Ordering::Relaxed)
    }

    /// Connections severed by the byte-offset cut.
    pub fn cuts(&self) -> u64 {
        self.inner.cuts.load(Ordering::Relaxed)
    }

    /// Connections refused outright by `refuse_every`.
    pub fn refused(&self) -> u64 {
        self.inner.refused.load(Ordering::Relaxed)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>, cfg: FaultConfig) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    while !inner.stop.load(Ordering::Relaxed) {
        let (client, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => break,
        };
        let n = inner.connections.fetch_add(1, Ordering::Relaxed) + 1;
        if cfg
            .refuse_every
            .is_some_and(|every| n.is_multiple_of(every.max(1)))
        {
            inner.refused.fetch_add(1, Ordering::Relaxed);
            // Drop: close before a single byte crosses.
            continue;
        }
        // Draw this connection's cut offset now, so the schedule
        // depends only on (seed, connection index) — not on thread
        // interleaving.
        let cut_at = cfg
            .cut_bytes
            .map(|(lo, hi)| rng.random_range(lo..hi.max(lo) + 1));
        let target = *inner.target.lock();
        let server = match TcpStream::connect(target) {
            Ok(server) => server,
            Err(_) => continue, // upstream down: the dial-side close is the fault
        };
        let _ = spawn_pipes(client, server, cut_at, cfg.delay, Arc::clone(&inner));
    }
}

/// Start the two forwarding directions for one proxied connection. The
/// cut budget applies to server→client bytes.
fn spawn_pipes(
    client: TcpStream,
    server: TcpStream,
    cut_at: Option<u64>,
    delay: Option<Duration>,
    inner: Arc<Inner>,
) -> std::io::Result<()> {
    let client_up = client.try_clone()?;
    let server_up = server.try_clone()?;
    let up_inner = Arc::clone(&inner);
    std::thread::Builder::new()
        .name("siren-fault-proxy-up".into())
        .spawn(move || pipe(client_up, server_up, None, None, up_inner))?;
    std::thread::Builder::new()
        .name("siren-fault-proxy-down".into())
        .spawn(move || pipe(server, client, cut_at, delay, inner))?;
    Ok(())
}

/// Forward bytes `from` → `to` until EOF, error, stop, or the cut
/// budget is exhausted. A cut severs both directions (shutdown both
/// sockets), so the peer observes a hard connection loss.
fn pipe(
    mut from: TcpStream,
    mut to: TcpStream,
    mut cut_budget: Option<u64>,
    delay: Option<Duration>,
    inner: Arc<Inner>,
) {
    // Short read timeouts keep the thread responsive to stop requests.
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    loop {
        if inner.stop.load(Ordering::Relaxed) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        if let Some(delay) = delay {
            std::thread::sleep(delay);
        }
        // Sever mid-chunk: forward exactly the bytes under the budget,
        // then cut — the peer may be left with half a frame header.
        let mut take = n;
        let mut cut_now = false;
        if let Some(budget) = cut_budget.as_mut() {
            if (n as u64) >= *budget {
                take = *budget as usize;
                cut_now = true;
            } else {
                *budget -= n as u64;
            }
        }
        if take > 0 && to.write_all(&buf[..take]).is_err() {
            break;
        }
        if cut_now {
            inner.cuts.fetch_add(1, Ordering::Relaxed);
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
