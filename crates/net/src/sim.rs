//! Simulated datagram channel with seeded loss, duplication, reordering.
//!
//! The paper could only *observe* UDP loss on LUMI (~0.02 % of jobs ended
//! up with missing fields). To study the consolidation layer's behaviour
//! under loss, this channel makes the failure modes injectable and
//! reproducible: every perturbation is drawn from a seeded RNG, so a given
//! `(seed, loss_rate)` always drops the same datagrams.

use crate::Sender;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use siren_wire::Message;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Perturbation configuration. All rates are probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Probability a datagram is silently dropped.
    pub loss_rate: f64,
    /// Probability a delivered datagram is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a delivered datagram is swapped with its predecessor.
    pub reorder_rate: f64,
    /// RNG seed — same seed, same perturbations.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// Lossless, in-order channel.
    pub fn perfect() -> Self {
        Self::default()
    }

    /// Channel with only loss.
    pub fn with_loss(loss_rate: f64, seed: u64) -> Self {
        Self {
            loss_rate,
            seed,
            ..Self::default()
        }
    }
}

/// Delivery statistics, shared between the sender and receiver sides.
#[derive(Debug, Default)]
pub struct SimStats {
    /// Datagrams handed to the channel.
    pub sent: AtomicU64,
    /// Datagrams dropped by injected loss.
    pub dropped: AtomicU64,
    /// Extra deliveries from injected duplication.
    pub duplicated: AtomicU64,
    /// Adjacent swaps from injected reordering.
    pub reordered: AtomicU64,
}

struct SimState {
    queue: VecDeque<Vec<u8>>,
    rng: StdRng,
    cfg: SimConfig,
}

/// Factory for linked sender/receiver pairs.
pub struct SimChannel;

impl SimChannel {
    /// Create a linked sender/receiver pair with the given perturbations.
    pub fn create(cfg: SimConfig) -> (SimSender, SimReceiver) {
        let state = Arc::new(Mutex::new(SimState {
            queue: VecDeque::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }));
        let stats = Arc::new(SimStats::default());
        (
            SimSender {
                state: Arc::clone(&state),
                stats: Arc::clone(&stats),
            },
            SimReceiver { state, stats },
        )
    }
}

/// Sending side of the simulated channel.
pub struct SimSender {
    state: Arc<Mutex<SimState>>,
    stats: Arc<SimStats>,
}

impl Sender for SimSender {
    fn send(&self, datagram: &[u8]) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();

        if st.cfg.loss_rate > 0.0 && st.rng.random::<f64>() < st.cfg.loss_rate {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }

        st.queue.push_back(datagram.to_vec());

        if st.cfg.duplicate_rate > 0.0 && st.rng.random::<f64>() < st.cfg.duplicate_rate {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            st.queue.push_back(datagram.to_vec());
        }

        if st.cfg.reorder_rate > 0.0
            && st.queue.len() >= 2
            && st.rng.random::<f64>() < st.cfg.reorder_rate
        {
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
            let n = st.queue.len();
            st.queue.swap(n - 1, n - 2);
        }
    }

    fn sent_count(&self) -> u64 {
        self.stats.sent.load(Ordering::Relaxed)
    }
}

/// Receiving side of the simulated channel.
pub struct SimReceiver {
    state: Arc<Mutex<SimState>>,
    stats: Arc<SimStats>,
}

impl SimReceiver {
    /// Pop the next delivered datagram.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.state.lock().queue.pop_front()
    }

    /// Pop and decode the next datagram. `Some(Err(..))` when a datagram
    /// was delivered but failed protocol decoding.
    pub fn try_recv_message(&self) -> Option<Result<Message, siren_wire::WireError>> {
        self.try_recv().map(|d| Message::decode(&d))
    }

    /// Drain every delivered datagram, decoding; returns the messages and
    /// the count of undecodable datagrams.
    pub fn drain_messages(&self) -> (Vec<Message>, u64) {
        let mut msgs = Vec::new();
        let mut errors = 0u64;
        while let Some(d) = self.try_recv() {
            match Message::decode(&d) {
                Ok(m) => msgs.push(m),
                Err(_) => errors += 1,
            }
        }
        (msgs, errors)
    }

    /// Number of datagrams currently queued for delivery.
    pub fn queued(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Shared delivery statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_delivers_everything_in_order() {
        let (tx, rx) = SimChannel::create(SimConfig::perfect());
        for i in 0..100u32 {
            tx.send(&i.to_le_bytes());
        }
        for i in 0..100u32 {
            assert_eq!(rx.try_recv().unwrap(), i.to_le_bytes());
        }
        assert!(rx.try_recv().is_none());
        assert_eq!(tx.sent_count(), 100);
    }

    #[test]
    fn loss_rate_drops_roughly_expected_fraction() {
        let (tx, rx) = SimChannel::create(SimConfig::with_loss(0.25, 42));
        let n = 10_000;
        for i in 0..n {
            tx.send(&(i as u32).to_le_bytes());
        }
        let delivered = rx.queued() as f64;
        let rate = 1.0 - delivered / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "observed loss {rate}");
        assert_eq!(
            rx.stats().dropped.load(Ordering::Relaxed) + delivered as u64,
            n as u64
        );
    }

    #[test]
    fn same_seed_same_perturbations() {
        let run = || {
            let (tx, rx) = SimChannel::create(SimConfig {
                loss_rate: 0.1,
                duplicate_rate: 0.05,
                reorder_rate: 0.2,
                seed: 777,
            });
            for i in 0..1000u32 {
                tx.send(&i.to_le_bytes());
            }
            let mut out = Vec::new();
            while let Some(d) = rx.try_recv() {
                out.push(d);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let (tx, rx) = SimChannel::create(SimConfig {
            duplicate_rate: 1.0,
            ..SimConfig::default()
        });
        tx.send(b"a");
        assert_eq!(rx.queued(), 2);
        assert_eq!(rx.try_recv().unwrap(), b"a");
        assert_eq!(rx.try_recv().unwrap(), b"a");
    }

    #[test]
    fn reordering_swaps_neighbours() {
        let (tx, rx) = SimChannel::create(SimConfig {
            reorder_rate: 1.0,
            ..SimConfig::default()
        });
        tx.send(b"1");
        tx.send(b"2"); // swapped with "1" on arrival
        assert_eq!(rx.try_recv().unwrap(), b"2");
        assert_eq!(rx.try_recv().unwrap(), b"1");
        assert_eq!(rx.stats().reordered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_counts_decode_errors() {
        let (tx, rx) = SimChannel::create(SimConfig::perfect());
        tx.send(b"garbage");
        let (msgs, errors) = rx.drain_messages();
        assert!(msgs.is_empty());
        assert_eq!(errors, 1);
    }
}
