//! Real UDP over loopback: sender socket + receiver server thread.

use crate::Sender;
use crossbeam::channel::{bounded, Receiver as ChanReceiver, TrySendError};
use siren_wire::Message;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fire-and-forget UDP sender bound to an ephemeral port.
#[derive(Debug)]
pub struct UdpSender {
    socket: UdpSocket,
    sent: AtomicU64,
}

impl UdpSender {
    /// Create a sender targeting `dest` (connects the socket so `send`
    /// needs no per-call address).
    pub fn connect(dest: SocketAddr) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(dest)?;
        Ok(Self { socket, sent: AtomicU64::new(0) })
    }
}

impl Sender for UdpSender {
    fn send(&self, datagram: &[u8]) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        // Graceful failure: a full socket buffer or unreachable receiver
        // must never propagate into the hooked process.
        let _ = self.socket.send(datagram);
    }

    fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

/// Statistics reported by [`UdpReceiver::stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Datagrams read from the socket.
    pub received: u64,
    /// Datagrams that failed protocol decoding.
    pub decode_errors: u64,
    /// Decoded messages dropped because the internal channel was full
    /// (consumer too slow — the bounded-buffer backpressure decision is
    /// to shed load rather than block the socket reader).
    pub overflowed: u64,
}

/// The receiver server: socket-reader thread feeding a bounded channel of
/// decoded [`Message`]s (the Rust equivalent of the paper's Go server with
/// its "buffered channel").
#[derive(Debug)]
pub struct UdpReceiver {
    local_addr: SocketAddr,
    rx: ChanReceiver<Message>,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug, Default)]
struct StatsInner {
    received: AtomicU64,
    decode_errors: AtomicU64,
    overflowed: AtomicU64,
}

impl UdpReceiver {
    /// Bind 127.0.0.1 on an ephemeral port and start the reader thread.
    /// `buffer` is the channel capacity.
    pub fn spawn(buffer: usize) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let local_addr = socket.local_addr()?;
        let (tx, rx) = bounded(buffer);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());

        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("siren-udp-receiver".into())
            .spawn(move || {
                // Largest datagram the protocol produces is bounded by the
                // sender's max_datagram; 64 KiB covers any UDP payload.
                let mut buf = vec![0u8; 65536];
                while !thread_stop.load(Ordering::Relaxed) {
                    match socket.recv(&mut buf) {
                        Ok(n) => {
                            thread_stats.received.fetch_add(1, Ordering::Relaxed);
                            match Message::decode(&buf[..n]) {
                                Ok(msg) => match tx.try_send(msg) {
                                    Ok(()) => {}
                                    Err(TrySendError::Full(_)) => {
                                        thread_stats.overflowed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(TrySendError::Disconnected(_)) => break,
                                },
                                Err(_) => {
                                    thread_stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => break,
                    }
                }
            })?;

        Ok(Self { local_addr, rx, stop, stats, handle: Some(handle) })
    }

    /// The address senders should target.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocking receive with timeout; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Clone of the message channel, for consumer threads.
    pub fn channel(&self) -> ChanReceiver<Message> {
        self.rx.clone()
    }

    /// Stop the reader thread and return final statistics.
    pub fn stop(mut self) -> ReceiverStats {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        ReceiverStats {
            received: self.stats.received.load(Ordering::Relaxed),
            decode_errors: self.stats.decode_errors.load(Ordering::Relaxed),
            overflowed: self.stats.overflowed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for UdpReceiver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::{Layer, MessageHeader, MessageType};

    #[test]
    fn sender_swallows_errors_when_receiver_gone() {
        let receiver = UdpReceiver::spawn(4).unwrap();
        let addr = receiver.local_addr();
        let stats = receiver.stop();
        assert_eq!(stats.received, 0);
        // Receiver is gone; sends must not panic or error.
        let sender = UdpSender::connect(addr).unwrap();
        for _ in 0..10 {
            sender.send(b"into the void");
        }
        assert_eq!(sender.sent_count(), 10);
    }

    #[test]
    fn bounded_channel_sheds_load() {
        let receiver = UdpReceiver::spawn(1).unwrap();
        let sender = UdpSender::connect(receiver.local_addr()).unwrap();
        let msg = Message {
            header: MessageHeader {
                job_id: 1,
                step_id: 0,
                pid: 1,
                exe_hash: "00".into(),
                host: "h".into(),
                time: 1,
                layer: Layer::SelfExe,
                mtype: MessageType::Meta,
            },
            chunk_index: 0,
            chunk_total: 1,
            content: "x".into(),
        };
        // Nobody drains the channel: after the first message, overflow.
        for _ in 0..50 {
            sender.send(&msg.encode());
        }
        // Give the reader thread time to process.
        std::thread::sleep(Duration::from_millis(400));
        let stats = receiver.stop();
        // Loopback can itself drop datagrams under burst; assert only the
        // invariant: received = channel(1) + overflowed, with no decode errors.
        assert!(stats.received >= 1);
        assert_eq!(stats.decode_errors, 0);
        assert!(stats.overflowed >= stats.received.saturating_sub(1));
    }
}
