//! Real UDP over loopback: sender socket + receiver server thread, plus
//! the sharded variants (one socket per shard on both sides) feeding the
//! multi-threaded ingest tier.

use crate::Sender;
use crossbeam::channel::{bounded, Receiver as ChanReceiver, TrySendError};
use polling::{Event, Interest, Poller};
use siren_wire::{Message, ShardRouter};
use std::net::{SocketAddr, UdpSocket};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fire-and-forget UDP sender bound to an ephemeral port.
#[derive(Debug)]
pub struct UdpSender {
    socket: UdpSocket,
    sent: AtomicU64,
}

impl UdpSender {
    /// Create a sender targeting `dest` (connects the socket so `send`
    /// needs no per-call address).
    pub fn connect(dest: SocketAddr) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(dest)?;
        Ok(Self {
            socket,
            sent: AtomicU64::new(0),
        })
    }
}

impl Sender for UdpSender {
    fn send(&self, datagram: &[u8]) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        // Graceful failure: a full socket buffer or unreachable receiver
        // must never propagate into the hooked process.
        let _ = self.socket.send(datagram);
    }

    fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

/// Statistics reported by [`UdpReceiver::stop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Datagrams read from the socket.
    pub received: u64,
    /// Datagrams that failed protocol decoding.
    pub decode_errors: u64,
    /// Decoded messages dropped because the internal channel was full
    /// (consumer too slow — the bounded-buffer backpressure decision is
    /// to shed load rather than block the socket reader).
    pub overflowed: u64,
}

/// The receiver server: socket-reader thread feeding a bounded channel of
/// decoded [`Message`]s (the Rust equivalent of the paper's Go server with
/// its "buffered channel").
///
/// The reader parks on a [`Poller`] rather than a socket read timeout, so
/// it wakes only when datagrams are ready and [`UdpReceiver::stop`] takes
/// effect immediately via `notify` instead of waiting out a timeout tick.
#[derive(Debug)]
pub struct UdpReceiver {
    local_addr: SocketAddr,
    rx: ChanReceiver<Message>,
    stop: Arc<AtomicBool>,
    poller: Arc<Poller>,
    stats: Arc<StatsInner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Poller key for the receiver's single UDP socket.
const UDP_SOCKET_KEY: usize = 0;

#[derive(Debug, Default)]
struct StatsInner {
    received: AtomicU64,
    decode_errors: AtomicU64,
    overflowed: AtomicU64,
}

impl UdpReceiver {
    /// Bind 127.0.0.1 on an ephemeral port and start the reader thread.
    /// `buffer` is the channel capacity.
    pub fn spawn(buffer: usize) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_nonblocking(true)?;
        let local_addr = socket.local_addr()?;
        let poller = Arc::new(Poller::new()?);
        poller.add(socket.as_raw_fd(), UDP_SOCKET_KEY, Interest::READ)?;
        let (tx, rx) = bounded(buffer);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());

        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let thread_poller = Arc::clone(&poller);
        let handle = std::thread::Builder::new()
            .name("siren-udp-receiver".into())
            .spawn(move || {
                // Largest datagram the protocol produces is bounded by the
                // sender's max_datagram; 64 KiB covers any UDP payload.
                let mut buf = vec![0u8; 65536];
                let mut events: Vec<Event> = Vec::new();
                'reader: while !thread_stop.load(Ordering::Relaxed) {
                    events.clear();
                    // Park until the socket is readable or stop() notifies.
                    if thread_poller.wait(&mut events, None).is_err() {
                        break;
                    }
                    // Level-triggered: drain everything ready, then re-park.
                    loop {
                        match socket.recv(&mut buf) {
                            Ok(n) => {
                                thread_stats.received.fetch_add(1, Ordering::Relaxed);
                                match Message::decode(&buf[..n]) {
                                    Ok(msg) => match tx.try_send(msg) {
                                        Ok(()) => {}
                                        Err(TrySendError::Full(_)) => {
                                            thread_stats.overflowed.fetch_add(1, Ordering::Relaxed);
                                        }
                                        Err(TrySendError::Disconnected(_)) => break 'reader,
                                    },
                                    Err(_) => {
                                        thread_stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(_) => break 'reader,
                        }
                    }
                }
                let _ = thread_poller.delete(socket.as_raw_fd());
            })?;

        Ok(Self {
            local_addr,
            rx,
            stop,
            poller,
            stats,
            handle: Some(handle),
        })
    }

    /// The address senders should target.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocking receive with timeout; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Message> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Message> {
        self.rx.try_recv().ok()
    }

    /// Clone of the message channel, for consumer threads.
    pub fn channel(&self) -> ChanReceiver<Message> {
        self.rx.clone()
    }

    /// Stop the reader thread and return final statistics. Takes effect
    /// immediately: the poller is notified, so a parked reader wakes at
    /// once instead of timing out.
    pub fn stop(mut self) -> ReceiverStats {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.poller.notify();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        ReceiverStats {
            received: self.stats.received.load(Ordering::Relaxed),
            decode_errors: self.stats.decode_errors.load(Ordering::Relaxed),
            overflowed: self.stats.overflowed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for UdpReceiver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.poller.notify();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Multi-socket sender for the sharded ingest path: one connected socket
/// per shard, each targeting one receiver of a [`UdpReceiverPool`].
/// Datagrams are routed to the socket of their job's shard (via
/// [`ShardRouter::shard_of_datagram`], the same mapping the ingest
/// workers partition by), so each receiver socket sees exactly its
/// shard's traffic in send order. End-of-campaign sentinels and
/// unroutable datagrams are broadcast to every socket — each receiver
/// must observe the end of each sender's stream.
#[derive(Debug)]
pub struct ShardedUdpSender {
    sockets: Vec<UdpSocket>,
    router: ShardRouter,
    sent: AtomicU64,
}

impl ShardedUdpSender {
    /// Create a sender with one connected socket per destination; shard
    /// `i` maps to `dests[i]`.
    pub fn connect(dests: &[SocketAddr]) -> std::io::Result<Self> {
        assert!(
            !dests.is_empty(),
            "sharded sender needs at least one destination"
        );
        let mut sockets = Vec::with_capacity(dests.len());
        for dest in dests {
            let socket = UdpSocket::bind(("127.0.0.1", 0))?;
            socket.connect(dest)?;
            sockets.push(socket);
        }
        Ok(Self {
            router: ShardRouter::new(sockets.len()),
            sockets,
            sent: AtomicU64::new(0),
        })
    }

    /// The router mapping job ids to destination sockets.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }
}

impl Sender for ShardedUdpSender {
    fn send(&self, datagram: &[u8]) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        match self.router.shard_of_datagram(datagram) {
            // Graceful failure doctrine: socket errors never propagate.
            Some(shard) => {
                let _ = self.sockets[shard].send(datagram);
            }
            None => {
                for socket in &self.sockets {
                    let _ = socket.send(datagram);
                }
            }
        }
    }

    fn sent_count(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

/// A pool of [`UdpReceiver`]s, one socket (and reader thread) per shard.
#[derive(Debug)]
pub struct UdpReceiverPool {
    receivers: Vec<UdpReceiver>,
}

impl UdpReceiverPool {
    /// Bind `shards` loopback receivers, each with its own bounded
    /// channel of capacity `buffer`.
    pub fn spawn(shards: usize, buffer: usize) -> std::io::Result<Self> {
        let receivers = (0..shards.max(1))
            .map(|_| UdpReceiver::spawn(buffer))
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self { receivers })
    }

    /// Destination addresses, index-aligned with shard numbers.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.receivers.iter().map(UdpReceiver::local_addr).collect()
    }

    /// Number of receivers.
    pub fn len(&self) -> usize {
        self.receivers.len()
    }

    /// True when the pool is empty (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.receivers.is_empty()
    }

    /// Hand out the receivers (e.g. one per drain thread).
    pub fn into_receivers(self) -> Vec<UdpReceiver> {
        self.receivers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siren_wire::{sentinel_message, Layer, MessageHeader, MessageType};

    #[test]
    fn sender_swallows_errors_when_receiver_gone() {
        let receiver = UdpReceiver::spawn(4).unwrap();
        let addr = receiver.local_addr();
        let stats = receiver.stop();
        assert_eq!(stats.received, 0);
        // Receiver is gone; sends must not panic or error.
        let sender = UdpSender::connect(addr).unwrap();
        for _ in 0..10 {
            sender.send(b"into the void");
        }
        assert_eq!(sender.sent_count(), 10);
    }

    #[test]
    fn sharded_sender_routes_per_job_and_broadcasts_sentinels() {
        let pool = UdpReceiverPool::spawn(4, 1024).unwrap();
        let addrs = pool.addrs();
        let sender = ShardedUdpSender::connect(&addrs).unwrap();
        let router = *sender.router();

        let msg = |job_id: u64| Message {
            header: MessageHeader {
                job_id,
                step_id: 0,
                pid: 1,
                exe_hash: "00".into(),
                host: "h".into(),
                time: 1,
                layer: Layer::SelfExe,
                mtype: MessageType::Meta,
            },
            chunk_index: 0,
            chunk_total: 1,
            content: format!("job-{job_id}"),
        };

        for job in 0..64u64 {
            sender.send(&msg(job).encode());
        }
        sender.send(&sentinel_message(0, 64).encode());

        let receivers = pool.into_receivers();
        let mut sentinels = 0;
        for (shard, receiver) in receivers.into_iter().enumerate() {
            // Every payload datagram on this socket belongs to this shard.
            while let Some(m) = receiver.recv_timeout(Duration::from_millis(200)) {
                if m.header.mtype == MessageType::End {
                    sentinels += 1;
                    break; // sentinel is the last datagram on each socket
                }
                assert_eq!(router.shard_of(&m), Some(shard));
            }
            let stats = receiver.stop();
            assert_eq!(stats.decode_errors, 0);
        }
        // The sentinel broadcast reached every shard's socket.
        assert_eq!(sentinels, 4, "each receiver must see the sentinel");
    }

    #[test]
    fn bounded_channel_sheds_load() {
        let receiver = UdpReceiver::spawn(1).unwrap();
        let sender = UdpSender::connect(receiver.local_addr()).unwrap();
        let msg = Message {
            header: MessageHeader {
                job_id: 1,
                step_id: 0,
                pid: 1,
                exe_hash: "00".into(),
                host: "h".into(),
                time: 1,
                layer: Layer::SelfExe,
                mtype: MessageType::Meta,
            },
            chunk_index: 0,
            chunk_total: 1,
            content: "x".into(),
        };
        // Nobody drains the channel: after the first message, overflow.
        for _ in 0..50 {
            sender.send(&msg.encode());
        }
        // Give the reader thread time to process.
        std::thread::sleep(Duration::from_millis(400));
        let stats = receiver.stop();
        // Loopback can itself drop datagrams under burst; assert only the
        // invariant: received = channel(1) + overflowed, with no decode errors.
        assert!(stats.received >= 1);
        assert_eq!(stats.decode_errors, 0);
        assert!(stats.overflowed >= stats.received.saturating_sub(1));
    }
}
