//! Log-linear histogram: power-of-two ranges split into 16 linear
//! sub-buckets, so any recorded value lands in a bucket whose width is
//! at most 1/16 of its magnitude (≤ 6.25 % relative quantile error).
//!
//! The layout is index-stable: bucket `i` covers the same value range
//! in every histogram, which is what makes snapshots mergeable by
//! summing counts per index — merge is associative and commutative by
//! construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two range (and the exact-bucket
/// cutoff: values below 16 each get their own bucket).
const SUB: usize = 16;

/// Total addressable buckets: 16 exact + 16 per exponent 4..=63.
pub const BUCKETS: usize = SUB + (64 - 4) * SUB;

/// Bucket index for `value`. Values below 16 map exactly; above, the
/// exponent selects a power-of-two range and the next four significant
/// bits select the linear sub-bucket.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize; // >= 4
    let sub = ((value >> (exp - 4)) & 0xF) as usize;
    (exp - 3) * SUB + sub
}

/// Inclusive `(lo, hi)` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if index < SUB {
        return (index as u64, index as u64);
    }
    let exp = index / SUB + 3;
    let sub = (index % SUB) as u64;
    let width = 1u64 << (exp - 4);
    let lo = (1u64 << exp) + sub * width;
    (lo, lo + (width - 1))
}

/// Concurrent log-linear histogram.
///
/// `record` is two relaxed atomic RMWs plus one `fetch_max`; there is
/// no lock anywhere. The bucket array is allocated eagerly (~7.6 KiB)
/// so recording never allocates.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh empty histogram (detached from any registry).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.try_into().expect("BUCKETS-sized vec"),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record one observation of an elapsed duration, in nanoseconds.
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(elapsed.as_nanos() as u64);
    }

    /// Point-in-time copy. Concurrent recording during the walk can
    /// skew `count`/`sum` against each other by the in-flight handful —
    /// acceptable for telemetry, never corrupting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u16, n));
                count += n;
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state: sparse `(bucket_index, count)` pairs sorted
/// by index, plus exact sum and max. This is the form that crosses the
/// wire and the form quantiles are computed from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucket-rounded).
    pub max: u64,
    /// Sparse non-empty buckets, ascending by index.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 when empty. The true value is within one
    /// bucket width (≤ 1/16 relative) of the returned bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_bounds(index as usize);
                // The top bucket's bound can overshoot the true max;
                // the exact max is known, so clamp to it.
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`: per-index count sum, value sum, max.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u16, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        // Wrapping to match the recorder's relaxed `fetch_add`, which
        // wraps on overflow; keeps merge exactly associative.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every index's range starts exactly one past the previous
        // index's end: no gaps, no overlaps.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} does not tile");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("bucket ranges never reached u64::MAX");
    }

    #[test]
    fn values_land_in_their_own_bucket() {
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantiles_of_uniform_recording() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // Log-linear error is ≤ 1/16 of the value's magnitude.
        let p50 = s.p50();
        assert!((470..=560).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((980..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn merge_matches_joint_recording() {
        let (a, b, joint) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            a.record(v * 3);
            joint.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 1);
            joint.record(v * 7 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, joint.snapshot());
    }
}
