//! Lock-free metrics and lightweight tracing for the SIREN pipeline.
//!
//! Dependency-free by design: everything here is `std` atomics plus one
//! cold-path mutex in the slow-query ring. The crate provides four
//! primitives and one aggregation point:
//!
//! - [`Counter`] — monotonic, sharded across cache lines so concurrent
//!   writers on different threads do not bounce one hot line;
//! - [`Gauge`] — instantaneous level plus a high-water mark;
//! - [`Histogram`] — log-linear latency/size buckets (≤ 1/16 relative
//!   error), mergeable, with p50/p90/p99 and exact-max extraction;
//! - [`SlowQueryLog`] — capacity-bounded ring of the worst offenders;
//! - [`Registry`] — the named tree of all of the above, snapshotted
//!   cheaply into a typed [`MetricsSnapshot`] or a stable text
//!   exposition.
//!
//! Request tracing lives beside the metrics: a [`Span`] guard records
//! one stage of one request into an always-on bounded [`SpanBuffer`]
//! flight recorder, and a [`TraceStore`] reassembles whatever the ring
//! still holds into [`TraceTree`]s on demand (see the `trace` module
//! docs).
//!
//! Handles are registered once at component startup (`registry.counter
//! ("ingest.datagrams")`) and cached; the hot path touches only the
//! returned atomics. Components that can run standalone create a
//! private detached [`Registry`] when the caller does not supply one,
//! so instrumentation code never branches on an `Option`.

mod hist;
mod registry;
mod slow;
mod trace;

pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{GaugeSnapshot, MetricsSnapshot, Registry};
pub use slow::{SlowQueryEntry, SlowQueryLog};
pub use trace::{
    Span, SpanBuffer, SpanId, SpanRecord, TraceFilter, TraceId, TraceStore, TraceTree,
    DEFAULT_SPAN_CAPACITY, DEFAULT_TRACE_LIMIT, FINGERPRINT_ANNOTATION, MAX_ANNOTATION_LEN,
    MAX_SPAN_ANNOTATIONS,
};

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counter shard count; power of two so the thread slot is a mask.
const SHARDS: usize = 8;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread is pinned round-robin to one shard for its lifetime;
    /// the assignment only needs to spread concurrent writers, not be
    /// fair.
    static THREAD_SHARD: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// One cache line per shard so counters on different threads never
/// contend on the same line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Monotonic counter, sharded across cache lines.
///
/// `add` touches a single shard owned (statistically) by the calling
/// thread; `get` sums all shards. Reads are racy across shards, which
/// is fine for telemetry: every increment is eventually visible and
/// none is lost.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Fresh zeroed counter (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Instantaneous level with a high-water mark.
///
/// The level may go up and down (open cursors, in-flight requests); the
/// high-water mark records the largest level ever observed by a writer.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// Fresh zeroed gauge (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` (may be negative) and update the high-water mark.
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the level and update the high-water mark.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
        self.high_water.fetch_max(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest level ever observed.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Span timer: records elapsed nanoseconds into a histogram on drop.
///
/// ```
/// # use std::sync::Arc;
/// # use siren_obs::{Histogram, Timer};
/// let hist = Arc::new(Histogram::new());
/// {
///     let _span = Timer::start(Arc::clone(&hist));
///     // ... timed work ...
/// }
/// assert_eq!(hist.snapshot().count, 1);
/// ```
#[derive(Debug)]
pub struct Timer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Timer {
    /// Begin a span against `hist`.
    pub fn start(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            start: Instant::now(),
        }
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// End the span now (equivalent to dropping it).
    pub fn stop(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// Time `f`, recording elapsed nanoseconds into `hist`.
pub fn time<R>(hist: &Histogram, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let out = f();
    hist.record(start.elapsed().as_nanos() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        g.add(-6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 8);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 8);
    }

    #[test]
    fn timer_records_on_drop() {
        let hist = Arc::new(Histogram::new());
        Timer::start(Arc::clone(&hist)).stop();
        drop(Timer::start(Arc::clone(&hist)));
        let snap = hist.snapshot();
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn time_returns_closure_result() {
        let hist = Histogram::new();
        let out = time(&hist, || 7 * 6);
        assert_eq!(out, 42);
        assert_eq!(hist.snapshot().count, 1);
    }
}
