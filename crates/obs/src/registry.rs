//! The named metric tree.
//!
//! Names are dotted paths, `<area>.<metric>[_<unit>]` — e.g.
//! `ingest.datagrams`, `store.wal_fsync_ns`, `query.exec_ns`,
//! `cursor.open`. Handles are registered once at startup (get-or-create
//! by name) and cached by the instrumented component; the registry's
//! locks are touched only at registration and snapshot time, never on
//! the recording path.

use crate::{Counter, Gauge, Histogram, HistogramSnapshot, SlowQueryEntry, SlowQueryLog};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Entries retained by the registry's slow-query ring.
const SLOW_QUERY_CAPACITY: usize = 128;

/// Central registry: all named metrics of one daemon (or one
/// standalone component, which creates a private detached registry when
/// the caller does not supply a shared one).
#[derive(Debug)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    slow_queries: SlowQueryLog,
    /// Monotonic creation instant — the zero point of every snapshot's
    /// `uptime_ns` capture timestamp.
    created: Instant,
}

/// Recover a read guard from a poisoned lock: a panicking recorder
/// thread must not take the whole telemetry surface down with it. The
/// maps only ever *gain* entries, so the state behind a poisoned lock
/// is still structurally sound.
fn read_recovered<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Recover a write guard from a poisoned lock (see [`read_recovered`]).
fn write_recovered<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            slow_queries: SlowQueryLog::new(SLOW_QUERY_CAPACITY),
            created: Instant::now(),
        }
    }

    /// Get-or-register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read_recovered(&self.counters).get(name) {
            return Arc::clone(c);
        }
        let mut map = write_recovered(&self.counters);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get-or-register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read_recovered(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        let mut map = write_recovered(&self.gauges);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get-or-register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = read_recovered(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        let mut map = write_recovered(&self.histograms);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Nanoseconds since the registry was created — the capture
    /// timestamp a snapshot carries.
    pub fn uptime_ns(&self) -> u64 {
        self.created.elapsed().as_nanos() as u64
    }

    /// The registry's slow-query ring.
    pub fn slow_queries(&self) -> &SlowQueryLog {
        &self.slow_queries
    }

    /// Freeze the whole metric tree. Cost is proportional to the number
    /// of registered metrics and their non-empty buckets; recording
    /// proceeds concurrently, unblocked.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_ns: self.uptime_ns(),
            counters: read_recovered(&self.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: read_recovered(&self.gauges)
                .iter()
                .map(|(name, g)| {
                    (
                        name.clone(),
                        GaugeSnapshot {
                            value: g.get(),
                            high_water: g.high_water(),
                        },
                    )
                })
                .collect(),
            histograms: read_recovered(&self.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            slow_queries: self.slow_queries.entries(),
        }
    }
}

/// Frozen gauge state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: i64,
    /// Largest level ever observed.
    pub high_water: i64,
}

/// Typed snapshot of a whole [`Registry`]: what `QueryRequest::Metrics`
/// returns over the wire. Entries are sorted by name (the registry
/// iterates `BTreeMap`s), which makes the text exposition stable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Capture timestamp: monotonic nanoseconds since the registry was
    /// created. Two snapshots of the same registry subtract cleanly, so
    /// clients can turn monotonically-increasing counts into rates.
    pub uptime_ns: u64,
    /// `(name, total)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, state)` pairs, ascending by name.
    pub gauges: Vec<(String, GaugeSnapshot)>,
    /// `(name, state)` pairs, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Slow-query ring contents, oldest first.
    pub slow_queries: Vec<SlowQueryEntry>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 when absent — absent and never
    /// incremented are indistinguishable by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Gauge state by name.
    pub fn gauge(&self, name: &str) -> Option<GaugeSnapshot> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.gauges[i].1)
            .ok()
    }

    /// Histogram state by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| &self.histograms[i].1)
            .ok()
    }

    /// Stable text exposition: one line per metric, sorted by kind then
    /// name, parse-friendly and diff-friendly.
    ///
    /// ```text
    /// uptime_ns 1500000000
    /// counter ingest.datagrams 1500
    /// gauge cursor.open 2 high=5
    /// hist query.exec_ns count=12 p50=81920 p90=163840 p99=196608 max=190211 mean=88102
    /// slow fp=00000000deadbeef rows=50000 ns=12000000 trace=00000000000000a1 shape=byjob/rows
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("uptime_ns {}\n", self.uptime_ns));
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!("gauge {name} {} high={}\n", g.value, g.high_water));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "hist {name} count={} p50={} p90={} p99={} max={} mean={}\n",
                h.count,
                h.p50(),
                h.p90(),
                h.p99(),
                h.max,
                h.mean(),
            ));
        }
        for entry in &self.slow_queries {
            out.push_str(&format!(
                "slow fp={:016x} rows={} ns={} trace={:016x} shape={}\n",
                entry.fingerprint, entry.rows, entry.total_ns, entry.trace_id, entry.shape
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.hits").get(), 3);
        assert_eq!(reg.snapshot().counter("x.hits"), 3);
        assert_eq!(reg.snapshot().counter("x.misses"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_lookup_works() {
        let reg = Registry::new();
        reg.counter("b.two").add(2);
        reg.counter("a.one").add(1);
        reg.gauge("z.level").set(4);
        reg.histogram("m.lat_ns").record(100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
        assert_eq!(snap.gauge("z.level").unwrap().value, 4);
        assert_eq!(snap.gauge("missing"), None);
        assert_eq!(snap.histogram("m.lat_ns").unwrap().count, 1);
    }

    #[test]
    fn text_exposition_is_stable() {
        let reg = Registry::new();
        reg.counter("ingest.datagrams").add(5);
        reg.gauge("cursor.open").set(2);
        reg.histogram("query.exec_ns").record(1000);
        reg.slow_queries().push(SlowQueryEntry {
            fingerprint: 0xdead_beef,
            shape: "byjob/rows".into(),
            rows: 10,
            total_ns: 999,
            trace_id: 0xa1,
        });
        let snap = reg.snapshot();
        let text = snap.render_text();
        assert!(text.starts_with("uptime_ns "), "{text}");
        assert!(text.contains("counter ingest.datagrams 5\n"), "{text}");
        assert!(text.contains("gauge cursor.open 2 high=2\n"), "{text}");
        assert!(text.contains("hist query.exec_ns count=1"), "{text}");
        assert!(
            text.contains(
                "slow fp=00000000deadbeef rows=10 ns=999 trace=00000000000000a1 shape=byjob/rows\n"
            ),
            "{text}"
        );
        // Stable: the same counts render identically; only the capture
        // timestamp moves between two snapshots.
        let mut later = reg.snapshot();
        assert!(later.uptime_ns >= snap.uptime_ns);
        later.uptime_ns = snap.uptime_ns;
        assert_eq!(text, later.render_text());
    }

    #[test]
    fn registry_survives_a_poisoned_lock() {
        let reg = Arc::new(Registry::new());
        reg.counter("a.hits").inc();
        // Poison every lock by panicking while holding the guards.
        for _ in 0..3 {
            let reg = Arc::clone(&reg);
            let _ = std::thread::spawn(move || {
                let _c = reg.counters.write().unwrap();
                let _g = reg.gauges.write().unwrap();
                let _h = reg.histograms.write().unwrap();
                panic!("recorder thread crash");
            })
            .join();
        }
        // Registration and snapshotting still work.
        reg.counter("a.hits").inc();
        reg.gauge("b.level").set(7);
        reg.histogram("c.lat_ns").record(10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.hits"), 2);
        assert_eq!(snap.gauge("b.level").unwrap().value, 7);
        assert_eq!(snap.histogram("c.lat_ns").unwrap().count, 1);
    }
}
