//! Bounded slow-query ring.
//!
//! Queries crossing the daemon's slowness threshold are pushed here;
//! the ring keeps the most recent `capacity` entries and drops the
//! oldest. The mutex is fine: by definition the log is only touched by
//! queries that already spent orders of magnitude longer executing.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One slow query, as surfaced through the metrics reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// FNV-1a/64 over the encoded plan: stable across runs, joinable
    /// against client-side logs without shipping the plan itself.
    pub fingerprint: u64,
    /// Human-readable selection shape, e.g. `byjob+prefix/rows`.
    pub shape: String,
    /// Rows the query produced.
    pub rows: u64,
    /// End-to-end execution time in nanoseconds.
    pub total_ns: u64,
    /// Trace id of the request (`0` when it was untraced), joinable
    /// against the trace flight recorder for the span breakdown.
    pub trace_id: u64,
}

/// Capacity-bounded ring of [`SlowQueryEntry`]s, newest last.
#[derive(Debug)]
pub struct SlowQueryLog {
    ring: Mutex<VecDeque<SlowQueryEntry>>,
    capacity: usize,
}

impl SlowQueryLog {
    /// Ring holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Append an entry, evicting the oldest at capacity. A lock left
    /// poisoned by a crashed recorder thread is recovered — the ring
    /// holds plain owned entries, so its state is sound regardless.
    pub fn push(&self, entry: SlowQueryEntry) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fingerprint: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            fingerprint,
            shape: "byjob/rows".into(),
            rows: fingerprint * 10,
            total_ns: fingerprint * 1000,
            trace_id: fingerprint ^ 0xff,
        }
    }

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let log = SlowQueryLog::new(3);
        for i in 0..5 {
            log.push(entry(i));
        }
        let kept: Vec<u64> = log.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(log.len(), 3);
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let log = SlowQueryLog::new(0);
        log.push(entry(1));
        log.push(entry(2));
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].fingerprint, 2);
    }
}
