//! Dependency-free request tracing: span guards, a bounded flight
//! recorder, and on-demand trace-tree reassembly.
//!
//! A [`Span`] is a drop guard: created against a [`SpanBuffer`], it
//! records a monotonic start offset, and on drop pushes one completed
//! [`SpanRecord`] (stage name, parent link, duration, bounded key/value
//! annotations) into the buffer's ring. The ring is the **flight
//! recorder**: always on, capacity-bounded, oldest spans overwritten —
//! the cost of tracing is one short mutex push per *completed* span,
//! nothing on the hot path in between.
//!
//! Trace identity is a 64-bit [`TraceId`] (client-supplied over the
//! wire or generated at the root) plus per-span [`SpanId`]s; both are
//! never zero, so the wire can use `0` as "absent". Spans of one
//! request can complete on different threads and out of order — a
//! cursor fetch parents itself to the plan's root span long after that
//! root completed. [`TraceStore::traces`] reassembles whatever the ring
//! still holds into [`TraceTree`]s on demand, filtered by trace id,
//! plan fingerprint, minimum duration, or stage name.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Annotations kept per span; later `annotate` calls are dropped.
pub const MAX_SPAN_ANNOTATIONS: usize = 8;

/// Longest annotation key or value kept; longer strings are truncated
/// (annotation values can carry untrusted ingest-derived strings).
pub const MAX_ANNOTATION_LEN: usize = 120;

/// Completed spans the default flight recorder retains.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Traces a [`TraceFilter`] with `limit == 0` returns.
pub const DEFAULT_TRACE_LIMIT: usize = 16;

/// Annotation key under which plan-executing spans record the plan
/// fingerprint (as 16 hex digits) — what joins a slow-query ring entry
/// or a client-side log to its trace.
pub const FINGERPRINT_ANNOTATION: &str = "plan.fp";

/// 64-bit trace identity; never zero (zero is "absent" on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// 64-bit span identity, unique within the process; never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl TraceId {
    /// A fresh process-unique trace id.
    pub fn generate() -> Self {
        Self(next_id())
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Non-zero 64-bit ids: a per-process random-ish seed (wall clock at
/// first use) mixed with a monotone counter through splitmix64, so ids
/// are unique within the process and don't collide across restarts.
fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5151_5151_5151_5151)
    });
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    match splitmix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
        0 => 1,
        id => id,
    }
}

/// One completed span, as held by the flight recorder and shipped in a
/// `Traces` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's identity.
    pub id: SpanId,
    /// Parent span within the trace (`None` for roots).
    pub parent: Option<SpanId>,
    /// Pipeline stage name, e.g. `request.plan`, `serialize`.
    pub stage: String,
    /// Monotonic start, nanoseconds since the buffer was created.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Bounded key/value annotations, in `annotate` order.
    pub annotations: Vec<(String, String)>,
}

impl SpanRecord {
    /// End offset (`start_ns + duration_ns`) in buffer time.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.duration_ns)
    }

    /// Annotation value by key, if recorded.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// The bounded flight recorder: a ring of completed [`SpanRecord`]s,
/// always on, oldest overwritten. One short mutex push per completed
/// span; the lock is recovered (never abandoned) if a recording thread
/// panicked mid-push.
#[derive(Debug)]
pub struct SpanBuffer {
    created: Instant,
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    overwritten: AtomicU64,
}

impl SpanBuffer {
    /// A recorder retaining at most `capacity` completed spans
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            created: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            overwritten: AtomicU64::new(0),
        }
    }

    /// Nanoseconds elapsed since the buffer was created — the time base
    /// every span's `start_ns` is expressed in.
    pub fn now_ns(&self) -> u64 {
        self.created.elapsed().as_nanos() as u64
    }

    /// Open a root span: a fresh trace when `trace` is `None` (the
    /// server-generated root for an untraced request), or a client- or
    /// caller-supplied trace id.
    pub fn root(self: &Arc<Self>, stage: &str, trace: Option<TraceId>) -> Span {
        let trace = trace.unwrap_or_else(TraceId::generate);
        Span::open(Arc::clone(self), trace, None, stage)
    }

    /// Open a span under an explicit `(trace, parent)` context — how a
    /// cursor fetch rejoins the trace its plan opened, possibly on
    /// another thread and after the parent completed.
    pub fn child_of(self: &Arc<Self>, trace: TraceId, parent: SpanId, stage: &str) -> Span {
        Span::open(Arc::clone(self), trace, Some(parent), stage)
    }

    /// Record an already-measured interval as a completed span — for
    /// stages timed before their trace existed (queue wait is measured
    /// from accept, but the trace id only arrives with the first
    /// request frame).
    pub fn record_past(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        stage: &str,
        start: Instant,
        duration: Duration,
    ) -> SpanId {
        let id = SpanId(next_id());
        self.push(SpanRecord {
            trace,
            id,
            parent,
            stage: stage.to_string(),
            start_ns: start.saturating_duration_since(self.created).as_nanos() as u64,
            duration_ns: duration.as_nanos() as u64,
            annotations: Vec::new(),
        });
        id
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Completed spans currently retained, oldest first.
    pub fn completed(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Completed spans currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no span has completed yet (or all were overwritten).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum completed spans retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans overwritten by newer ones since creation — how far back
    /// the flight recorder no longer reaches.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }
}

impl Default for SpanBuffer {
    fn default() -> Self {
        Self::new(DEFAULT_SPAN_CAPACITY)
    }
}

/// An open span: drop it (or call [`Span::finish`]) to record it.
#[derive(Debug)]
pub struct Span {
    buffer: Arc<SpanBuffer>,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    stage: String,
    started: Instant,
    start_ns: u64,
    annotations: Vec<(String, String)>,
}

impl Span {
    fn open(buffer: Arc<SpanBuffer>, trace: TraceId, parent: Option<SpanId>, stage: &str) -> Self {
        let start_ns = buffer.now_ns();
        Self {
            buffer,
            trace,
            id: SpanId(next_id()),
            parent,
            stage: stage.to_string(),
            started: Instant::now(),
            start_ns,
            annotations: Vec::new(),
        }
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// This span's identity (what children parent to).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Open a child span in the same trace (same buffer).
    pub fn child(&self, stage: &str) -> Span {
        self.buffer.child_of(self.trace, self.id, stage)
    }

    /// Attach a key/value annotation. Bounded: at most
    /// [`MAX_SPAN_ANNOTATIONS`] are kept (later calls are dropped
    /// silently) and both strings are truncated to
    /// [`MAX_ANNOTATION_LEN`] bytes on a char boundary.
    pub fn annotate(&mut self, key: &str, value: &str) {
        if self.annotations.len() >= MAX_SPAN_ANNOTATIONS {
            return;
        }
        self.annotations
            .push((clamp(key).to_string(), clamp(value).to_string()));
    }

    /// Record the plan fingerprint under [`FINGERPRINT_ANNOTATION`].
    pub fn annotate_fingerprint(&mut self, fingerprint: u64) {
        self.annotate(FINGERPRINT_ANNOTATION, &format!("{fingerprint:016x}"));
    }

    /// Elapsed time so far, without completing the span.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Complete the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.buffer.push(SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            stage: std::mem::take(&mut self.stage),
            start_ns: self.start_ns,
            duration_ns: self.started.elapsed().as_nanos() as u64,
            annotations: std::mem::take(&mut self.annotations),
        });
    }
}

/// Truncate to [`MAX_ANNOTATION_LEN`] bytes on a char boundary.
fn clamp(s: &str) -> &str {
    if s.len() <= MAX_ANNOTATION_LEN {
        return s;
    }
    let mut end = MAX_ANNOTATION_LEN;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Which traces a [`TraceStore::traces`] call (or a wire `Traces`
/// request) wants. All present conditions are ANDed; the default filter
/// returns the most recent [`DEFAULT_TRACE_LIMIT`] traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Only this trace id.
    pub trace: Option<TraceId>,
    /// Only traces containing a span annotated with this plan
    /// fingerprint (see [`FINGERPRINT_ANNOTATION`]).
    pub fingerprint: Option<u64>,
    /// Only traces spanning at least this many nanoseconds end to end.
    pub min_duration_ns: Option<u64>,
    /// Only traces containing a span with this stage name.
    pub stage: Option<String>,
    /// Most recent traces returned; `0` means [`DEFAULT_TRACE_LIMIT`].
    pub limit: u32,
}

impl TraceFilter {
    /// The unconditional filter (most recent traces, default limit).
    pub fn recent() -> Self {
        Self::default()
    }

    /// Restrict to one trace id.
    pub fn trace(mut self, trace: TraceId) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Restrict to traces touching one plan fingerprint.
    pub fn fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// Restrict to traces at least `ns` nanoseconds long end to end.
    pub fn min_duration_ns(mut self, ns: u64) -> Self {
        self.min_duration_ns = Some(ns);
        self
    }

    /// Restrict to traces containing a span with `stage`.
    pub fn stage(mut self, stage: impl Into<String>) -> Self {
        self.stage = Some(stage.into());
        self
    }

    /// Cap returned traces (`0` = default).
    pub fn limit(mut self, limit: u32) -> Self {
        self.limit = limit;
        self
    }

    fn matches(&self, tree: &TraceTree) -> bool {
        if let Some(trace) = self.trace {
            if tree.trace != trace {
                return false;
            }
        }
        if let Some(fp) = self.fingerprint {
            let hex = format!("{fp:016x}");
            if !tree.spans.iter().any(|s| {
                s.annotation(FINGERPRINT_ANNOTATION)
                    .is_some_and(|v| v == hex)
            }) {
                return false;
            }
        }
        if let Some(min) = self.min_duration_ns {
            if tree.duration_ns() < min {
                return false;
            }
        }
        if let Some(stage) = &self.stage {
            if !tree.spans.iter().any(|s| &s.stage == stage) {
                return false;
            }
        }
        true
    }
}

/// One reassembled trace: every span of one [`TraceId`] the flight
/// recorder still held, sorted by start offset. Parent links are by
/// [`SpanId`]; a span whose parent was already overwritten renders as
/// an orphan root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The trace id all spans share.
    pub trace: TraceId,
    /// Spans sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// The root span: the earliest span with no (present) parent.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .find(|s| match s.parent {
                None => true,
                Some(p) => !self.spans.iter().any(|o| o.id == p),
            })
            .or(self.spans.first())
    }

    /// End-to-end extent: latest span end minus earliest span start.
    pub fn duration_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self.spans.iter().map(SpanRecord::end_ns).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Most recent span start — the recency key `traces` sorts by.
    pub fn last_start_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.start_ns).max().unwrap_or(0)
    }

    /// True when any span carries `stage`.
    pub fn contains_stage(&self, stage: &str) -> bool {
        self.spans.iter().any(|s| s.stage == stage)
    }
}

/// The queryable face of the flight recorder: shares one
/// [`SpanBuffer`] and reassembles its contents into [`TraceTree`]s on
/// demand. Cloning shares the buffer.
#[derive(Debug, Clone)]
pub struct TraceStore {
    buffer: Arc<SpanBuffer>,
}

impl TraceStore {
    /// A store over a fresh recorder retaining `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            buffer: Arc::new(SpanBuffer::new(capacity)),
        }
    }

    /// The shared flight recorder spans are recorded into.
    pub fn buffer(&self) -> &Arc<SpanBuffer> {
        &self.buffer
    }

    /// Reassemble the recorder's current contents into trace trees
    /// matching `filter`, most recent first, capped by `filter.limit`.
    pub fn traces(&self, filter: &TraceFilter) -> Vec<TraceTree> {
        let mut by_trace: BTreeMap<TraceId, Vec<SpanRecord>> = BTreeMap::new();
        for span in self.buffer.completed() {
            by_trace.entry(span.trace).or_default().push(span);
        }
        let mut trees: Vec<TraceTree> = by_trace
            .into_iter()
            .map(|(trace, mut spans)| {
                spans.sort_by_key(|s| (s.start_ns, s.id));
                TraceTree { trace, spans }
            })
            .filter(|tree| filter.matches(tree))
            .collect();
        trees.sort_by_key(|t| std::cmp::Reverse(t.last_start_ns()));
        let limit = match filter.limit {
            0 => DEFAULT_TRACE_LIMIT,
            n => n as usize,
        };
        trees.truncate(limit);
        trees
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(DEFAULT_SPAN_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn span_guard_records_tree_shape() {
        let buffer = Arc::new(SpanBuffer::new(64));
        let trace;
        {
            let mut root = buffer.root("request.plan", None);
            trace = root.trace();
            root.annotate_fingerprint(0xdead_beef);
            {
                let mut child = root.child("exec");
                child.annotate("rows", "10");
                let _grandchild = child.child("serialize");
            }
        }
        let spans = buffer.completed();
        assert_eq!(spans.len(), 3);
        // Completion order is inside-out; every span shares the trace.
        assert!(spans.iter().all(|s| s.trace == trace));
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
        assert_eq!(root.stage, "request.plan");
        assert_eq!(
            root.annotation(FINGERPRINT_ANNOTATION),
            Some("00000000deadbeef")
        );
        let exec = spans.iter().find(|s| s.stage == "exec").unwrap();
        assert_eq!(exec.parent, Some(root.id));
        assert_eq!(exec.annotation("rows"), Some("10"));
        let leaf = spans.iter().find(|s| s.stage == "serialize").unwrap();
        assert_eq!(leaf.parent, Some(exec.id));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let buffer = Arc::new(SpanBuffer::new(2));
        for i in 0..5 {
            buffer.root(&format!("s{i}"), None).finish();
        }
        let spans = buffer.completed();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "s3");
        assert_eq!(spans[1].stage, "s4");
        assert_eq!(buffer.overwritten(), 3);
    }

    #[test]
    fn annotations_are_bounded_and_clamped() {
        let buffer = Arc::new(SpanBuffer::new(4));
        {
            let mut span = buffer.root("s", None);
            for i in 0..(MAX_SPAN_ANNOTATIONS + 3) {
                span.annotate(&format!("k{i}"), &"v".repeat(500));
            }
        }
        let spans = buffer.completed();
        assert_eq!(spans[0].annotations.len(), MAX_SPAN_ANNOTATIONS);
        assert!(spans[0]
            .annotations
            .iter()
            .all(|(_, v)| v.len() == MAX_ANNOTATION_LEN));
    }

    #[test]
    fn record_past_lands_with_given_interval() {
        let buffer = SpanBuffer::new(4);
        let trace = TraceId::generate();
        std::thread::sleep(Duration::from_millis(2));
        buffer.record_past(
            trace,
            None,
            "queue_wait",
            Instant::now(),
            Duration::from_micros(250),
        );
        let spans = buffer.completed();
        assert_eq!(spans[0].stage, "queue_wait");
        assert_eq!(spans[0].trace, trace);
        assert_eq!(spans[0].duration_ns, 250_000);
        assert!(spans[0].start_ns > 0);
    }

    #[test]
    fn store_reassembles_and_filters() {
        let store = TraceStore::new(64);
        let buffer = store.buffer();
        let (t1, root_id);
        {
            let mut root = buffer.root("request.plan", None);
            root.annotate_fingerprint(0xabcd);
            t1 = root.trace();
            root_id = root.id();
            root.child("exec").finish();
        }
        // A later fetch rejoins t1 from stored context.
        buffer.child_of(t1, root_id, "request.fetch").finish();
        // An unrelated trace.
        buffer.root("maintain.merge", None).finish();

        let all = store.traces(&TraceFilter::recent());
        assert_eq!(all.len(), 2);
        // Most recent first: the merge completed last.
        assert!(all[0].contains_stage("maintain.merge"));

        let by_id = store.traces(&TraceFilter::recent().trace(t1));
        assert_eq!(by_id.len(), 1);
        assert_eq!(by_id[0].spans.len(), 3);
        assert_eq!(by_id[0].root().unwrap().stage, "request.plan");
        assert!(by_id[0].contains_stage("request.fetch"));

        let by_fp = store.traces(&TraceFilter::recent().fingerprint(0xabcd));
        assert_eq!(by_fp.len(), 1);
        assert_eq!(by_fp[0].trace, t1);
        assert!(store
            .traces(&TraceFilter::recent().fingerprint(0x9999))
            .is_empty());

        let by_stage = store.traces(&TraceFilter::recent().stage("exec"));
        assert_eq!(by_stage.len(), 1);
        assert!(store
            .traces(&TraceFilter::recent().min_duration_ns(u64::MAX))
            .is_empty());
    }

    #[test]
    fn limit_keeps_most_recent() {
        let store = TraceStore::new(256);
        for i in 0..10 {
            store.buffer().root(&format!("s{i}"), None).finish();
        }
        let trees = store.traces(&TraceFilter::recent().limit(3));
        assert_eq!(trees.len(), 3);
        assert!(trees[0].contains_stage("s9"));
        let defaulted = store.traces(&TraceFilter::recent());
        assert_eq!(defaulted.len(), 10.min(DEFAULT_TRACE_LIMIT));
    }

    #[test]
    fn orphaned_child_is_its_own_root() {
        let store = TraceStore::new(8);
        let trace = TraceId::generate();
        store
            .buffer()
            .child_of(trace, SpanId(42), "request.fetch")
            .finish();
        let trees = store.traces(&TraceFilter::recent().trace(trace));
        assert_eq!(trees[0].root().unwrap().stage, "request.fetch");
    }
}
