//! Property tests for the histogram (merge associativity, quantile
//! bucket bounds) and a concurrent-recording stress test.

use proptest::test_runner::{rng_for, TestRng};
use siren_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};
use std::sync::Arc;

/// A value drawn across all magnitudes: uniform bits under a random
/// width so small and huge values are equally represented.
fn arb_value(rng: &mut TestRng) -> u64 {
    let width = rng.below(64) + 1;
    if width == 64 {
        rng.next_u64()
    } else {
        rng.next_u64() & ((1u64 << width) - 1)
    }
}

fn arb_snapshot(rng: &mut TestRng) -> HistogramSnapshot {
    let h = Histogram::new();
    for _ in 0..rng.below(200) {
        h.record(arb_value(rng));
    }
    h.snapshot()
}

#[test]
fn recorded_value_always_within_its_bucket_bounds() {
    let mut rng = rng_for("obs-bucket-bounds");
    for _ in 0..20_000 {
        let v = arb_value(&mut rng);
        let (lo, hi) = bucket_bounds(bucket_index(v));
        assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
    }
}

#[test]
fn quantile_is_bounded_by_observations() {
    let mut rng = rng_for("obs-quantile-bounds");
    for _ in 0..200 {
        let mut values: Vec<u64> = (0..rng.below(100) + 1)
            .map(|_| arb_value(&mut rng))
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = s.quantile(q);
            // The estimate is the upper bound of the bucket holding the
            // rank-q observation (clamped to the exact max): it can
            // never under-shoot the true quantile's bucket floor nor
            // exceed the largest observation.
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let true_q = values[rank.min(values.len() - 1)];
            let (true_lo, _) = bucket_bounds(bucket_index(true_q));
            assert!(
                est >= true_lo,
                "q={q}: est {est} below bucket floor {true_lo}"
            );
            assert!(est <= s.max, "q={q}: est {est} above max {}", s.max);
        }
    }
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = rng_for("obs-merge-assoc");
    for _ in 0..100 {
        let (a, b, c) = (
            arb_snapshot(&mut rng),
            arb_snapshot(&mut rng),
            arb_snapshot(&mut rng),
        );

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right, "merge is not associative");

        // b + a == a + b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is not commutative");
    }
}

#[test]
fn merge_identity_is_empty_snapshot() {
    let mut rng = rng_for("obs-merge-identity");
    for _ in 0..50 {
        let a = arb_snapshot(&mut rng);
        let mut merged = a.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, a);
    }
}

#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25_000;
    let h = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut rng = rng_for(&format!("obs-stress-{t}"));
                let mut sum = 0u64;
                let mut max = 0u64;
                for _ in 0..PER_THREAD {
                    let v = arb_value(&mut rng) >> 16;
                    h.record(v);
                    sum = sum.wrapping_add(v);
                    max = max.max(v);
                }
                (sum, max)
            })
        })
        .collect();
    let mut want_sum = 0u64;
    let mut want_max = 0u64;
    for w in workers {
        let (sum, max) = w.join().unwrap();
        want_sum = want_sum.wrapping_add(sum);
        want_max = want_max.max(max);
    }
    let s = h.snapshot();
    assert_eq!(s.count, (THREADS * PER_THREAD) as u64, "lost counts");
    assert_eq!(s.sum, want_sum, "lost sum");
    assert_eq!(s.max, want_max, "lost max");
    let bucket_total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, s.count);
}
