//! The blocking query client: one TCP connection, version-negotiated on
//! connect, with typed methods mirroring the [`QueryRequest`] variants
//! and (on v2 servers) the composable [`QueryPlan`] API returning a
//! lazy [`RowStream`].

use crate::frame::{read_frame, write_frame, FrameError};
use crate::message::{
    decode_hello_ack, encode_hello, fold_epoch_checksum, NeighborRow, QueryError, QueryRequest,
    QueryResponse, QueryWarning, RecordRow, Selection, StatusInfo,
};
use crate::mux::MuxClient;
use crate::plan::{Order, PlanRow, PlanSource, QueryPlan};
use crate::stream::{decode_stream_frame, encode_stream_frame, CONNECTION_STREAM};
use crate::{PROTOCOL_VERSION, PROTOCOL_VERSION_MIN};
use siren_analysis::LibraryUsageRow;
use siren_consolidate::ProcessRecord;
use siren_obs::{TraceFilter, TraceId, TraceTree};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Bounded reconnect policy: capped exponential backoff with optional
/// jitter. Only the **idempotent** parts of a client's life are ever
/// retried under it — TCP connect and the hello exchange, which carry
/// no request state — so a retry can never duplicate work on the
/// server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = one-shot).
    pub max_retries: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling the exponential never exceeds.
    pub max_delay: Duration,
    /// Randomize each delay into `[delay/2, delay]` so a fleet of
    /// followers losing the same leader does not reconnect in
    /// lockstep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// The one-shot policy: never retry.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// The backoff before retry number `attempt` (zero-based), jittered
    /// through `rng` (any nonzero xorshift state).
    pub fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max_delay);
        if !self.jitter || capped.is_zero() {
            return capped;
        }
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let nanos = capped.as_nanos() as u64;
        let half = nanos / 2;
        Duration::from_nanos(half + *rng % (nanos - half + 1))
    }
}

/// A nonzero xorshift seed from the wall clock — good enough to
/// decorrelate backoff across processes without a PRNG dependency.
pub(crate) fn jitter_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15)
        | 1
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// The server answered with something the protocol does not allow
    /// here (wrong response kind, undecodable payload).
    Protocol(String),
    /// The server answered with a structured error.
    Server(QueryError),
    /// The request cannot be expressed on this connection's negotiated
    /// version (e.g. a usage-table plan against a v1 server).
    Unsupported(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unsupported(detail) => {
                write!(f, "unsupported on negotiated version: {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A blocking, version-negotiated query connection to a SIREN daemon.
#[derive(Debug)]
pub struct SirenClient {
    stream: TcpStream,
    version: u16,
    /// Set when a stream was abandoned mid-reply and the connection
    /// could not be drained back to a frame boundary — every later
    /// call would misparse, so they are refused instead.
    poisoned: bool,
    /// v3: stream id of the last request sent; replies must echo it
    /// (or [`CONNECTION_STREAM`] for connection-level errors).
    stream_seq: u32,
    /// v3: advertise willingness to receive compressed reply bodies.
    accept_compressed: bool,
}

impl SirenClient {
    /// Connect to `addr` and negotiate a protocol version, with a 5 s
    /// default I/O timeout.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connect with an explicit per-operation I/O timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        Self::connect_with_versions(addr, PROTOCOL_VERSION_MIN, PROTOCOL_VERSION, timeout)
    }

    /// Connect under a [`RetryPolicy`]: transport failures (refused,
    /// reset, timed out — the server restarting, say) are retried with
    /// capped exponential backoff + jitter. Only the idempotent
    /// connect + hello exchange is ever replayed; a typed server
    /// refusal (e.g. an unsupported version) fails immediately, since
    /// retrying would only repeat it.
    pub fn connect_with_retry(addr: SocketAddr, policy: &RetryPolicy) -> Result<Self, ClientError> {
        Self::connect_with_retry_versions(
            addr,
            PROTOCOL_VERSION_MIN,
            PROTOCOL_VERSION,
            Duration::from_secs(5),
            policy,
        )
    }

    /// [`SirenClient::connect_with_retry`] with an explicit version
    /// range and per-operation I/O timeout.
    pub fn connect_with_retry_versions(
        addr: SocketAddr,
        min: u16,
        max: u16,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> Result<Self, ClientError> {
        let mut rng = jitter_seed();
        let mut attempt = 0u32;
        loop {
            match Self::connect_with_versions(addr, min, max, timeout) {
                Ok(client) => return Ok(client),
                Err(ClientError::Frame(_)) if attempt < policy.max_retries => {
                    std::thread::sleep(policy.delay(attempt, &mut rng));
                    attempt += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Connect offering an explicit `[min, max]` version range — how
    /// tests (and cautious tooling) pin a connection to v1 against a
    /// v2-capable server.
    pub fn connect_with_versions(
        addr: SocketAddr,
        min: u16,
        max: u16,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let mut client = Self {
            stream,
            version: 0,
            poisoned: false,
            stream_seq: 0,
            accept_compressed: false,
        };
        write_frame(&mut client.stream, &encode_hello(min, max))?;
        let reply = read_frame(&mut client.stream)?;
        if let Some(version) = decode_hello_ack(&reply) {
            client.version = version;
            return Ok(client);
        }
        // Not an ack: the server either refused the version or broke
        // protocol. A structured error is surfaced as such.
        match QueryResponse::decode(&reply) {
            Ok(QueryResponse::Error(err)) => Err(ClientError::Server(err)),
            _ => Err(ClientError::Protocol(
                "handshake reply was not a hello-ack".into(),
            )),
        }
    }

    /// The protocol version negotiated at connect time.
    pub fn negotiated_version(&self) -> u16 {
        self.version
    }

    /// On a v3 connection, advertise on every request that reply
    /// bodies may arrive LZ-compressed (the server still only
    /// compresses batches past its size threshold, and only when
    /// compression actually shrinks them). A no-op on v1/v2, whose
    /// frames have no flag to carry the offer.
    pub fn set_accept_compressed(&mut self, accept: bool) {
        self.accept_compressed = accept;
    }

    /// Convert this connection into a [`MuxClient`] able to run many
    /// interleaved cursor streams at once. Needs a negotiated v3
    /// connection — v1/v2 frames carry no stream id to multiplex on.
    pub fn into_mux(self) -> Result<MuxClient, ClientError> {
        self.check_usable()?;
        if self.version < 3 {
            return Err(ClientError::Unsupported(
                "stream multiplexing needs a v3 connection".into(),
            ));
        }
        Ok(MuxClient::from_parts(
            self.stream,
            self.stream_seq,
            self.accept_compressed,
        ))
    }

    fn check_usable(&self) -> Result<(), ClientError> {
        if self.poisoned {
            return Err(ClientError::Protocol(
                "connection abandoned mid-stream; reconnect".into(),
            ));
        }
        Ok(())
    }

    fn send(&mut self, request: &QueryRequest) -> Result<(), ClientError> {
        self.send_traced(request, None)
    }

    fn send_traced(
        &mut self,
        request: &QueryRequest,
        trace: Option<TraceId>,
    ) -> Result<(), ClientError> {
        let body = request.encode_traced(self.version, trace);
        if self.version >= 3 {
            // Each exchange gets a fresh nonzero stream id; the reply
            // frames must echo it. Requests are small: never compressed.
            self.stream_seq = self.stream_seq.wrapping_add(1);
            if self.stream_seq == CONNECTION_STREAM {
                self.stream_seq = 1;
            }
            let envelope =
                encode_stream_frame(self.stream_seq, &body, self.accept_compressed, None);
            write_frame(&mut self.stream, &envelope)?;
        } else {
            write_frame(&mut self.stream, &body)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<QueryResponse, ClientError> {
        let payload = read_frame(&mut self.stream)?;
        let body;
        let payload = if self.version >= 3 {
            let frame = decode_stream_frame(&payload)
                .map_err(|err| ClientError::Protocol(format!("bad stream envelope: {err}")))?;
            if frame.stream_id != self.stream_seq && frame.stream_id != CONNECTION_STREAM {
                return Err(ClientError::Protocol(format!(
                    "reply tagged stream {} while awaiting {}",
                    frame.stream_id, self.stream_seq
                )));
            }
            body = frame.body;
            &body[..]
        } else {
            &payload[..]
        };
        QueryResponse::decode_versioned(payload, self.version)
            .map_err(|err| ClientError::Protocol(format!("undecodable response: {err}")))
    }

    /// Issue one request and decode the typed response. Exposed so
    /// tooling can drive request kinds this client has no dedicated
    /// method for yet.
    ///
    /// Refuses requests whose reply is a frame *stream*
    /// ([`QueryRequest::Plan`] / [`QueryRequest::FetchCursor`] — use
    /// [`SirenClient::query`]): reading one frame of a multi-frame
    /// reply would silently desync the connection. Likewise refuses
    /// selections carrying v2-only fields on a v1 connection, where the
    /// v1 encoding would silently drop them and return over-broad rows.
    pub fn call(&mut self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        self.check_usable()?;
        match request {
            // On a v1 connection these tags draw a single UnknownRequest
            // frame, so the exchange stays in sync; only a v2 server
            // answers them with a frame stream.
            QueryRequest::Plan(_) | QueryRequest::FetchCursor { .. } if self.version >= 2 => {
                return Err(ClientError::Unsupported(
                    "stream-reply requests must go through query()".into(),
                ));
            }
            QueryRequest::LibraryUsage { selection }
                if self.version < 2 && selection.requires_v2() =>
            {
                return Err(ClientError::Unsupported(
                    "job/epoch-slice selections need a v2 server".into(),
                ));
            }
            _ => {}
        }
        self.send(request)?;
        match self.recv()? {
            QueryResponse::Error(err) => Err(ClientError::Server(err)),
            resp => Ok(resp),
        }
    }

    /// Daemon status (store shape + ingest-health counters; on v2
    /// connections also the query-traffic counters).
    pub fn status(&mut self) -> Result<StatusInfo, ClientError> {
        match self.call(&QueryRequest::Status)? {
            QueryResponse::Status(status) => Ok(status),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Every committed record of `job_id`, across epochs, commit order.
    pub fn by_job(&mut self, job_id: u64) -> Result<Vec<RecordRow>, ClientError> {
        match self.call(&QueryRequest::ByJob { job_id })? {
            QueryResponse::Rows(rows) => Ok(rows),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Library usage over `selection` (host / time range / epoch; the
    /// v2-only fields are version-guarded by [`SirenClient::call`]).
    pub fn library_usage(
        &mut self,
        selection: Selection,
    ) -> Result<Vec<LibraryUsageRow>, ClientError> {
        match self.call(&QueryRequest::LibraryUsage { selection })? {
            QueryResponse::LibraryUsage(rows) => Ok(rows),
            other => Err(unexpected("LibraryUsage", &other)),
        }
    }

    /// Snapshot the daemon's metric tree: counters, gauges, latency
    /// histograms, and the slow-query ring (protocol v2). On a v1
    /// connection this fails client-side with
    /// [`ClientError::Unsupported`] — the request tag does not exist in
    /// v1, and sending it anyway would only draw the server's typed
    /// `UnknownRequest` error.
    pub fn metrics(&mut self) -> Result<crate::MetricsSnapshot, ClientError> {
        if self.version < 2 {
            return Err(ClientError::Unsupported(
                "metrics snapshots need a v2 server".into(),
            ));
        }
        match self.call(&QueryRequest::Metrics)? {
            QueryResponse::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Recent traces from the daemon's flight recorder, reassembled
    /// into trees and filtered by `filter` (protocol v2). Like
    /// [`SirenClient::metrics`], this fails client-side with
    /// [`ClientError::Unsupported`] on a v1 connection.
    pub fn traces(&mut self, filter: TraceFilter) -> Result<Vec<TraceTree>, ClientError> {
        if self.version < 2 {
            return Err(ClientError::Unsupported(
                "trace queries need a v2 server".into(),
            ));
        }
        match self.call(&QueryRequest::Traces(filter))? {
            QueryResponse::Traces(trees) => Ok(trees),
            other => Err(unexpected("Traces", &other)),
        }
    }

    /// Up to `k` fuzzy-hash nearest neighbors of `hash` scoring at
    /// least `min_score`, best first.
    pub fn neighbors(
        &mut self,
        hash: &str,
        k: u32,
        min_score: u32,
    ) -> Result<Vec<NeighborRow>, ClientError> {
        match self.call(&QueryRequest::Neighbors {
            hash: hash.to_string(),
            k,
            min_score,
        })? {
            QueryResponse::Neighbors(rows) => Ok(rows),
            other => Err(unexpected("Neighbors", &other)),
        }
    }

    /// Open `plan`'s row stream. On a v2 connection the server streams
    /// bounded batch frames and the returned [`RowStream`] reads them
    /// **on demand** — the first row is available after the first batch
    /// frame, long before a large answer finishes, and pages beyond the
    /// first are fetched through the server-side cursor only as the
    /// iterator is advanced. Dropping the stream early closes the
    /// cursor.
    ///
    /// Against a v1 server the plan is translated to the closest v1
    /// request where one exists (job-filtered record plans →
    /// `ByJob`; unfiltered neighbor plans → `Neighbors`) and the
    /// selection/order/limit/projection are applied client-side;
    /// inexpressible plans (usage tables, unkeyed record scans,
    /// filtered neighbor plans) fail with [`ClientError::Unsupported`].
    pub fn query(&mut self, plan: QueryPlan) -> Result<RowStream<'_>, ClientError> {
        self.query_inner(plan, None)
    }

    /// Like [`SirenClient::query`], but propagating `trace` as the
    /// request's trace context: every server-side span of the plan's
    /// execution — queue wait, execution, per-batch serialization, and
    /// later cursor fetches — lands under that trace id, retrievable
    /// through [`SirenClient::traces`]. Needs a v2 connection; v1 frames
    /// cannot carry a trace id.
    pub fn query_traced(
        &mut self,
        plan: QueryPlan,
        trace: TraceId,
    ) -> Result<RowStream<'_>, ClientError> {
        if self.version < 2 {
            return Err(ClientError::Unsupported(
                "trace propagation needs a v2 server".into(),
            ));
        }
        self.query_inner(plan, Some(trace))
    }

    fn query_inner(
        &mut self,
        plan: QueryPlan,
        trace: Option<TraceId>,
    ) -> Result<RowStream<'_>, ClientError> {
        self.check_usable()?;
        plan.validate().map_err(ClientError::Server)?;
        if self.version >= 2 {
            self.send_traced(&QueryRequest::Plan(plan), trace)?;
            return Ok(RowStream {
                client: self,
                buffer: VecDeque::new(),
                cursor: None,
                mid_reply: true,
                done: false,
                failed: false,
                warnings: Vec::new(),
            });
        }
        let rows = self.query_v1_fallback(&plan)?;
        Ok(RowStream {
            client: self,
            buffer: rows.into(),
            cursor: None,
            mid_reply: false,
            done: true,
            failed: false,
            warnings: Vec::new(),
        })
    }

    /// Subscribe to the daemon's committed epochs from `from_epoch`
    /// (protocol v3, replication). The returned [`EpochStream`] yields
    /// one fully verified epoch at a time — batch and epoch checksums
    /// checked, counts reconciled against the commit marker — and
    /// finally the `End` event naming the next epoch to subscribe
    /// from. `batch_rows` bounds records per frame (`0` = server
    /// default).
    pub fn subscribe_epochs(
        &mut self,
        from_epoch: u64,
        batch_rows: u32,
    ) -> Result<EpochStream<'_>, ClientError> {
        self.check_usable()?;
        if self.version < 3 {
            return Err(ClientError::Unsupported(
                "epoch subscriptions need a v3 server".into(),
            ));
        }
        self.send(&QueryRequest::SubscribeEpochs {
            from_epoch,
            batch_rows,
        })?;
        Ok(EpochStream {
            client: self,
            current: None,
            done: false,
            failed: false,
        })
    }

    /// Answer a plan with v1 requests plus client-side post-processing.
    fn query_v1_fallback(&mut self, plan: &QueryPlan) -> Result<Vec<PlanRow>, ClientError> {
        match &plan.source {
            PlanSource::Records => {
                let Some(job_id) = plan.selection.job_filter() else {
                    return Err(ClientError::Unsupported(
                        "record plans without a job filter need a v2 server".into(),
                    ));
                };
                let mut rows = self.by_job(job_id)?;
                rows.retain(|row| plan.selection.matches(row.epoch, &row.record));
                match plan.order {
                    Order::Commit => {}
                    // Stable sort: ties keep commit order, matching the
                    // server-side executor.
                    Order::TimeAsc => rows.sort_by_key(|row| row.record.key.time),
                    Order::TimeDesc => {
                        rows.sort_by_key(|row| std::cmp::Reverse(row.record.key.time))
                    }
                }
                if let Some(limit) = plan.limit {
                    rows.truncate(usize::try_from(limit).unwrap_or(usize::MAX));
                }
                for row in &mut rows {
                    plan.projection.apply(&mut row.record);
                }
                Ok(rows.into_iter().map(PlanRow::Record).collect())
            }
            PlanSource::Neighbors { hash, min_score } => {
                if !plan.selection.is_unfiltered() {
                    return Err(ClientError::Unsupported(
                        "filtered neighbor plans need a v2 server".into(),
                    ));
                }
                let k = plan
                    .limit
                    .map(|l| u32::try_from(l).unwrap_or(u32::MAX))
                    .unwrap_or(u32::MAX);
                let mut rows = self.neighbors(hash, k, *min_score)?;
                for row in &mut rows {
                    plan.projection.apply(&mut row.record);
                }
                Ok(rows.into_iter().map(PlanRow::Neighbor).collect())
            }
            PlanSource::UsageTable => Err(ClientError::Unsupported(
                "usage-table plans need a v2 server".into(),
            )),
        }
    }
}

/// A lazy iterator over a plan's answer stream. Batch frames are read
/// from the socket (and follow-up pages fetched through the server-side
/// cursor) only as rows are consumed; the borrow on the client keeps
/// the connection exclusive until the stream is finished or dropped.
///
/// Dropping an unfinished stream drains the in-flight reply to the
/// frame boundary and closes the cursor, leaving the connection usable;
/// if draining fails the client is poisoned and refuses further calls.
#[derive(Debug)]
pub struct RowStream<'c> {
    client: &'c mut SirenClient,
    buffer: VecDeque<PlanRow>,
    /// Cursor parked on the server, once a `StreamEnd` carried one.
    cursor: Option<u64>,
    /// Frames of the current reply are still incoming.
    mid_reply: bool,
    done: bool,
    failed: bool,
    /// Degradation notices absorbed from the stream (v2+), in arrival
    /// order.
    warnings: Vec<QueryWarning>,
}

impl RowStream<'_> {
    /// Read frames until the buffer has rows, the reply ends, or the
    /// stream completes.
    fn fill(&mut self) -> Result<(), ClientError> {
        loop {
            if !self.buffer.is_empty() || self.done {
                return Ok(());
            }
            if !self.mid_reply {
                match self.cursor.take() {
                    Some(cursor) => {
                        self.client.send(&QueryRequest::FetchCursor { cursor })?;
                        self.mid_reply = true;
                    }
                    None => {
                        self.done = true;
                        return Ok(());
                    }
                }
            }
            match self.client.recv()? {
                QueryResponse::Batch(batch) => {
                    self.buffer.extend(batch.into_rows());
                }
                QueryResponse::StreamEnd { cursor } => {
                    self.mid_reply = false;
                    self.cursor = cursor;
                    if cursor.is_none() {
                        self.done = true;
                    }
                }
                QueryResponse::Warning(warning) => {
                    // Non-fatal: record the degradation and keep
                    // reading — a StreamEnd still terminates the reply.
                    self.warnings.push(warning);
                }
                QueryResponse::Error(err) => {
                    // The error frame terminates the reply; the
                    // connection is back at a frame boundary.
                    self.mid_reply = false;
                    self.done = true;
                    return Err(ClientError::Server(err));
                }
                other => {
                    // Off-protocol frame mid-reply: the stream can no
                    // longer be trusted. Terminate iteration too —
                    // re-entering on a desynced connection could
                    // misparse unrelated frames as rows of this plan.
                    self.failed = true;
                    self.done = true;
                    return Err(unexpected("Batch or StreamEnd", &other));
                }
            }
        }
    }

    /// Drain the remaining rows into a vector.
    pub fn collect_rows(mut self) -> Result<Vec<PlanRow>, ClientError> {
        let mut rows = Vec::new();
        loop {
            self.fill()?;
            if self.buffer.is_empty() {
                return Ok(rows);
            }
            rows.extend(self.buffer.drain(..));
        }
    }

    /// Drain the remaining rows, also returning any degradation
    /// warnings the stream carried (a federation router marking shards
    /// it could not reach). An empty warning list means the rows are
    /// the complete answer.
    pub fn collect_rows_warned(mut self) -> Result<(Vec<PlanRow>, Vec<QueryWarning>), ClientError> {
        let mut rows = Vec::new();
        loop {
            self.fill()?;
            if self.buffer.is_empty() {
                return Ok((rows, std::mem::take(&mut self.warnings)));
            }
            rows.extend(self.buffer.drain(..));
        }
    }

    /// Degradation warnings absorbed so far (complete once the stream
    /// is done).
    pub fn warnings(&self) -> &[QueryWarning] {
        &self.warnings
    }

    /// True once every row has been yielded.
    pub fn is_done(&self) -> bool {
        self.done && self.buffer.is_empty()
    }
}

impl Iterator for RowStream<'_> {
    type Item = Result<PlanRow, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(row) = self.buffer.pop_front() {
            return Some(Ok(row));
        }
        // `fill` tracks connection health itself: a typed server error
        // arrives on a frame boundary and leaves the connection usable
        // (only desyncs set `failed`), so it must not poison the client.
        if let Err(err) = self.fill() {
            return Some(Err(err));
        }
        self.buffer.pop_front().map(Ok)
    }
}

impl Drop for RowStream<'_> {
    fn drop(&mut self) {
        // Resync the connection: finish reading the in-flight reply (it
        // is bounded by the server's page cap), then release the parked
        // cursor so the server frees its pinned snapshot promptly.
        if self.mid_reply && !self.failed {
            // Generous bound: a reply is at most page_rows/batch "rows"
            // frames plus the terminator; a server violating that is
            // already off-protocol.
            for _ in 0..100_000 {
                match self.client.recv() {
                    Ok(QueryResponse::Batch(_) | QueryResponse::Warning(_)) => continue,
                    Ok(QueryResponse::StreamEnd { cursor }) => {
                        self.mid_reply = false;
                        self.cursor = cursor;
                        break;
                    }
                    Ok(QueryResponse::Error(_)) => {
                        self.mid_reply = false;
                        break;
                    }
                    _ => {
                        self.failed = true;
                        break;
                    }
                }
            }
        }
        if self.failed || self.mid_reply {
            self.client.poisoned = true;
            return;
        }
        if let Some(cursor) = self.cursor.take() {
            let ok = self
                .client
                .send(&QueryRequest::CloseCursor { cursor })
                .is_ok()
                && matches!(
                    self.client.recv(),
                    Ok(QueryResponse::StreamEnd { cursor: None } | QueryResponse::Error(_))
                );
            if !ok {
                self.client.poisoned = true;
            }
        }
    }
}

/// One verified unit of a replication subscription's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochStreamEvent {
    /// One complete epoch: every batch arrived, every checksum
    /// matched, and the record count reconciled with the commit
    /// marker. Safe to apply.
    Epoch {
        /// The epoch id on the leader (and, after apply, here).
        epoch: u64,
        /// The epoch's records in the leader's commit order.
        records: Vec<ProcessRecord>,
    },
    /// The subscription is exhausted: the leader had no further epochs
    /// in the snapshot it pinned at subscribe time.
    End {
        /// Epoch a follow-up subscription should start from.
        next_from: u64,
        /// Leader's sealed-store bytes at subscribe time.
        leader_bytes: u64,
    },
}

/// A lazy reader over a [`SirenClient::subscribe_epochs`] reply.
/// Frames are read from the socket only as events are consumed;
/// batches of the in-flight epoch are buffered until its commit marker
/// verifies, so a torn connection can never surface a partial epoch.
///
/// Dropping an unfinished stream drains the reply to its frame
/// boundary; if draining fails the client is poisoned and refuses
/// further calls.
#[derive(Debug)]
pub struct EpochStream<'c> {
    client: &'c mut SirenClient,
    /// The epoch currently accumulating: `(epoch, records, per-batch
    /// checksums in arrival order)`.
    current: Option<(u64, Vec<ProcessRecord>, Vec<u64>)>,
    done: bool,
    failed: bool,
}

impl EpochStream<'_> {
    /// Read until the next verified event. `None` after `End`.
    pub fn next_event(&mut self) -> Result<Option<EpochStreamEvent>, ClientError> {
        if self.done {
            return Ok(None);
        }
        loop {
            let resp = match self.client.recv() {
                Ok(resp) => resp,
                Err(err) => {
                    // Transport death mid-reply: the buffered partial
                    // epoch is discarded, never surfaced.
                    self.failed = true;
                    self.done = true;
                    return Err(err);
                }
            };
            match resp {
                QueryResponse::EpochBatch(batch) => {
                    let sum = batch.checksum();
                    match &mut self.current {
                        None => self.current = Some((batch.epoch, batch.records, vec![sum])),
                        Some((epoch, records, sums)) if *epoch == batch.epoch => {
                            records.extend(batch.records);
                            sums.push(sum);
                        }
                        Some((epoch, ..)) => {
                            let detail = format!(
                                "epoch {} batch interleaved into open epoch {}",
                                batch.epoch, epoch
                            );
                            return Err(self.fail(detail));
                        }
                    }
                }
                QueryResponse::EpochCommit {
                    epoch,
                    records,
                    checksum,
                } => {
                    let (got_epoch, got_records, sums) =
                        self.current
                            .take()
                            .unwrap_or((epoch, Vec::new(), Vec::new()));
                    if got_epoch != epoch {
                        return Err(self.fail(format!(
                            "commit marker for epoch {epoch} while epoch {got_epoch} was open"
                        )));
                    }
                    if got_records.len() as u64 != records {
                        return Err(self.fail(format!(
                            "epoch {epoch} shipped {} records, commit marker claims {records}",
                            got_records.len()
                        )));
                    }
                    if fold_epoch_checksum(&sums) != checksum {
                        return Err(self.fail(format!("epoch {epoch} checksum chain mismatch")));
                    }
                    return Ok(Some(EpochStreamEvent::Epoch {
                        epoch,
                        records: got_records,
                    }));
                }
                QueryResponse::SubscribeEnd {
                    next_from,
                    leader_bytes,
                } => {
                    if self.current.is_some() {
                        return Err(self.fail("subscription ended mid-epoch".into()));
                    }
                    self.done = true;
                    return Ok(Some(EpochStreamEvent::End {
                        next_from,
                        leader_bytes,
                    }));
                }
                QueryResponse::Error(err) => {
                    // A typed error terminates the reply on a frame
                    // boundary; the connection stays usable.
                    self.current = None;
                    self.done = true;
                    return Err(ClientError::Server(err));
                }
                other => {
                    self.failed = true;
                    self.done = true;
                    return Err(unexpected(
                        "EpochBatch, EpochCommit or SubscribeEnd",
                        &other,
                    ));
                }
            }
        }
    }

    /// Record an integrity violation: the bytes parsed but the
    /// replication invariants did not hold, so nothing further on this
    /// connection can be trusted.
    fn fail(&mut self, detail: String) -> ClientError {
        self.failed = true;
        self.done = true;
        ClientError::Protocol(detail)
    }
}

impl Drop for EpochStream<'_> {
    fn drop(&mut self) {
        if self.done && !self.failed {
            return;
        }
        if !self.failed {
            // Resync: the reply is bounded by the epochs the pinned
            // snapshot held at subscribe time.
            for _ in 0..1_000_000 {
                match self.client.recv() {
                    Ok(QueryResponse::EpochBatch(_) | QueryResponse::EpochCommit { .. }) => {
                        continue
                    }
                    Ok(QueryResponse::SubscribeEnd { .. } | QueryResponse::Error(_)) => {
                        self.done = true;
                        break;
                    }
                    _ => {
                        self.failed = true;
                        break;
                    }
                }
            }
        }
        if self.failed || !self.done {
            self.client.poisoned = true;
        }
    }
}

pub(crate) fn unexpected(wanted: &str, got: &QueryResponse) -> ClientError {
    let kind = match got {
        QueryResponse::Status(_) => "Status",
        QueryResponse::Rows(_) => "Rows",
        QueryResponse::LibraryUsage(_) => "LibraryUsage",
        QueryResponse::Neighbors(_) => "Neighbors",
        QueryResponse::Batch(_) => "Batch",
        QueryResponse::StreamEnd { .. } => "StreamEnd",
        QueryResponse::Metrics(_) => "Metrics",
        QueryResponse::Traces(_) => "Traces",
        QueryResponse::EpochBatch(_) => "EpochBatch",
        QueryResponse::EpochCommit { .. } => "EpochCommit",
        QueryResponse::SubscribeEnd { .. } => "SubscribeEnd",
        QueryResponse::Warning(_) => "Warning",
        QueryResponse::Error(_) => "Error",
    };
    ClientError::Protocol(format!("expected {wanted} response, got {kind}"))
}
