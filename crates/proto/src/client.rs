//! The blocking query client: one TCP connection, version-negotiated on
//! connect, with typed methods mirroring the [`QueryRequest`] variants.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::message::{
    decode_hello_ack, encode_hello, NeighborRow, QueryError, QueryRequest, QueryResponse,
    RecordRow, Selection, StatusInfo,
};
use crate::{PROTOCOL_VERSION, PROTOCOL_VERSION_MIN};
use siren_analysis::LibraryUsageRow;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// The server answered with something the protocol does not allow
    /// here (wrong response kind, undecodable payload).
    Protocol(String),
    /// The server answered with a structured error.
    Server(QueryError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A blocking, version-negotiated query connection to a SIREN daemon.
#[derive(Debug)]
pub struct SirenClient {
    stream: TcpStream,
    version: u16,
}

impl SirenClient {
    /// Connect to `addr` and negotiate a protocol version, with a 5 s
    /// default I/O timeout.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connect with an explicit per-operation I/O timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let mut client = Self { stream, version: 0 };
        write_frame(
            &mut client.stream,
            &encode_hello(PROTOCOL_VERSION_MIN, PROTOCOL_VERSION),
        )?;
        let reply = read_frame(&mut client.stream)?;
        if let Some(version) = decode_hello_ack(&reply) {
            client.version = version;
            return Ok(client);
        }
        // Not an ack: the server either refused the version or broke
        // protocol. A structured error is surfaced as such.
        match QueryResponse::decode(&reply) {
            Ok(QueryResponse::Error(err)) => Err(ClientError::Server(err)),
            _ => Err(ClientError::Protocol(
                "handshake reply was not a hello-ack".into(),
            )),
        }
    }

    /// The protocol version negotiated at connect time.
    pub fn negotiated_version(&self) -> u16 {
        self.version
    }

    /// Issue one request and decode the typed response. Exposed so
    /// tooling can drive request kinds this client has no dedicated
    /// method for yet.
    pub fn call(&mut self, request: &QueryRequest) -> Result<QueryResponse, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        match QueryResponse::decode(&payload) {
            Ok(QueryResponse::Error(err)) => Err(ClientError::Server(err)),
            Ok(resp) => Ok(resp),
            Err(err) => Err(ClientError::Protocol(format!(
                "undecodable response: {err}"
            ))),
        }
    }

    /// Daemon status (store shape + ingest-health counters).
    pub fn status(&mut self) -> Result<StatusInfo, ClientError> {
        match self.call(&QueryRequest::Status)? {
            QueryResponse::Status(status) => Ok(status),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Every committed record of `job_id`, across epochs, commit order.
    pub fn by_job(&mut self, job_id: u64) -> Result<Vec<RecordRow>, ClientError> {
        match self.call(&QueryRequest::ByJob { job_id })? {
            QueryResponse::Rows(rows) => Ok(rows),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Library usage over `selection` (host / time range / epoch).
    pub fn library_usage(
        &mut self,
        selection: Selection,
    ) -> Result<Vec<LibraryUsageRow>, ClientError> {
        match self.call(&QueryRequest::LibraryUsage { selection })? {
            QueryResponse::LibraryUsage(rows) => Ok(rows),
            other => Err(unexpected("LibraryUsage", &other)),
        }
    }

    /// Up to `k` fuzzy-hash nearest neighbors of `hash` scoring at
    /// least `min_score`, best first.
    pub fn neighbors(
        &mut self,
        hash: &str,
        k: u32,
        min_score: u32,
    ) -> Result<Vec<NeighborRow>, ClientError> {
        match self.call(&QueryRequest::Neighbors {
            hash: hash.to_string(),
            k,
            min_score,
        })? {
            QueryResponse::Neighbors(rows) => Ok(rows),
            other => Err(unexpected("Neighbors", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &QueryResponse) -> ClientError {
    let kind = match got {
        QueryResponse::Status(_) => "Status",
        QueryResponse::Rows(_) => "Rows",
        QueryResponse::LibraryUsage(_) => "LibraryUsage",
        QueryResponse::Neighbors(_) => "Neighbors",
        QueryResponse::Error(_) => "Error",
    };
    ClientError::Protocol(format!("expected {wanted} response, got {kind}"))
}
