//! Stream framing over any `Read`/`Write` pair: the WAL frame
//! ([`siren_store::encode_frame`]) adapted to sockets, with a hostile-
//! input posture — length is bounds-checked before any allocation, the
//! checksum is verified before the payload is surfaced, and a clean EOF
//! at a frame boundary is distinguished from a torn frame.

use siren_hash::fnv1a64;
use siren_store::{encode_frame, FRAME_MAGIC};
use std::io::{Read, Write};

/// Largest payload a peer may send. Far below the WAL's 64 MiB bound:
/// requests are tiny and responses are row batches, so anything near
/// this is an attack or a bug, and the read side must be able to refuse
/// it *before* allocating.
pub const MAX_FRAME_PAYLOAD: u32 = 8 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// Transport failure (includes read/write deadline expiry).
    Io(std::io::Error),
    /// First byte of the frame was not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// Length prefix exceeded [`MAX_FRAME_PAYLOAD`].
    TooLarge(u32),
    /// Payload checksum mismatch (corruption or desync).
    BadChecksum,
    /// The stream ended mid-frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02X}"),
            FrameError::TooLarge(len) => {
                write!(f, "frame payload {len} exceeds cap {MAX_FRAME_PAYLOAD}")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame around `payload`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Read exactly `buf.len()` bytes, mapping EOF to `Truncated`.
fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })
}

/// Read one frame, returning its verified payload.
///
/// A clean close before the first byte yields [`FrameError::Closed`];
/// every other failure names what went wrong so the caller can decide
/// between answering with a [`QueryError`](crate::QueryError) and
/// dropping the connection.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if first[0] != FRAME_MAGIC {
        return Err(FrameError::BadMagic(first[0]));
    }
    let mut len_buf = [0u8; 4];
    read_exact(r, &mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_PAYLOAD {
        // Refuse before allocating: this is the unbounded-buffer guard.
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload)?;
    let mut sum_buf = [0u8; 8];
    read_exact(r, &mut sum_buf)?;
    if fnv1a64(&payload) != u64::from_le_bytes(sum_buf) {
        return Err(FrameError::BadChecksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut wire = vec![FRAME_MAGIC];
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 32]);
        let mut r = wire.as_slice();
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn corruption_and_truncation_are_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();

        let mut flipped = wire.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        let mut r = flipped.as_slice();
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::BadChecksum | FrameError::TooLarge(_) | FrameError::Truncated)
        ));

        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        }

        let mut bad_magic = wire;
        bad_magic[0] = 0x00;
        let mut r = bad_magic.as_slice();
        assert!(matches!(read_frame(&mut r), Err(FrameError::BadMagic(0))));
    }
}
