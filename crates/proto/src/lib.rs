//! # siren-proto — the versioned SIREN query wire protocol
//!
//! The service daemon (`siren-service`) answers analyst queries over
//! TCP; this crate is the wire contract both sides speak, kept free of
//! any server machinery so clients, tooling, and tests can depend on it
//! alone.
//!
//! ## Frame layout
//!
//! Every unit on the wire — the hello exchange, requests, responses —
//! travels in exactly the frame `siren-store`'s WAL uses
//! ([`siren_store::encode_frame`]; one seam, not two framings):
//!
//! ```text
//! [0xD8 magic][len: u32 LE][payload: len bytes][FNV-1a/64(payload): u64 LE]
//! ```
//!
//! The read side ([`read_frame`]) validates the magic and bounds-checks
//! `len` against [`MAX_FRAME_PAYLOAD`] **before** allocating, so a
//! hostile length prefix can never balloon memory, and verifies the
//! checksum before handing the payload to the typed codec.
//!
//! ## Version negotiation
//!
//! A connection opens with one client hello frame (`b"SRNQ"` + the
//! client's supported `[min, max]` version range, little-endian `u16`s).
//! The server answers with a hello-ack frame (`b"SRNQ"` + the chosen
//! version — the highest both sides support) or a
//! [`QueryError::UnsupportedVersion`] error frame and closes. Every
//! subsequent frame on the connection is a [`QueryRequest`] (client →
//! server) or [`QueryResponse`] (server → client) payload encoded under
//! the negotiated version.
//!
//! ## Typed codec
//!
//! [`QueryRequest`] and [`QueryResponse`] encode with the shared
//! `siren-store` codec helpers (length-prefixed strings, little-endian
//! integers); [`Selection`] is the single record-filter type, publicly
//! constructible via its `epoch()/host()/between()` builders (plus the
//! v2 `job()/epochs()` restrictions) and reused by the in-process
//! snapshot API. Decoders return [`QueryError::Malformed`] on any
//! structural inconsistency and never panic — property tests in
//! `tests/roundtrip.rs` fuzz every variant plus truncations and bit
//! flips, for both negotiated versions.
//!
//! ## Protocol v2: plans, streams, cursors
//!
//! Version 2 replaces the one-question/one-frame shape with a
//! composable [`QueryPlan`] (source, shared selection with epoch-slice
//! support, projection, order, limit) answered as a **stream** of
//! bounded [`RowBatch`] frames terminated by a
//! [`QueryResponse::StreamEnd`] frame that is either *end of rows* or
//! a resumable cursor id. Cursors are parked server-side with the
//! `Arc` snapshot the plan started on pinned, so resuming pages stays
//! consistent while epochs commit concurrently. The typed client side
//! is [`SirenClient::query`], returning a lazy [`RowStream`]. All of
//! it is negotiated: a v1 peer on the same port sees byte-identical v1
//! behavior, and v2-only tags on a v1 connection draw
//! [`QueryError::UnknownRequest`].
//!
//! ## Protocol v3: stream multiplexing and compressed frames
//!
//! Version 3 changes nothing about the hello exchange or the v1/v2
//! byte layouts. On a v3 connection, every post-handshake frame
//! payload is a **stream envelope** (`[stream id: u32][flags: u8]` —
//! see [`stream`]) wrapping the unchanged v2 request/response
//! encoding. The stream id lets several cursor streams and one-shot
//! requests interleave over one connection ([`MuxClient`] /
//! [`MuxStream`] on the client side; the sequential [`SirenClient`]
//! uses a fresh id per exchange), and the flags negotiate per-request
//! LZ compression of large reply bodies
//! ([`STREAM_FLAG_ACCEPT_COMPRESSED`]). The server additionally
//! prefetches the next cursor page while the client drains the current
//! one — invisible on the wire except as latency.

pub mod client;
pub mod frame;
pub mod message;
pub mod mux;
pub mod plan;
pub mod stream;

pub use client::{ClientError, EpochStream, EpochStreamEvent, RetryPolicy, RowStream, SirenClient};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_PAYLOAD};
pub use message::{
    decode_hello, decode_hello_ack, encode_hello, encode_hello_ack, fold_epoch_checksum, negotiate,
    EpochBatch, NeighborRow, QueryError, QueryRequest, QueryResponse, QueryWarning, RecordRow,
    Selection, ShardKey, StatusInfo, HELLO_MAGIC,
};
pub use mux::{MuxClient, MuxStream};
pub use plan::{
    Order, PlanRow, PlanSource, Projection, QueryPlan, RowBatch, DEFAULT_BATCH_ROWS,
    DEFAULT_PAGE_ROWS, MAX_BATCH_ROWS, MAX_PAGE_ROWS,
};
pub use stream::{
    decode_stream_frame, encode_stream_frame, StreamFrame, CONNECTION_STREAM,
    DEFAULT_COMPRESS_MIN_BYTES, STREAM_FLAG_ACCEPT_COMPRESSED, STREAM_FLAG_COMPRESSED,
    STREAM_HEADER_LEN,
};
// The typed metrics snapshot served by `QueryRequest::Metrics` and the
// trace types served by `QueryRequest::Traces` live in `siren-obs`;
// re-exported so wire users need only this crate.
pub use siren_obs::{
    GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, SlowQueryEntry, SpanId, SpanRecord,
    TraceFilter, TraceId, TraceTree,
};

/// Lowest protocol version this build still speaks.
pub const PROTOCOL_VERSION_MIN: u16 = 1;
/// Highest (current) protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 3;
