//! The typed request/response codec and the hello exchange.
//!
//! Payload encodings build on `siren_store::codec` (length-prefixed
//! strings, little-endian integers, tag bytes); consolidated records
//! nest their own [`ProcessRecord`] codec behind a byte-length prefix.
//! Every decoder rejects structural inconsistency with a typed
//! [`QueryError`] and never panics.

use crate::plan::{QueryPlan, RowBatch};
use crate::{PROTOCOL_VERSION, PROTOCOL_VERSION_MIN};
use siren_analysis::LibraryUsageRow;
use siren_consolidate::ProcessRecord;
use siren_obs::{
    GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, SlowQueryEntry, SpanId, SpanRecord,
    TraceFilter, TraceId, TraceTree, MAX_SPAN_ANNOTATIONS,
};
pub(crate) use siren_store::codec::take;
use siren_store::codec::{get_bytes, get_str, put_bytes, put_str};

/// First bytes of the hello and hello-ack payloads.
pub const HELLO_MAGIC: [u8; 4] = *b"SRNQ";

// Request payload tags. Tags 4+ are protocol v2; a v1 connection
// answers them with `QueryError::UnknownRequest`, exactly as a v1-only
// server build would.
const REQ_STATUS: u8 = 0;
const REQ_BY_JOB: u8 = 1;
const REQ_LIBRARY_USAGE: u8 = 2;
const REQ_NEIGHBORS: u8 = 3;
const REQ_PLAN: u8 = 4;
const REQ_FETCH_CURSOR: u8 = 5;
const REQ_CLOSE_CURSOR: u8 = 6;
const REQ_METRICS: u8 = 7;
const REQ_TRACES: u8 = 8;
// Tag 9 is protocol v3: replication epoch subscription. v1/v2
// connections answer it with `QueryError::UnknownRequest` and survive.
const REQ_SUBSCRIBE_EPOCHS: u8 = 9;

// Response payload tags. `b'S'` (0x53) is reserved so a hello-ack can
// never be mistaken for a response payload. Tags 4 and 5 are protocol
// v2 stream frames and never appear on a v1 connection.
const RESP_STATUS: u8 = 0;
const RESP_ROWS: u8 = 1;
const RESP_LIBRARY_USAGE: u8 = 2;
const RESP_NEIGHBORS: u8 = 3;
const RESP_BATCH: u8 = 4;
const RESP_STREAM_END: u8 = 5;
const RESP_METRICS: u8 = 6;
const RESP_TRACES: u8 = 7;
// Tags 8–10 are protocol v3 replication stream frames and never
// appear on a v1/v2 connection.
const RESP_EPOCH_BATCH: u8 = 8;
const RESP_EPOCH_COMMIT: u8 = 9;
const RESP_SUBSCRIBE_END: u8 = 10;
// Tag 11 is a v2 stream frame (degraded-stream warning) introduced by
// the federation tier; it rides any v2+ connection, never v1.
const RESP_WARNING: u8 = 11;
const RESP_ERROR: u8 = 0xFF;

// QueryError codes. Codes 6+ are v2-only and can only be drawn by v2
// requests, so a v1 peer never has to decode them.
const ERR_MALFORMED: u8 = 0;
const ERR_UNSUPPORTED_VERSION: u8 = 1;
const ERR_UNKNOWN_REQUEST: u8 = 2;
const ERR_FRAME_TOO_LARGE: u8 = 3;
const ERR_DEADLINE: u8 = 4;
const ERR_INTERNAL: u8 = 5;
const ERR_INVALID_PLAN: u8 = 6;
const ERR_UNKNOWN_CURSOR: u8 = 7;

/// The routing-relevant predicates of a [`Selection`], extracted by
/// [`Selection::shard_key`]: the job/host conditions that decide which
/// shard(s) of a partitioned corpus can hold matching records. Ingest's
/// `ShardRouter` partitions by job hash; a federation router prunes
/// backends by the same notion — both read this one struct so the two
/// tiers cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardKey<'a> {
    /// The exact-job restriction, if the selection names one.
    pub job: Option<u64>,
    /// The exact-host restriction, if the selection names one.
    pub host: Option<&'a str>,
}

impl ShardKey<'_> {
    /// True when no routing predicate is set — every shard of a
    /// partitioned corpus may hold matching records.
    pub fn is_unrouted(&self) -> bool {
        self.job.is_none() && self.host.is_none()
    }
}

/// A reusable record filter: all present conditions are ANDed. The one
/// filter type shared by the wire protocol and the in-process snapshot
/// API, publicly constructible via its builder methods.
///
/// The `job` and `epochs` (epoch-slice) restrictions are protocol v2
/// additions: they ride in [`QueryPlan`] requests and in v2-negotiated
/// `LibraryUsage` requests; sending a selection that uses them over a
/// v1 connection is a client-side error (see
/// [`Selection::requires_v2`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Selection {
    epoch: Option<u64>,
    host: Option<String>,
    time_range: Option<(u64, u64)>,
    job: Option<u64>,
    epoch_range: Option<(u64, u64)>,
}

impl Selection {
    /// The empty filter (matches every record).
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict to one epoch.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Restrict to one host.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Restrict to collection timestamps in `start ..= end`.
    ///
    /// Both bounds are **inclusive**: a record stamped exactly `start`
    /// or exactly `end` matches, so `between(t, t)` selects the single
    /// timestamp `t`. An inverted range (`start > end`) is structurally
    /// invalid — [`Selection::validate`] rejects it with a typed
    /// [`QueryError::InvalidPlan`], and every protocol-v2 path (plan
    /// execution, v2-negotiated requests) validates before producing a
    /// row. The v1 wire path and the in-process builder API keep their
    /// historical match-nothing behavior, which deployed callers may
    /// rely on; validate explicitly there if a typed error is wanted.
    pub fn between(mut self, start: u64, end: u64) -> Self {
        self.time_range = Some((start, end));
        self
    }

    /// Restrict to one job (protocol v2).
    pub fn job(mut self, job_id: u64) -> Self {
        self.job = Some(job_id);
        self
    }

    /// Restrict to the **inclusive** epoch slice `lo ..= hi` (protocol
    /// v2). Layer-aligned: the server answers epoch-slice plans
    /// straight from the snapshot layers holding those epochs. Inverted
    /// slices are rejected by [`Selection::validate`], like inverted
    /// time ranges.
    pub fn epochs(mut self, lo: u64, hi: u64) -> Self {
        self.epoch_range = Some((lo, hi));
        self
    }

    /// The epoch restriction, if any.
    pub fn epoch_filter(&self) -> Option<u64> {
        self.epoch
    }

    /// The host restriction, if any.
    pub fn host_filter(&self) -> Option<&str> {
        self.host.as_deref()
    }

    /// The inclusive time-range restriction, if any.
    pub fn time_range(&self) -> Option<(u64, u64)> {
        self.time_range
    }

    /// The job restriction, if any.
    pub fn job_filter(&self) -> Option<u64> {
        self.job
    }

    /// The inclusive epoch-slice restriction, if any.
    pub fn epoch_slice(&self) -> Option<(u64, u64)> {
        self.epoch_range
    }

    /// The routing predicates of this selection — exactly the
    /// conditions that constrain **which shard** of a job/host
    /// partitioned corpus can hold matching records. Epoch and time
    /// conditions are deliberately excluded: they restrict *when*, not
    /// *where*, and every shard spans all time.
    pub fn shard_key(&self) -> ShardKey<'_> {
        ShardKey {
            job: self.job,
            host: self.host.as_deref(),
        }
    }

    /// True when no condition is set (every record matches).
    pub fn is_unfiltered(&self) -> bool {
        *self == Self::default()
    }

    /// True when the selection uses fields protocol v1 cannot carry.
    pub fn requires_v2(&self) -> bool {
        self.job.is_some() || self.epoch_range.is_some()
    }

    /// Reject structurally invalid selections: inverted time ranges and
    /// inverted epoch slices come back as [`QueryError::InvalidPlan`]
    /// instead of silently matching nothing.
    pub fn validate(&self) -> Result<(), QueryError> {
        if let Some((lo, hi)) = self.time_range {
            if lo > hi {
                return Err(QueryError::InvalidPlan(format!(
                    "inverted time range: between({lo}, {hi}) has start > end \
                     (bounds are inclusive; swap them)"
                )));
            }
        }
        if let Some((lo, hi)) = self.epoch_range {
            if lo > hi {
                return Err(QueryError::InvalidPlan(format!(
                    "inverted epoch slice: epochs({lo}, {hi}) has lo > hi \
                     (bounds are inclusive; swap them)"
                )));
            }
        }
        Ok(())
    }

    /// Does a record committed under `epoch` pass this filter?
    pub fn matches(&self, epoch: u64, record: &ProcessRecord) -> bool {
        if let Some(e) = self.epoch {
            if epoch != e {
                return false;
            }
        }
        if let Some((lo, hi)) = self.epoch_range {
            if epoch < lo || epoch > hi {
                return false;
            }
        }
        if let Some(j) = self.job {
            if record.key.job_id != j {
                return false;
            }
        }
        if let Some(h) = &self.host {
            if &record.key.host != h {
                return false;
            }
        }
        if let Some((lo, hi)) = self.time_range {
            if record.key.time < lo || record.key.time > hi {
                return false;
            }
        }
        true
    }

    /// Does `epoch` pass the epoch-level conditions alone? This is the
    /// layer-pruning predicate: a snapshot layer whose epochs all fail
    /// it can be skipped without touching a record.
    pub fn matches_epoch(&self, epoch: u64) -> bool {
        if let Some(e) = self.epoch {
            if epoch != e {
                return false;
            }
        }
        if let Some((lo, hi)) = self.epoch_range {
            if epoch < lo || epoch > hi {
                return false;
            }
        }
        true
    }

    /// True when only epoch-level conditions are set — on a layer whose
    /// epochs all pass, every record matches without being inspected.
    pub fn is_epoch_only(&self) -> bool {
        self.host.is_none() && self.time_range.is_none() && self.job.is_none()
    }

    /// Compact structural description: which conditions are set, never
    /// their values (`"epoch,host,time"`, or `"all"` when unfiltered).
    /// Predicate values can carry untrusted ingest strings, so logs and
    /// telemetry record the shape instead.
    pub fn shape(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if self.epoch.is_some() {
            parts.push("epoch");
        }
        if self.epoch_range.is_some() {
            parts.push("epochs");
        }
        if self.job.is_some() {
            parts.push("job");
        }
        if self.host.is_some() {
            parts.push("host");
        }
        if self.time_range.is_some() {
            parts.push("time");
        }
        if parts.is_empty() {
            "all".into()
        } else {
            parts.join(",")
        }
    }

    pub(crate) fn put(&self, out: &mut Vec<u8>, version: u16) {
        match self.epoch {
            None => out.push(0),
            Some(e) => {
                out.push(1);
                out.extend_from_slice(&e.to_le_bytes());
            }
        }
        match &self.host {
            None => out.push(0),
            Some(h) => {
                out.push(1);
                put_str(out, h);
            }
        }
        match self.time_range {
            None => out.push(0),
            Some((lo, hi)) => {
                out.push(1);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
        // v1 stops here, byte-identical to every v1 build; the v2
        // fields are additive.
        if version >= 2 {
            match self.job {
                None => out.push(0),
                Some(j) => {
                    out.push(1);
                    out.extend_from_slice(&j.to_le_bytes());
                }
            }
            match self.epoch_range {
                None => out.push(0),
                Some((lo, hi)) => {
                    out.push(1);
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
            }
        }
    }

    pub(crate) fn get(data: &[u8], pos: &mut usize, version: u16) -> Option<Self> {
        let epoch = match take(data, pos, 1)?[0] {
            0 => None,
            1 => Some(get_u64(data, pos)?),
            _ => return None,
        };
        let host = match take(data, pos, 1)?[0] {
            0 => None,
            1 => Some(get_str(data, pos)?),
            _ => return None,
        };
        let time_range = match take(data, pos, 1)?[0] {
            0 => None,
            1 => Some((get_u64(data, pos)?, get_u64(data, pos)?)),
            _ => return None,
        };
        let (job, epoch_range) = if version >= 2 {
            let job = match take(data, pos, 1)?[0] {
                0 => None,
                1 => Some(get_u64(data, pos)?),
                _ => return None,
            };
            let epoch_range = match take(data, pos, 1)?[0] {
                0 => None,
                1 => Some((get_u64(data, pos)?, get_u64(data, pos)?)),
                _ => return None,
            };
            (job, epoch_range)
        } else {
            (None, None)
        };
        Some(Self {
            epoch,
            host,
            time_range,
            job,
            epoch_range,
        })
    }
}

pub(crate) fn get_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    Some(u64::from_le_bytes(take(data, pos, 8)?.try_into().ok()?))
}

pub(crate) fn get_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    Some(u32::from_le_bytes(take(data, pos, 4)?.try_into().ok()?))
}

fn get_u16(data: &[u8], pos: &mut usize) -> Option<u16> {
    Some(u16::from_le_bytes(take(data, pos, 2)?.try_into().ok()?))
}

/// Count prefix with a sanity bound: `n` elements of at least
/// `min_elem_bytes` wire bytes each must fit in the remaining payload,
/// so a hostile count is refused before any per-element work.
fn get_count(data: &[u8], pos: &mut usize, min_elem_bytes: usize) -> Option<usize> {
    let n = get_u32(data, pos)? as usize;
    if n > data.len().saturating_sub(*pos) / min_elem_bytes.max(1) {
        return None;
    }
    Some(n)
}

/// Initial capacity for a decoded element vector. The count bound above
/// limits `n` by *wire* bytes, but decoded elements (a `ProcessRecord`
/// holds a map, vectors, and strings) are far larger in memory than
/// their minimum wire encoding — so a corrupt-but-count-plausible frame
/// must not turn `n` straight into one huge pre-allocation before the
/// first element fails to decode. Real answers beyond the cap just
/// regrow amortized.
fn decode_capacity(n: usize) -> usize {
    n.min(1024)
}

/// Encode a whole [`MetricsSnapshot`]: the capture timestamp, then four
/// counted sections (counters, gauges, histograms, slow queries), each
/// name length-prefixed, histogram buckets as sparse `(index u16, count
/// u64)` pairs.
fn put_metrics(out: &mut Vec<u8>, snapshot: &MetricsSnapshot) {
    out.extend_from_slice(&snapshot.uptime_ns.to_le_bytes());
    out.extend_from_slice(&(snapshot.counters.len() as u32).to_le_bytes());
    for (name, value) in &snapshot.counters {
        put_str(out, name);
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&(snapshot.gauges.len() as u32).to_le_bytes());
    for (name, g) in &snapshot.gauges {
        put_str(out, name);
        out.extend_from_slice(&g.value.to_le_bytes());
        out.extend_from_slice(&g.high_water.to_le_bytes());
    }
    out.extend_from_slice(&(snapshot.histograms.len() as u32).to_le_bytes());
    for (name, h) in &snapshot.histograms {
        put_str(out, name);
        out.extend_from_slice(&h.count.to_le_bytes());
        out.extend_from_slice(&h.sum.to_le_bytes());
        out.extend_from_slice(&h.max.to_le_bytes());
        out.extend_from_slice(&(h.buckets.len() as u32).to_le_bytes());
        for (index, n) in &h.buckets {
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
    }
    out.extend_from_slice(&(snapshot.slow_queries.len() as u32).to_le_bytes());
    for entry in &snapshot.slow_queries {
        out.extend_from_slice(&entry.fingerprint.to_le_bytes());
        put_str(out, &entry.shape);
        out.extend_from_slice(&entry.rows.to_le_bytes());
        out.extend_from_slice(&entry.total_ns.to_le_bytes());
        out.extend_from_slice(&entry.trace_id.to_le_bytes());
    }
}

fn get_metrics(data: &[u8], pos: &mut usize) -> Option<MetricsSnapshot> {
    let uptime_ns = get_u64(data, pos)?;
    // Minimum wire bytes per element bound each count prefix before any
    // per-element work, same as every other counted section.
    let n = get_count(data, pos, 12)?; // name prefix (4) + u64
    let mut counters = Vec::with_capacity(decode_capacity(n));
    for _ in 0..n {
        let name = get_str(data, pos)?;
        counters.push((name, get_u64(data, pos)?));
    }
    let n = get_count(data, pos, 20)?; // name prefix (4) + 2×i64
    let mut gauges = Vec::with_capacity(decode_capacity(n));
    for _ in 0..n {
        let name = get_str(data, pos)?;
        gauges.push((
            name,
            GaugeSnapshot {
                value: get_u64(data, pos)? as i64,
                high_water: get_u64(data, pos)? as i64,
            },
        ));
    }
    let n = get_count(data, pos, 32)?; // name prefix + count/sum/max + bucket count
    let mut histograms = Vec::with_capacity(decode_capacity(n));
    for _ in 0..n {
        let name = get_str(data, pos)?;
        let count = get_u64(data, pos)?;
        let sum = get_u64(data, pos)?;
        let max = get_u64(data, pos)?;
        let buckets_len = get_count(data, pos, 10)?; // index u16 + count u64
        let mut buckets = Vec::with_capacity(decode_capacity(buckets_len));
        for _ in 0..buckets_len {
            let index = get_u16(data, pos)?;
            if (index as usize) >= siren_obs::BUCKETS {
                return None;
            }
            buckets.push((index, get_u64(data, pos)?));
        }
        histograms.push((
            name,
            HistogramSnapshot {
                count,
                sum,
                max,
                buckets,
            },
        ));
    }
    let n = get_count(data, pos, 36)?; // fingerprint + shape prefix + rows + ns + trace
    let mut slow_queries = Vec::with_capacity(decode_capacity(n));
    for _ in 0..n {
        let fingerprint = get_u64(data, pos)?;
        let shape = get_str(data, pos)?;
        slow_queries.push(SlowQueryEntry {
            fingerprint,
            shape,
            rows: get_u64(data, pos)?,
            total_ns: get_u64(data, pos)?,
            trace_id: get_u64(data, pos)?,
        });
    }
    Some(MetricsSnapshot {
        uptime_ns,
        counters,
        gauges,
        histograms,
        slow_queries,
    })
}

/// Encode a [`TraceFilter`]: four presence-prefixed optionals and the
/// result cap.
fn put_trace_filter(out: &mut Vec<u8>, filter: &TraceFilter) {
    match filter.trace {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            out.extend_from_slice(&t.0.to_le_bytes());
        }
    }
    match filter.fingerprint {
        None => out.push(0),
        Some(fp) => {
            out.push(1);
            out.extend_from_slice(&fp.to_le_bytes());
        }
    }
    match filter.min_duration_ns {
        None => out.push(0),
        Some(ns) => {
            out.push(1);
            out.extend_from_slice(&ns.to_le_bytes());
        }
    }
    match &filter.stage {
        None => out.push(0),
        Some(stage) => {
            out.push(1);
            put_str(out, stage);
        }
    }
    out.extend_from_slice(&filter.limit.to_le_bytes());
}

fn get_trace_filter(data: &[u8], pos: &mut usize) -> Option<TraceFilter> {
    let trace = match take(data, pos, 1)?[0] {
        0 => None,
        1 => match get_u64(data, pos)? {
            0 => return None, // id 0 means "absent"; a present-but-zero id is inconsistent
            id => Some(TraceId(id)),
        },
        _ => return None,
    };
    let fingerprint = match take(data, pos, 1)?[0] {
        0 => None,
        1 => Some(get_u64(data, pos)?),
        _ => return None,
    };
    let min_duration_ns = match take(data, pos, 1)?[0] {
        0 => None,
        1 => Some(get_u64(data, pos)?),
        _ => return None,
    };
    let stage = match take(data, pos, 1)?[0] {
        0 => None,
        1 => Some(get_str(data, pos)?),
        _ => return None,
    };
    Some(TraceFilter {
        trace,
        fingerprint,
        min_duration_ns,
        stage,
        limit: get_u32(data, pos)?,
    })
}

/// Encode reassembled trace trees. Per tree: trace id + counted spans;
/// per span: id, parent (`0` = root), stage, start/duration, and the
/// bounded annotation list (count fits a byte by construction). The
/// per-span trace id is implied by the tree and not re-sent.
fn put_traces(out: &mut Vec<u8>, trees: &[TraceTree]) {
    out.extend_from_slice(&(trees.len() as u32).to_le_bytes());
    for tree in trees {
        out.extend_from_slice(&tree.trace.0.to_le_bytes());
        out.extend_from_slice(&(tree.spans.len() as u32).to_le_bytes());
        for span in &tree.spans {
            out.extend_from_slice(&span.id.0.to_le_bytes());
            out.extend_from_slice(&span.parent.map(|p| p.0).unwrap_or(0).to_le_bytes());
            put_str(out, &span.stage);
            out.extend_from_slice(&span.start_ns.to_le_bytes());
            out.extend_from_slice(&span.duration_ns.to_le_bytes());
            out.push(span.annotations.len().min(MAX_SPAN_ANNOTATIONS) as u8);
            for (key, value) in span.annotations.iter().take(MAX_SPAN_ANNOTATIONS) {
                put_str(out, key);
                put_str(out, value);
            }
        }
    }
}

fn get_traces(data: &[u8], pos: &mut usize) -> Option<Vec<TraceTree>> {
    // Minimum wire bytes: a tree is trace u64 + span count u32; a span
    // is id + parent + stage prefix + start + duration + annotation
    // count byte.
    let n = get_count(data, pos, 12)?;
    let mut trees = Vec::with_capacity(decode_capacity(n));
    for _ in 0..n {
        let trace = match get_u64(data, pos)? {
            0 => return None, // trace ids are never zero
            id => TraceId(id),
        };
        let span_count = get_count(data, pos, 37)?;
        let mut spans = Vec::with_capacity(decode_capacity(span_count));
        for _ in 0..span_count {
            let id = match get_u64(data, pos)? {
                0 => return None, // span ids are never zero
                id => SpanId(id),
            };
            let parent = match get_u64(data, pos)? {
                0 => None,
                p => Some(SpanId(p)),
            };
            let stage = get_str(data, pos)?;
            let start_ns = get_u64(data, pos)?;
            let duration_ns = get_u64(data, pos)?;
            let annotation_count = take(data, pos, 1)?[0] as usize;
            if annotation_count > MAX_SPAN_ANNOTATIONS {
                return None;
            }
            let mut annotations = Vec::with_capacity(annotation_count);
            for _ in 0..annotation_count {
                let key = get_str(data, pos)?;
                annotations.push((key, get_str(data, pos)?));
            }
            spans.push(SpanRecord {
                trace,
                id,
                parent,
                stage,
                start_ns,
                duration_ns,
                annotations,
            });
        }
        trees.push(TraceTree { trace, spans });
    }
    Some(trees)
}

/// One query, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRequest {
    /// Daemon liveness + store shape + ingest-health counters.
    Status,
    /// Every committed record of one job, across epochs.
    ByJob {
        /// Slurm job id.
        job_id: u64,
    },
    /// Library-usage aggregation over a [`Selection`].
    LibraryUsage {
        /// Record filter (host, time range, epoch).
        selection: Selection,
    },
    /// Fuzzy-hash nearest neighbors over the records' `FILE_H` column.
    Neighbors {
        /// SSDeep-style `block:sig1:sig2` probe hash.
        hash: String,
        /// Maximum hits returned.
        k: u32,
        /// Minimum similarity score (0–100).
        min_score: u32,
    },
    /// Open a composable plan's row stream (protocol v2).
    Plan(QueryPlan),
    /// Resume a paginated stream from a server-held cursor (v2).
    FetchCursor {
        /// Cursor id from a previous `StreamEnd` frame.
        cursor: u64,
    },
    /// Release a cursor without draining it (v2). Answered with an
    /// end-of-stream frame as the acknowledgement.
    CloseCursor {
        /// Cursor id to release.
        cursor: u64,
    },
    /// Snapshot the daemon's whole metric tree (v2): counters, gauges,
    /// latency histograms, and the slow-query ring.
    Metrics,
    /// Query the flight recorder (v2): recent traces reassembled into
    /// trees, filtered by trace id, plan fingerprint, minimum duration,
    /// or stage name.
    Traces(TraceFilter),
    /// Subscribe to the leader's committed epochs (protocol v3,
    /// replication). The server streams every epoch `>= from_epoch`
    /// committed at subscribe time as checksummed
    /// [`QueryResponse::EpochBatch`] frames, each epoch closed by an
    /// [`QueryResponse::EpochCommit`] marker, and terminates the reply
    /// with [`QueryResponse::SubscribeEnd`] naming the next epoch to
    /// ask for. Followers long-poll: re-subscribe from `next_from` to
    /// pick up later commits.
    SubscribeEpochs {
        /// First epoch wanted (inclusive).
        from_epoch: u64,
        /// Upper bound on records per `EpochBatch` frame; `0` means
        /// the server default.
        batch_rows: u32,
    },
}

impl QueryRequest {
    /// Encode to a frame payload under the connection's negotiated
    /// `version`. v1 encodings are byte-identical to every v1 build.
    pub fn encode_versioned(&self, version: u16) -> Vec<u8> {
        self.encode_traced(version, None)
    }

    /// Encode with an optional trace context. On a v2 connection every
    /// request frame carries a trailing trace id (`0` = untraced, the
    /// server generates a root); v1 frames never carry one and stay
    /// byte-identical to every v1 build.
    pub fn encode_traced(&self, version: u16, trace: Option<TraceId>) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            QueryRequest::Status => out.push(REQ_STATUS),
            QueryRequest::ByJob { job_id } => {
                out.push(REQ_BY_JOB);
                out.extend_from_slice(&job_id.to_le_bytes());
            }
            QueryRequest::LibraryUsage { selection } => {
                out.push(REQ_LIBRARY_USAGE);
                selection.put(&mut out, version);
            }
            QueryRequest::Neighbors { hash, k, min_score } => {
                out.push(REQ_NEIGHBORS);
                put_str(&mut out, hash);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&min_score.to_le_bytes());
            }
            QueryRequest::Plan(plan) => {
                out.push(REQ_PLAN);
                plan.put(&mut out);
            }
            QueryRequest::FetchCursor { cursor } => {
                out.push(REQ_FETCH_CURSOR);
                out.extend_from_slice(&cursor.to_le_bytes());
            }
            QueryRequest::CloseCursor { cursor } => {
                out.push(REQ_CLOSE_CURSOR);
                out.extend_from_slice(&cursor.to_le_bytes());
            }
            QueryRequest::Metrics => out.push(REQ_METRICS),
            QueryRequest::Traces(filter) => {
                out.push(REQ_TRACES);
                put_trace_filter(&mut out, filter);
            }
            QueryRequest::SubscribeEpochs {
                from_epoch,
                batch_rows,
            } => {
                out.push(REQ_SUBSCRIBE_EPOCHS);
                out.extend_from_slice(&from_epoch.to_le_bytes());
                out.extend_from_slice(&batch_rows.to_le_bytes());
            }
        }
        if version >= 2 {
            out.extend_from_slice(&trace.map(|t| t.0).unwrap_or(0).to_le_bytes());
        }
        out
    }

    /// Encode under the current protocol version.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(PROTOCOL_VERSION)
    }

    /// Decode a frame payload under the connection's negotiated
    /// `version`. Unknown tags and malformed bodies come back as the
    /// [`QueryError`] the server should answer with; a v2 tag arriving
    /// on a v1 connection is an unknown request there, exactly as a
    /// v1-only server build would answer.
    pub fn decode_versioned(data: &[u8], version: u16) -> Result<Self, QueryError> {
        Self::decode_traced(data, version).map(|(req, _)| req)
    }

    /// Decode a frame payload along with its trace context. On a v2
    /// connection every request frame ends in a trailing trace id (`0`
    /// decodes as `None`); v1 frames never carry one.
    pub fn decode_traced(data: &[u8], version: u16) -> Result<(Self, Option<TraceId>), QueryError> {
        let malformed = || QueryError::Malformed("truncated or inconsistent request".into());
        let (&tag, body) = data.split_first().ok_or_else(malformed)?;
        if version < 2 && (REQ_PLAN..=REQ_TRACES).contains(&tag) {
            return Err(QueryError::UnknownRequest(tag));
        }
        // Replication subscription is v3-only; a v1/v2 peer sees the
        // tag exactly as an older server build would: unknown, with
        // the connection surviving.
        if version < 3 && tag == REQ_SUBSCRIBE_EPOCHS {
            return Err(QueryError::UnknownRequest(tag));
        }
        let mut pos = 0usize;
        let req = match tag {
            REQ_STATUS => QueryRequest::Status,
            REQ_BY_JOB => QueryRequest::ByJob {
                job_id: get_u64(body, &mut pos).ok_or_else(malformed)?,
            },
            REQ_LIBRARY_USAGE => QueryRequest::LibraryUsage {
                selection: Selection::get(body, &mut pos, version).ok_or_else(malformed)?,
            },
            REQ_NEIGHBORS => QueryRequest::Neighbors {
                hash: get_str(body, &mut pos).ok_or_else(malformed)?,
                k: get_u32(body, &mut pos).ok_or_else(malformed)?,
                min_score: get_u32(body, &mut pos).ok_or_else(malformed)?,
            },
            REQ_PLAN => QueryRequest::Plan(QueryPlan::get(body, &mut pos).ok_or_else(malformed)?),
            REQ_FETCH_CURSOR => QueryRequest::FetchCursor {
                cursor: get_u64(body, &mut pos).ok_or_else(malformed)?,
            },
            REQ_CLOSE_CURSOR => QueryRequest::CloseCursor {
                cursor: get_u64(body, &mut pos).ok_or_else(malformed)?,
            },
            REQ_METRICS => QueryRequest::Metrics,
            REQ_TRACES => {
                QueryRequest::Traces(get_trace_filter(body, &mut pos).ok_or_else(malformed)?)
            }
            REQ_SUBSCRIBE_EPOCHS => QueryRequest::SubscribeEpochs {
                from_epoch: get_u64(body, &mut pos).ok_or_else(malformed)?,
                batch_rows: get_u32(body, &mut pos).ok_or_else(malformed)?,
            },
            other => return Err(QueryError::UnknownRequest(other)),
        };
        let trace = if version >= 2 {
            match get_u64(body, &mut pos).ok_or_else(malformed)? {
                0 => None,
                id => Some(TraceId(id)),
            }
        } else {
            None
        };
        if pos != body.len() {
            return Err(QueryError::Malformed("trailing bytes after request".into()));
        }
        Ok((req, trace))
    }

    /// Decode under the current protocol version.
    pub fn decode(data: &[u8]) -> Result<Self, QueryError> {
        Self::decode_versioned(data, PROTOCOL_VERSION)
    }
}

/// Daemon status, as served to clients.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusInfo {
    /// Protocol version the server is speaking on this connection.
    pub protocol_version: u16,
    /// Epochs committed to the consolidated store, ascending.
    pub committed_epochs: Vec<u64>,
    /// Committed records across all epochs.
    pub records: u64,
    /// The epoch currently ingesting, if any.
    pub open_epoch: Option<u64>,
    /// Sentinels whose epoch tag disagreed with the open epoch
    /// (stragglers from reordered campaigns), since daemon start.
    pub epoch_tag_mismatches: u64,
    /// Epochs closed by the quiet-period fallback instead of a sentinel
    /// quorum (every `TYPE=END` copy lost), since daemon start.
    pub quiet_period_fallbacks: u64,
    /// Query connections refused because the server's accept queue was
    /// full, since daemon start (protocol v2; zero on a v1 answer).
    pub queries_refused: u64,
    /// Cursors currently parked in the server's cursor table (v2).
    pub open_cursors: u64,
    /// Negotiated-version histogram: `(version, connections)` pairs,
    /// ascending by version, since daemon start (v2).
    pub version_connections: Vec<(u16, u64)>,
    /// Replication high-water mark: the next epoch this daemon would
    /// request from its leader, i.e. every epoch below it is applied
    /// and durable locally (protocol v3; zero on a non-follower).
    pub repl_high_water: u64,
    /// Epochs this follower trails its leader by, as of the last
    /// subscription exchange (v3; zero on a non-follower).
    pub repl_lag_epochs: u64,
    /// Sealed-store bytes this follower trails its leader by, as of
    /// the last subscription exchange (v3; zero on a non-follower).
    pub repl_lag_bytes: u64,
    /// Reconnect attempts the follower's replication loop has made
    /// since daemon start (v3; zero on a non-follower).
    pub repl_reconnects: u64,
}

/// One epoch-tagged committed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordRow {
    /// Epoch the record was committed under.
    pub epoch: u64,
    /// The consolidated record.
    pub record: ProcessRecord,
}

/// One bounded frame of a replication epoch stream (protocol v3): a
/// slice of one epoch's consolidated records, in the leader's
/// consolidation order. The wire encoding appends an FNV-1a/64
/// checksum over the raw record encodings; the decoder recomputes and
/// rejects mismatches, so a batch that decodes is end-to-end intact
/// independent of the frame-level checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochBatch {
    /// Epoch every record in this frame belongs to.
    pub epoch: u64,
    /// The record slice, in commit order.
    pub records: Vec<ProcessRecord>,
}

impl EpochBatch {
    /// FNV-1a/64 over the concatenated record encodings — the batch
    /// checksum shipped on the wire and chained into the epoch's
    /// [`QueryResponse::EpochCommit`] marker. Both sides compute it
    /// with this one function.
    pub fn checksum(&self) -> u64 {
        let mut fnv = siren_hash::Fnv64::new();
        for record in &self.records {
            fnv.update(&record.encode());
        }
        fnv.digest()
    }
}

/// Fold per-batch checksums into the epoch checksum carried by
/// [`QueryResponse::EpochCommit`]: FNV-1a/64 over the little-endian
/// batch checksums in shipping order. A dropped, duplicated, or
/// reordered batch changes the fold, so a follower that accumulates
/// batch checksums as they arrive can verify the whole epoch against
/// the commit marker without retaining any raw bytes.
pub fn fold_epoch_checksum(batch_checksums: &[u64]) -> u64 {
    let mut fnv = siren_hash::Fnv64::new();
    for sum in batch_checksums {
        fnv.update(&sum.to_le_bytes());
    }
    fnv.digest()
}

/// One nearest-neighbor hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborRow {
    /// Similarity score, 0–100.
    pub score: u32,
    /// Epoch the matching record was committed under.
    pub epoch: u64,
    /// The matching record.
    pub record: ProcessRecord,
}

/// A non-fatal degradation notice attached to the end of a row stream
/// (protocol v2+): the rows already delivered are correct, but some
/// backends could not contribute, so the result may be a subset of the
/// full corpus. Federation routers emit one right before the final
/// `StreamEnd` when shards were unreachable — partial results are
/// typed, never silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryWarning {
    /// Names of the backends whose rows are missing from the stream.
    pub missing: Vec<String>,
    /// Human-readable cause (last dial/stream error per backend).
    pub detail: String,
}

impl std::fmt::Display for QueryWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partial result: missing [{}]: {}",
            self.missing.join(", "),
            self.detail
        )
    }
}

/// One answer, server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Status`].
    Status(StatusInfo),
    /// Answer to [`QueryRequest::ByJob`].
    Rows(Vec<RecordRow>),
    /// Answer to [`QueryRequest::LibraryUsage`].
    LibraryUsage(Vec<LibraryUsageRow>),
    /// Answer to [`QueryRequest::Neighbors`].
    Neighbors(Vec<NeighborRow>),
    /// One bounded frame of a plan's row stream (protocol v2). More
    /// frames of the same reply follow until a `StreamEnd`.
    Batch(RowBatch),
    /// Terminates a plan/fetch reply (v2): `cursor` is `Some(id)` when
    /// more rows can be fetched with
    /// [`QueryRequest::FetchCursor`], `None` at end of rows.
    StreamEnd {
        /// Resumable cursor, if rows remain.
        cursor: Option<u64>,
    },
    /// Answer to [`QueryRequest::Metrics`] (v2): the daemon's whole
    /// metric tree, frozen.
    Metrics(MetricsSnapshot),
    /// Answer to [`QueryRequest::Traces`] (v2): matching trace trees,
    /// most recent first.
    Traces(Vec<TraceTree>),
    /// One checksummed slice of a replicated epoch (protocol v3).
    /// Frames of the same epoch arrive contiguously, closed by an
    /// `EpochCommit`.
    EpochBatch(EpochBatch),
    /// Closes one epoch of a replication stream (v3): the follower may
    /// apply the accumulated records iff every count and checksum
    /// matches.
    EpochCommit {
        /// The epoch just completed.
        epoch: u64,
        /// Total records shipped for this epoch, across its batches.
        records: u64,
        /// [`fold_epoch_checksum`] over the per-batch checksums in
        /// shipping order.
        checksum: u64,
    },
    /// Terminates a [`QueryRequest::SubscribeEpochs`] reply (v3): the
    /// leader has no further committed epochs in the snapshot this
    /// subscription pinned.
    SubscribeEnd {
        /// The epoch a follow-up subscription should start from.
        next_from: u64,
        /// Leader's sealed-store footprint in bytes at subscribe time;
        /// followers compare against their own store to gauge bytes
        /// behind.
        leader_bytes: u64,
    },
    /// A non-fatal stream degradation notice (v2+): emitted at most
    /// once per row stream, immediately before its final `StreamEnd`.
    /// The stream still terminates normally — the warning marks the
    /// delivered rows as a possibly-partial view.
    Warning(QueryWarning),
    /// The request could not be answered.
    Error(QueryError),
}

impl QueryResponse {
    /// Encode to a frame payload under the connection's negotiated
    /// `version`. v1 encodings are byte-identical to every v1 build —
    /// the v2-only `StatusInfo` counters are simply not sent to a v1
    /// peer.
    pub fn encode_versioned(&self, version: u16) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            QueryResponse::Status(status) => {
                out.push(RESP_STATUS);
                out.extend_from_slice(&status.protocol_version.to_le_bytes());
                out.extend_from_slice(&(status.committed_epochs.len() as u32).to_le_bytes());
                for epoch in &status.committed_epochs {
                    out.extend_from_slice(&epoch.to_le_bytes());
                }
                out.extend_from_slice(&status.records.to_le_bytes());
                match status.open_epoch {
                    None => out.push(0),
                    Some(e) => {
                        out.push(1);
                        out.extend_from_slice(&e.to_le_bytes());
                    }
                }
                out.extend_from_slice(&status.epoch_tag_mismatches.to_le_bytes());
                out.extend_from_slice(&status.quiet_period_fallbacks.to_le_bytes());
                if version >= 2 {
                    out.extend_from_slice(&status.queries_refused.to_le_bytes());
                    out.extend_from_slice(&status.open_cursors.to_le_bytes());
                    out.extend_from_slice(&(status.version_connections.len() as u32).to_le_bytes());
                    for (v, n) in &status.version_connections {
                        out.extend_from_slice(&v.to_le_bytes());
                        out.extend_from_slice(&n.to_le_bytes());
                    }
                }
                if version >= 3 {
                    out.extend_from_slice(&status.repl_high_water.to_le_bytes());
                    out.extend_from_slice(&status.repl_lag_epochs.to_le_bytes());
                    out.extend_from_slice(&status.repl_lag_bytes.to_le_bytes());
                    out.extend_from_slice(&status.repl_reconnects.to_le_bytes());
                }
            }
            QueryResponse::Rows(rows) => {
                out.push(RESP_ROWS);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.epoch.to_le_bytes());
                    put_bytes(&mut out, &row.record.encode());
                }
            }
            QueryResponse::LibraryUsage(rows) => {
                out.push(RESP_LIBRARY_USAGE);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    put_str(&mut out, &row.library);
                    out.extend_from_slice(&row.processes.to_le_bytes());
                    out.extend_from_slice(&row.hosts.to_le_bytes());
                }
            }
            QueryResponse::Neighbors(rows) => {
                out.push(RESP_NEIGHBORS);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.score.to_le_bytes());
                    out.extend_from_slice(&row.epoch.to_le_bytes());
                    put_bytes(&mut out, &row.record.encode());
                }
            }
            QueryResponse::Batch(batch) => {
                out.push(RESP_BATCH);
                batch.put(&mut out);
            }
            QueryResponse::StreamEnd { cursor } => {
                out.push(RESP_STREAM_END);
                match cursor {
                    None => out.push(0),
                    Some(id) => {
                        out.push(1);
                        out.extend_from_slice(&id.to_le_bytes());
                    }
                }
            }
            QueryResponse::Metrics(snapshot) => {
                out.push(RESP_METRICS);
                put_metrics(&mut out, snapshot);
            }
            QueryResponse::Traces(trees) => {
                out.push(RESP_TRACES);
                put_traces(&mut out, trees);
            }
            QueryResponse::EpochBatch(batch) => {
                out.push(RESP_EPOCH_BATCH);
                out.extend_from_slice(&batch.epoch.to_le_bytes());
                out.extend_from_slice(&(batch.records.len() as u32).to_le_bytes());
                let mut fnv = siren_hash::Fnv64::new();
                for record in &batch.records {
                    let bytes = record.encode();
                    fnv.update(&bytes);
                    put_bytes(&mut out, &bytes);
                }
                out.extend_from_slice(&fnv.digest().to_le_bytes());
            }
            QueryResponse::EpochCommit {
                epoch,
                records,
                checksum,
            } => {
                out.push(RESP_EPOCH_COMMIT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&records.to_le_bytes());
                out.extend_from_slice(&checksum.to_le_bytes());
            }
            QueryResponse::SubscribeEnd {
                next_from,
                leader_bytes,
            } => {
                out.push(RESP_SUBSCRIBE_END);
                out.extend_from_slice(&next_from.to_le_bytes());
                out.extend_from_slice(&leader_bytes.to_le_bytes());
            }
            QueryResponse::Warning(warning) => {
                out.push(RESP_WARNING);
                out.extend_from_slice(&(warning.missing.len() as u32).to_le_bytes());
                for name in &warning.missing {
                    put_str(&mut out, name);
                }
                put_str(&mut out, &warning.detail);
            }
            QueryResponse::Error(err) => {
                out.push(RESP_ERROR);
                err.put(&mut out);
            }
        }
        out
    }

    /// Encode under the current protocol version.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(PROTOCOL_VERSION)
    }

    /// Decode a frame payload under the connection's negotiated
    /// `version`.
    pub fn decode_versioned(data: &[u8], version: u16) -> Result<Self, QueryError> {
        let malformed = || QueryError::Malformed("truncated or inconsistent response".into());
        let (&tag, body) = data.split_first().ok_or_else(malformed)?;
        if version < 2
            && (tag == RESP_BATCH
                || tag == RESP_STREAM_END
                || tag == RESP_METRICS
                || tag == RESP_TRACES
                || tag == RESP_WARNING)
        {
            return Err(QueryError::Malformed(
                "v2-only response frame on a v1 connection".into(),
            ));
        }
        if version < 3 && (RESP_EPOCH_BATCH..=RESP_SUBSCRIBE_END).contains(&tag) {
            return Err(QueryError::Malformed(
                "v3-only response frame on an older connection".into(),
            ));
        }
        let mut pos = 0usize;
        let resp = match tag {
            RESP_STATUS => {
                let protocol_version = get_u16(body, &mut pos).ok_or_else(malformed)?;
                // Minimum wire sizes per element: epoch u64 = 8.
                let n = get_count(body, &mut pos, 8).ok_or_else(malformed)?;
                let mut committed_epochs = Vec::with_capacity(n);
                for _ in 0..n {
                    committed_epochs.push(get_u64(body, &mut pos).ok_or_else(malformed)?);
                }
                let records = get_u64(body, &mut pos).ok_or_else(malformed)?;
                let open_epoch = match take(body, &mut pos, 1).ok_or_else(malformed)?[0] {
                    0 => None,
                    1 => Some(get_u64(body, &mut pos).ok_or_else(malformed)?),
                    _ => return Err(malformed()),
                };
                let epoch_tag_mismatches = get_u64(body, &mut pos).ok_or_else(malformed)?;
                let quiet_period_fallbacks = get_u64(body, &mut pos).ok_or_else(malformed)?;
                let (queries_refused, open_cursors, version_connections) = if version >= 2 {
                    let refused = get_u64(body, &mut pos).ok_or_else(malformed)?;
                    let cursors = get_u64(body, &mut pos).ok_or_else(malformed)?;
                    // (version u16, count u64) = 10 wire bytes each.
                    let n = get_count(body, &mut pos, 10).ok_or_else(malformed)?;
                    let mut hist = Vec::with_capacity(n);
                    for _ in 0..n {
                        hist.push((
                            get_u16(body, &mut pos).ok_or_else(malformed)?,
                            get_u64(body, &mut pos).ok_or_else(malformed)?,
                        ));
                    }
                    (refused, cursors, hist)
                } else {
                    (0, 0, Vec::new())
                };
                let (repl_high_water, repl_lag_epochs, repl_lag_bytes, repl_reconnects) =
                    if version >= 3 {
                        (
                            get_u64(body, &mut pos).ok_or_else(malformed)?,
                            get_u64(body, &mut pos).ok_or_else(malformed)?,
                            get_u64(body, &mut pos).ok_or_else(malformed)?,
                            get_u64(body, &mut pos).ok_or_else(malformed)?,
                        )
                    } else {
                        (0, 0, 0, 0)
                    };
                QueryResponse::Status(StatusInfo {
                    protocol_version,
                    committed_epochs,
                    records,
                    open_epoch,
                    epoch_tag_mismatches,
                    quiet_period_fallbacks,
                    queries_refused,
                    open_cursors,
                    version_connections,
                    repl_high_water,
                    repl_lag_epochs,
                    repl_lag_bytes,
                    repl_reconnects,
                })
            }
            RESP_ROWS => {
                // epoch u64 (8) + record byte-length prefix (4).
                let n = get_count(body, &mut pos, 12).ok_or_else(malformed)?;
                let mut rows = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    let epoch = get_u64(body, &mut pos).ok_or_else(malformed)?;
                    let bytes = get_bytes(body, &mut pos).ok_or_else(malformed)?;
                    let record = ProcessRecord::decode(bytes).ok_or_else(malformed)?;
                    rows.push(RecordRow { epoch, record });
                }
                QueryResponse::Rows(rows)
            }
            RESP_LIBRARY_USAGE => {
                // library length prefix (4) + processes u64 + hosts u64.
                let n = get_count(body, &mut pos, 20).ok_or_else(malformed)?;
                let mut rows = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    rows.push(LibraryUsageRow {
                        library: get_str(body, &mut pos).ok_or_else(malformed)?,
                        processes: get_u64(body, &mut pos).ok_or_else(malformed)?,
                        hosts: get_u64(body, &mut pos).ok_or_else(malformed)?,
                    });
                }
                QueryResponse::LibraryUsage(rows)
            }
            RESP_NEIGHBORS => {
                // score u32 + epoch u64 + record byte-length prefix (4).
                let n = get_count(body, &mut pos, 16).ok_or_else(malformed)?;
                let mut rows = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    let score = get_u32(body, &mut pos).ok_or_else(malformed)?;
                    let epoch = get_u64(body, &mut pos).ok_or_else(malformed)?;
                    let bytes = get_bytes(body, &mut pos).ok_or_else(malformed)?;
                    let record = ProcessRecord::decode(bytes).ok_or_else(malformed)?;
                    rows.push(NeighborRow {
                        score,
                        epoch,
                        record,
                    });
                }
                QueryResponse::Neighbors(rows)
            }
            RESP_BATCH => {
                QueryResponse::Batch(RowBatch::get(body, &mut pos).ok_or_else(malformed)?)
            }
            RESP_STREAM_END => QueryResponse::StreamEnd {
                cursor: match take(body, &mut pos, 1).ok_or_else(malformed)?[0] {
                    0 => None,
                    1 => Some(get_u64(body, &mut pos).ok_or_else(malformed)?),
                    _ => return Err(malformed()),
                },
            },
            RESP_METRICS => {
                QueryResponse::Metrics(get_metrics(body, &mut pos).ok_or_else(malformed)?)
            }
            RESP_TRACES => QueryResponse::Traces(get_traces(body, &mut pos).ok_or_else(malformed)?),
            RESP_EPOCH_BATCH => {
                let epoch = get_u64(body, &mut pos).ok_or_else(malformed)?;
                // Record byte-length prefix (4) is the minimum element.
                let n = get_count(body, &mut pos, 4).ok_or_else(malformed)?;
                let mut records = Vec::with_capacity(decode_capacity(n));
                let mut fnv = siren_hash::Fnv64::new();
                for _ in 0..n {
                    let bytes = get_bytes(body, &mut pos).ok_or_else(malformed)?;
                    fnv.update(bytes);
                    records.push(ProcessRecord::decode(bytes).ok_or_else(malformed)?);
                }
                let shipped = get_u64(body, &mut pos).ok_or_else(malformed)?;
                if shipped != fnv.digest() {
                    return Err(QueryError::Malformed(
                        "epoch batch checksum mismatch".into(),
                    ));
                }
                QueryResponse::EpochBatch(EpochBatch { epoch, records })
            }
            RESP_EPOCH_COMMIT => QueryResponse::EpochCommit {
                epoch: get_u64(body, &mut pos).ok_or_else(malformed)?,
                records: get_u64(body, &mut pos).ok_or_else(malformed)?,
                checksum: get_u64(body, &mut pos).ok_or_else(malformed)?,
            },
            RESP_SUBSCRIBE_END => QueryResponse::SubscribeEnd {
                next_from: get_u64(body, &mut pos).ok_or_else(malformed)?,
                leader_bytes: get_u64(body, &mut pos).ok_or_else(malformed)?,
            },
            RESP_WARNING => {
                // Each missing name carries at least its 4-byte length
                // prefix.
                let n = get_count(body, &mut pos, 4).ok_or_else(malformed)?;
                let mut missing = Vec::with_capacity(decode_capacity(n));
                for _ in 0..n {
                    missing.push(get_str(body, &mut pos).ok_or_else(malformed)?);
                }
                let detail = get_str(body, &mut pos).ok_or_else(malformed)?;
                QueryResponse::Warning(QueryWarning { missing, detail })
            }
            RESP_ERROR => {
                QueryResponse::Error(QueryError::get(body, &mut pos).ok_or_else(malformed)?)
            }
            _ => return Err(malformed()),
        };
        if pos != body.len() {
            return Err(QueryError::Malformed(
                "trailing bytes after response".into(),
            ));
        }
        Ok(resp)
    }

    /// Decode under the current protocol version.
    pub fn decode(data: &[u8]) -> Result<Self, QueryError> {
        Self::decode_versioned(data, PROTOCOL_VERSION)
    }
}

/// Why a request could not be answered — the structured error the
/// server returns instead of closing (or right before closing, when the
/// stream itself can no longer be trusted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The payload did not decode.
    Malformed(String),
    /// No overlap between the client's and the server's version ranges.
    UnsupportedVersion {
        /// Lowest version the server speaks.
        server_min: u16,
        /// Highest version the server speaks.
        server_max: u16,
    },
    /// The request tag is not known to this server version.
    UnknownRequest(u8),
    /// The frame's length prefix exceeded the server's cap.
    FrameTooLarge(u32),
    /// The per-request deadline expired.
    Deadline,
    /// Server-side fault while answering.
    Internal(String),
    /// The plan (or a selection inside a request) is structurally
    /// invalid — inverted range bounds, zero batch geometry, an
    /// ordering the source does not support (protocol v2).
    InvalidPlan(String),
    /// The cursor id is not (or no longer) parked on the server — it
    /// was never issued, was closed, or its TTL expired (protocol v2).
    UnknownCursor(u64),
}

impl QueryError {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            QueryError::Malformed(detail) => {
                out.push(ERR_MALFORMED);
                put_str(out, detail);
            }
            QueryError::UnsupportedVersion {
                server_min,
                server_max,
            } => {
                out.push(ERR_UNSUPPORTED_VERSION);
                out.extend_from_slice(&server_min.to_le_bytes());
                out.extend_from_slice(&server_max.to_le_bytes());
            }
            QueryError::UnknownRequest(tag) => {
                out.push(ERR_UNKNOWN_REQUEST);
                out.push(*tag);
            }
            QueryError::FrameTooLarge(len) => {
                out.push(ERR_FRAME_TOO_LARGE);
                out.extend_from_slice(&len.to_le_bytes());
            }
            QueryError::Deadline => out.push(ERR_DEADLINE),
            QueryError::Internal(detail) => {
                out.push(ERR_INTERNAL);
                put_str(out, detail);
            }
            QueryError::InvalidPlan(detail) => {
                out.push(ERR_INVALID_PLAN);
                put_str(out, detail);
            }
            QueryError::UnknownCursor(id) => {
                out.push(ERR_UNKNOWN_CURSOR);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }

    fn get(data: &[u8], pos: &mut usize) -> Option<Self> {
        Some(match take(data, pos, 1)?[0] {
            ERR_MALFORMED => QueryError::Malformed(get_str(data, pos)?),
            ERR_UNSUPPORTED_VERSION => QueryError::UnsupportedVersion {
                server_min: get_u16(data, pos)?,
                server_max: get_u16(data, pos)?,
            },
            ERR_UNKNOWN_REQUEST => QueryError::UnknownRequest(take(data, pos, 1)?[0]),
            ERR_FRAME_TOO_LARGE => QueryError::FrameTooLarge(get_u32(data, pos)?),
            ERR_DEADLINE => QueryError::Deadline,
            ERR_INTERNAL => QueryError::Internal(get_str(data, pos)?),
            ERR_INVALID_PLAN => QueryError::InvalidPlan(get_str(data, pos)?),
            ERR_UNKNOWN_CURSOR => QueryError::UnknownCursor(get_u64(data, pos)?),
            _ => return None,
        })
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Malformed(detail) => write!(f, "malformed payload: {detail}"),
            QueryError::UnsupportedVersion {
                server_min,
                server_max,
            } => write!(
                f,
                "no common protocol version (server speaks {server_min}..={server_max})"
            ),
            QueryError::UnknownRequest(tag) => write!(f, "unknown request tag {tag}"),
            QueryError::FrameTooLarge(len) => write!(f, "frame payload of {len} bytes refused"),
            QueryError::Deadline => write!(f, "request deadline expired"),
            QueryError::Internal(detail) => write!(f, "server fault: {detail}"),
            QueryError::InvalidPlan(detail) => write!(f, "invalid plan: {detail}"),
            QueryError::UnknownCursor(id) => {
                write!(
                    f,
                    "cursor {id} is not open (expired, closed, or never issued)"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Encode the client hello: magic + supported `[min, max]` range.
pub fn encode_hello(min: u16, max: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&HELLO_MAGIC);
    out.extend_from_slice(&min.to_le_bytes());
    out.extend_from_slice(&max.to_le_bytes());
    out
}

/// Decode a client hello into its `(min, max)` version range.
pub fn decode_hello(payload: &[u8]) -> Option<(u16, u16)> {
    if payload.len() != 8 || payload[..4] != HELLO_MAGIC {
        return None;
    }
    let mut pos = 4usize;
    let min = get_u16(payload, &mut pos)?;
    let max = get_u16(payload, &mut pos)?;
    Some((min, max))
}

/// Encode the server hello-ack carrying the chosen version.
pub fn encode_hello_ack(version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.extend_from_slice(&HELLO_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out
}

/// Decode a server hello-ack into the chosen version.
pub fn decode_hello_ack(payload: &[u8]) -> Option<u16> {
    if payload.len() != 6 || payload[..4] != HELLO_MAGIC {
        return None;
    }
    let mut pos = 4usize;
    get_u16(payload, &mut pos)
}

/// Pick the version a server speaking `[PROTOCOL_VERSION_MIN,
/// PROTOCOL_VERSION]` should use against a client offering
/// `[client_min, client_max]`: the highest version in both ranges.
pub fn negotiate(client_min: u16, client_max: u16) -> Result<u16, QueryError> {
    let chosen = client_max.min(PROTOCOL_VERSION);
    if chosen >= client_min && chosen >= PROTOCOL_VERSION_MIN {
        Ok(chosen)
    } else {
        Err(QueryError::UnsupportedVersion {
            server_min: PROTOCOL_VERSION_MIN,
            server_max: PROTOCOL_VERSION,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_key_extracts_job_and_host_only() {
        let sel = Selection::all()
            .job(42)
            .host("nid000007")
            .epoch(3)
            .epochs(1, 9)
            .between(100, 200);
        let key = sel.shard_key();
        assert_eq!(key.job, Some(42));
        assert_eq!(key.host, Some("nid000007"));
        assert!(!key.is_unrouted());
    }

    #[test]
    fn shard_key_of_time_and_epoch_predicates_is_unrouted() {
        // Epoch/time conditions restrict *when*, not *where* — they
        // must not prune any shard.
        for sel in [
            Selection::all(),
            Selection::all().epoch(5),
            Selection::all().epochs(0, 3),
            Selection::all().between(10, 20),
        ] {
            let key = sel.shard_key();
            assert_eq!(
                key,
                ShardKey {
                    job: None,
                    host: None
                }
            );
            assert!(key.is_unrouted());
        }
    }

    #[test]
    fn shard_key_mirrors_the_matches_predicates() {
        // Any record rejected by shard_key's predicates is rejected by
        // matches() too: pruning a shard that cannot satisfy the key
        // never loses a row.
        let sel = Selection::all().job(7).host("a");
        let key = sel.shard_key();
        let row = siren_db::Record {
            job_id: 7,
            step_id: 0,
            pid: 1,
            exe_hash: "x".into(),
            host: "b".into(),
            time: 0,
            layer: siren_wire::Layer::SelfExe,
            mtype: siren_wire::MessageType::Meta,
            content: String::new(),
        };
        let record = ProcessRecord::new(&row);
        assert_eq!(key.job, Some(record.key.job_id));
        assert_ne!(key.host, Some(record.key.host.as_str()));
        assert!(!sel.matches(0, &record));
    }

    #[test]
    fn warning_roundtrips_on_v2_and_v3() {
        let warning = QueryResponse::Warning(QueryWarning {
            missing: vec!["shard-1".into(), "shard-3".into()],
            detail: "dial refused".into(),
        });
        for version in [2u16, 3] {
            let bytes = warning.encode_versioned(version);
            assert_eq!(bytes[0], RESP_WARNING);
            let back = QueryResponse::decode_versioned(&bytes, version).unwrap();
            assert_eq!(back, warning);
        }
    }

    #[test]
    fn warning_is_rejected_on_v1() {
        let bytes = QueryResponse::Warning(QueryWarning {
            missing: vec!["s".into()],
            detail: String::new(),
        })
        .encode_versioned(2);
        assert!(matches!(
            QueryResponse::decode_versioned(&bytes, 1),
            Err(QueryError::Malformed(_))
        ));
    }

    #[test]
    fn warning_display_lists_missing_backends() {
        let w = QueryWarning {
            missing: vec!["a".into(), "b".into()],
            detail: "leader dark".into(),
        };
        let text = w.to_string();
        assert!(text.contains("a, b"));
        assert!(text.contains("leader dark"));
    }
}
